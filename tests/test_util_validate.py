"""Unit tests for the validation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util import (check_positive_int, check_power_of_two,
                        check_probability, ilog2)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError, match="must be > 0"):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", None, True, False])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ConfigurationError, match="ways"):
            check_positive_int(-2, "ways")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 8, 1024, 2 ** 20])
    def test_accepts_powers(self, good):
        assert check_power_of_two(good, "x") == good

    @pytest.mark.parametrize("bad", [3, 5, 6, 7, 12, 100, 1000])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ConfigurationError, match="power of two"):
            check_power_of_two(bad, "x")

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_power_of_two(0, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("good", [0.0, 0.5, 1.0, 1e-15])
    def test_accepts_probabilities(self, good):
        assert check_probability(good, "p") == good

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability(bad, "p")

    def test_strict_zero(self):
        with pytest.raises(ConfigurationError):
            check_probability(0.0, "p", allow_zero=False)

    def test_strict_one(self):
        with pytest.raises(ConfigurationError):
            check_probability(1.0, "p", allow_one=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_probability("half", "p")


class TestIlog2:
    @given(st.integers(0, 30))
    def test_roundtrip(self, exponent):
        assert ilog2(2 ** exponent) == exponent

    def test_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            ilog2(12)
