"""The structurally feasible path walker."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings

from repro.cfg import PathWalker, find_loops
from repro.minic import compile_program
from tests.strategies import programs


class TestWalks:
    def test_path_starts_at_entry_ends_at_exit(self, loop_program, rng):
        walker = PathWalker(loop_program.cfg)
        walk = walker.walk(rng)
        assert walk.block_ids[0] == loop_program.cfg.entry_id
        assert walk.block_ids[-1] == loop_program.cfg.exit_id

    def test_consecutive_blocks_are_edges(self, loop_program, rng):
        cfg = loop_program.cfg
        walker = PathWalker(cfg)
        walk = walker.walk(rng)
        for src, dst in zip(walk.block_ids, walk.block_ids[1:]):
            assert dst in cfg.successors(src)

    def test_loop_bounds_respected(self, loop_program, rng):
        cfg = loop_program.cfg
        forest = find_loops(cfg)
        walker = PathWalker(cfg, forest)
        for _ in range(50):
            walk = walker.walk(rng)
            counts = Counter(walk.block_ids)
            for header, loop in forest.loops.items():
                entries = sum(
                    counts[src] if src not in loop.body else 0
                    for src, dst in
                    [(s, header) for s in cfg.predecessors(header)])
                # entries from outside the loop, each allows `bound`.
                assert counts[header] <= loop.bound * max(entries, 1)

    def test_maximize_iterations_hits_bound(self, loop_program, rng):
        cfg = loop_program.cfg
        forest = find_loops(cfg)
        walker = PathWalker(cfg, forest)
        walk = walker.walk(rng, maximize_iterations=True)
        counts = Counter(walk.block_ids)
        [loop] = forest.loops.values()
        assert counts[loop.header] == loop.bound

    def test_addresses_follow_blocks(self, loop_program, rng):
        cfg = loop_program.cfg
        walker = PathWalker(cfg)
        walk = walker.walk(rng)
        expected = [address
                    for block_id in walk.block_ids
                    for address in cfg.block(block_id).addresses]
        assert list(walk.addresses) == expected

    def test_interprocedural_walks(self, call_program, rng):
        walker = PathWalker(call_program.cfg)
        walk = walker.walk(rng, maximize_iterations=True)
        contexts = {call_program.cfg.block(block_id).context
                    for block_id in walk.block_ids}
        assert any(context for context in contexts)  # visited the callee

    def test_deterministic_given_seed(self, loop_program):
        walker = PathWalker(loop_program.cfg)
        first = walker.walk(random.Random(99))
        second = walker.walk(random.Random(99))
        assert first == second


class TestRandomPrograms:
    @settings(max_examples=40, deadline=None)
    @given(programs())
    def test_walker_always_terminates(self, program):
        compiled = compile_program(program)
        walker = PathWalker(compiled.cfg)
        rng = random.Random(7)
        for _ in range(5):
            walk = walker.walk(rng)
            assert walk.block_ids[-1] == compiled.cfg.exit_id

    @settings(max_examples=20, deadline=None)
    @given(programs())
    def test_max_iterations_saturates_bounds(self, program):
        """A maximised walk executes every entered loop's header
        exactly ``bound`` times per entry into the loop."""
        compiled = compile_program(program)
        forest = find_loops(compiled.cfg)
        walker = PathWalker(compiled.cfg, forest)
        walk = walker.walk(random.Random(11), maximize_iterations=True)
        counts = Counter(walk.block_ids)
        edge_counts = Counter(zip(walk.block_ids, walk.block_ids[1:]))
        for header, loop in forest.loops.items():
            entries = sum(edge_counts[(src, header)]
                          for src in compiled.cfg.predecessors(header)
                          if src not in loop.body)
            assert counts[header] == loop.bound * entries
