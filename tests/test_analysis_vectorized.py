"""Equivalence of the vectorised ACS engine with the dict oracle.

The vectorised engine (:mod:`repro.analysis.vectorized`) must produce
*identical* Must/May verdicts — and hence identical CHMC tables — to
the reference dict implementation at **every** associativity, even
though it runs a single fixpoint pair at the nominal associativity and
derives the degraded levels by age thresholding.  These are the
property tests that license making it the default engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import (AgeVectorEngine, CacheAnalysis, MayAnalysis,
                            MustAnalysis)
from repro.analysis.references import all_references
from repro.cache import CacheGeometry
from repro.errors import AnalysisError
from repro.minic import compile_program
from repro.reliability.srb_analysis import srb_always_hit_references
from repro.suite import load
from tests.strategies import multi_function_programs, programs

#: Small geometries stress set contention; the paper geometry stresses
#: realistic footprints.
GEOMETRIES = (
    CacheGeometry(sets=4, ways=2, block_bytes=16),
    CacheGeometry(sets=2, ways=4, block_bytes=16),
    CacheGeometry.from_size(1024, 4, 16),
)

_suppress = [HealthCheck.too_slow]


def assert_tables_identical(cfg, geometry):
    """Vector and dict tables must match reference for reference."""
    vector = CacheAnalysis(cfg, geometry, cache="off", engine="vector")
    oracle = CacheAnalysis(cfg, geometry, cache="off", engine="dict")
    for assoc in range(geometry.ways + 1):
        vector_table = vector.classification(assoc)
        oracle_table = oracle.classification(assoc)
        for (ref_v, cls_v), (ref_o, cls_o) in zip(vector_table.items(),
                                                  oracle_table.items()):
            assert ref_v == ref_o
            assert cls_v == cls_o, (
                f"assoc={assoc} {ref_v}: vector={cls_v} oracle={cls_o}")


def assert_verdicts_identical(cfg, geometry):
    """Raw Must/May verdicts must match at every associativity.

    Sharper than table equality: a persistence scope can mask a May
    disagreement inside a first-miss classification.
    """
    references = all_references(cfg, geometry)
    engine = AgeVectorEngine(cfg, geometry, references)
    for assoc in range(1, geometry.ways + 1):
        must = MustAnalysis(cfg, geometry, assoc)
        may = MayAnalysis(cfg, geometry, assoc)
        for block_id in cfg.block_ids():
            assert (tuple(bool(hit) for hit
                          in engine.guaranteed_hits(block_id, assoc))
                    == must.guaranteed_hits(block_id)), \
                f"Must mismatch at block {block_id} assoc {assoc}"
            assert (tuple(bool(hit) for hit
                          in engine.possibly_cached(block_id, assoc))
                    == may.possibly_cached(block_id)), \
                f"May mismatch at block {block_id} assoc {assoc}"
    # The whole sweep above must have cost exactly one fixpoint pair.
    assert engine.fixpoints_run == 2


class TestRandomProgramEquivalence:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=_suppress)
    @given(program=programs())
    def test_tables_match_oracle(self, program):
        compiled = compile_program(program)
        for geometry in GEOMETRIES[:2]:
            assert_tables_identical(compiled.cfg, geometry)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=_suppress)
    @given(program=programs())
    def test_raw_verdicts_match_oracle(self, program):
        compiled = compile_program(program)
        for geometry in GEOMETRIES[:2]:
            assert_verdicts_identical(compiled.cfg, geometry)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=_suppress)
    @given(program=multi_function_programs())
    def test_inlined_calls_match_oracle(self, program):
        compiled = compile_program(program)
        assert_tables_identical(compiled.cfg, GEOMETRIES[0])

    @settings(max_examples=15, deadline=None,
              suppress_health_check=_suppress)
    @given(program=programs())
    def test_srb_hits_match_oracle(self, program):
        compiled = compile_program(program)
        geometry = GEOMETRIES[0]
        analysis = CacheAnalysis(compiled.cfg, geometry, cache="off",
                                 engine="vector")
        assert analysis.srb_always_hits() == \
            srb_always_hit_references(compiled.cfg, geometry)


class TestSuiteEquivalence:
    """Real benchmark CFGs, including the paper geometry."""

    @pytest.mark.parametrize("name", ("crc", "fibcall", "ud"))
    def test_suite_benchmark_tables(self, name):
        cfg = load(name).cfg
        for geometry in GEOMETRIES:
            assert_tables_identical(cfg, geometry)

    def test_suite_benchmark_srb(self):
        cfg = load("crc").cfg
        geometry = GEOMETRIES[2]
        analysis = CacheAnalysis(cfg, geometry, cache="off",
                                 engine="vector")
        assert analysis.srb_always_hits() == \
            srb_always_hit_references(cfg, geometry)


class TestEngineMechanics:
    def test_one_fixpoint_pair_serves_all_associativities(self):
        cfg = load("crc").cfg
        analysis = CacheAnalysis(cfg, GEOMETRIES[2], cache="off",
                                 engine="vector")
        for assoc in range(GEOMETRIES[2].ways, -1, -1):
            analysis.classification(assoc)
        # Must + May once; the dict oracle would need 2 per level.
        assert analysis.stats.fixpoints_run == 2
        assert analysis.stats.tables_built == GEOMETRIES[2].ways + 1

    def test_dict_engine_runs_per_associativity_fixpoints(self):
        cfg = load("fibcall").cfg
        analysis = CacheAnalysis(cfg, GEOMETRIES[0], cache="off",
                                 engine="dict")
        for assoc in range(GEOMETRIES[0].ways, -1, -1):
            analysis.classification(assoc)
        assert analysis.stats.fixpoints_run == 2 * GEOMETRIES[0].ways

    def test_engine_selection_via_environment(self, monkeypatch):
        from repro.analysis.classify import ENGINE_ENV
        cfg = load("fibcall").cfg
        monkeypatch.setenv(ENGINE_ENV, "dict")
        assert CacheAnalysis(cfg, GEOMETRIES[0],
                             cache="off").engine_name == "dict"
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert CacheAnalysis(cfg, GEOMETRIES[0],
                             cache="off").engine_name == "vector"
        monkeypatch.delenv(ENGINE_ENV)
        assert CacheAnalysis(cfg, GEOMETRIES[0],
                             cache="off").engine_name == "batch"

    def test_unknown_engine_rejected(self):
        cfg = load("fibcall").cfg
        with pytest.raises(AnalysisError):
            CacheAnalysis(cfg, GEOMETRIES[0], cache="off",
                          engine="quantum")

    def test_ages_use_compact_dtype(self):
        cfg = load("fibcall").cfg
        geometry = GEOMETRIES[0]
        engine = AgeVectorEngine(cfg, geometry,
                                 all_references(cfg, geometry))
        ages = engine.must_ages()
        assert all(block.dtype == np.int8 for block in ages.values())


class TestPerSetEarlyExit:
    """The segmented worklist: converged sets leave the fixpoint early."""

    def test_converged_segments_are_blanked(self):
        """On a multi-set suite benchmark some sets converge before
        others, so the engine must skip segment-visits — while the
        resulting tables stay equal to the dict oracle's (covered by
        the equivalence suites above)."""
        cfg = load("crc").cfg
        geometry = CacheGeometry.from_size(1024, 4, 16)
        engine = AgeVectorEngine(cfg, geometry,
                                 all_references(cfg, geometry))
        engine.must_ages()
        engine.may_ages()
        assert engine.segments_blanked > 0

    def test_single_set_geometry_has_nothing_to_blank(self):
        """With one cache set there is a single segment: every visit
        is a full visit and the early exit never fires."""
        cfg = load("fibcall").cfg
        geometry = CacheGeometry(sets=1, ways=4, block_bytes=16)
        engine = AgeVectorEngine(cfg, geometry,
                                 all_references(cfg, geometry))
        engine.must_ages()
        engine.may_ages()
        assert engine.segments_blanked == 0
