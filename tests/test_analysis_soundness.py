"""Soundness of Must/May analyses against the concrete simulator.

These are the load-bearing correctness tests of the whole library:
for random structured programs and random structurally feasible paths,

* every always-hit fetch must hit in the concrete LRU cache,
* every always-miss fetch must miss,

at every associativity (the degraded tables used by the FMM included).
"""

import random

import pytest
from hypothesis import given, settings, HealthCheck

from repro.analysis import CacheAnalysis, Chmc
from repro.cache import CacheGeometry, LRUCache
from repro.cfg import PathWalker
from repro.minic import compile_program
from tests.strategies import multi_function_programs, programs

GEOMETRY = CacheGeometry(sets=4, ways=2, block_bytes=16)


def check_soundness(compiled, geometry, assoc, rng, walks=3):
    """Replay paths; compare concrete hits with the classification."""
    analysis = CacheAnalysis(compiled.cfg, geometry)
    table = analysis.classification(assoc)
    walker = PathWalker(compiled.cfg, analysis.forest)
    # Degraded associativity == every set has (ways - assoc) faults.
    concrete_geometry = CacheGeometry(
        sets=geometry.sets, ways=max(assoc, 1),
        block_bytes=geometry.block_bytes)
    for index in range(walks):
        walk = walker.walk(rng, maximize_iterations=(index == 0))
        cache = LRUCache(concrete_geometry)
        first_miss_seen: dict[tuple, bool] = {}
        for block_id in walk.block_ids:
            classifications = table.of_block(block_id)
            for position, reference in enumerate(
                    table.references(block_id)):
                hit = (cache.access(reference.memory_block)
                       if assoc > 0 else False)
                chmc = classifications[position].chmc
                if chmc is Chmc.ALWAYS_HIT:
                    assert hit, (
                        f"always-hit fetch missed: {reference} "
                        f"assoc={assoc}")
                elif chmc is Chmc.ALWAYS_MISS:
                    assert not hit, (
                        f"always-miss fetch hit: {reference} "
                        f"assoc={assoc}")


class TestSoundnessRandomPrograms:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_full_associativity(self, program):
        compiled = compile_program(program)
        check_soundness(compiled, GEOMETRY, GEOMETRY.ways,
                        random.Random(1))

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_degraded_associativity(self, program):
        compiled = compile_program(program)
        for assoc in range(GEOMETRY.ways + 1):
            check_soundness(compiled, GEOMETRY, assoc, random.Random(2),
                            walks=2)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(multi_function_programs())
    def test_interprocedural(self, program):
        compiled = compile_program(program)
        check_soundness(compiled, GEOMETRY, GEOMETRY.ways,
                        random.Random(3))


class TestSoundnessFixtures:
    def test_loop_program_all_assocs(self, loop_program):
        for assoc in range(5):
            check_soundness(loop_program,
                            CacheGeometry(sets=16, ways=4, block_bytes=16),
                            assoc, random.Random(4), walks=4)

    def test_call_program_all_assocs(self, call_program):
        for assoc in range(5):
            check_soundness(call_program,
                            CacheGeometry(sets=16, ways=4, block_bytes=16),
                            assoc, random.Random(5), walks=4)

    def test_straight_line(self, straight_line_program):
        check_soundness(straight_line_program, GEOMETRY, GEOMETRY.ways,
                        random.Random(6), walks=1)


class TestFirstMissSemantics:
    def test_first_miss_misses_at_most_once_per_scope_entry(
            self, loop_program, rng):
        """On a concrete path, a first-miss reference's actual misses
        must not exceed its scope entries."""
        from repro.analysis.chmc import GLOBAL_SCOPE
        geometry = CacheGeometry(sets=16, ways=4, block_bytes=16)
        analysis = CacheAnalysis(loop_program.cfg, geometry)
        table = analysis.classification()
        walker = PathWalker(loop_program.cfg, analysis.forest)
        walk = walker.walk(rng, maximize_iterations=True)

        cache = LRUCache(geometry)
        misses: dict[tuple, int] = {}
        entries: dict[int, int] = {}
        forest = analysis.forest
        previous = None
        for block_id in walk.block_ids:
            for header, loop in forest.loops.items():
                if block_id == header and (
                        previous is None or previous not in loop.body):
                    entries[header] = entries.get(header, 0) + 1
            for position, reference in enumerate(
                    table.references(block_id)):
                hit = cache.access(reference.memory_block)
                classification = table.of_block(block_id)[position]
                if classification.chmc is Chmc.FIRST_MISS and not hit:
                    key = reference.key
                    misses[key] = misses.get(key, 0) + 1
                    scope = classification.scope
                    budget = (1 if scope == GLOBAL_SCOPE
                              else entries.get(scope, 0))
                    assert misses[key] <= budget, (
                        f"first-miss {reference} missed {misses[key]} "
                        f"times with only {budget} scope entries")
            previous = block_id
