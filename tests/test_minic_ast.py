"""MiniC AST validation."""

import pytest

from repro.errors import CompilationError, RecursionUnsupportedError
from repro.minic import Call, Compute, Function, If, Loop, Program


class TestStatements:
    def test_compute_requires_positive_units(self):
        with pytest.raises(CompilationError):
            Compute(0)

    def test_loop_rejects_negative_iterations(self):
        with pytest.raises(CompilationError):
            Loop(-1, [Compute(1)])

    def test_loop_allows_zero_iterations(self):
        loop = Loop(0, [Compute(1)])
        assert loop.iterations == 0

    def test_loop_rejects_empty_body(self):
        with pytest.raises(CompilationError):
            Loop(3, [])

    def test_if_rejects_empty_then(self):
        with pytest.raises(CompilationError):
            If([])

    def test_if_orelse_optional(self):
        assert If([Compute(1)]).orelse == ()

    def test_call_needs_name(self):
        with pytest.raises(CompilationError):
            Call("")

    def test_bodies_are_tuples(self):
        loop = Loop(2, [Compute(1)])
        assert isinstance(loop.body, tuple)
        branch = If([Compute(1)], [Compute(2)])
        assert isinstance(branch.then, tuple)
        assert isinstance(branch.orelse, tuple)


class TestProgram:
    def test_duplicate_function_names_rejected(self):
        with pytest.raises(CompilationError, match="duplicate"):
            Program([Function("f", [Compute(1)]),
                     Function("f", [Compute(1)])], entry="f")

    def test_missing_entry_rejected(self):
        with pytest.raises(CompilationError, match="entry"):
            Program([Function("f", [Compute(1)])], entry="main")

    def test_undefined_callee_rejected(self):
        with pytest.raises(CompilationError, match="undefined"):
            Program([Function("main", [Call("ghost")])])

    def test_direct_recursion_rejected(self):
        with pytest.raises(RecursionUnsupportedError):
            Program([Function("main", [Call("main")])])

    def test_mutual_recursion_rejected(self):
        with pytest.raises(RecursionUnsupportedError):
            Program([
                Function("main", [Call("a")]),
                Function("a", [Call("b")]),
                Function("b", [Call("a")]),
            ])

    def test_recursion_in_nested_statements_detected(self):
        with pytest.raises(RecursionUnsupportedError):
            Program([
                Function("main", [
                    Loop(3, [If([Call("main")])]),
                ]),
            ])

    def test_diamond_call_graph_accepted(self):
        program = Program([
            Function("main", [Call("left"), Call("right")]),
            Function("left", [Call("shared")]),
            Function("right", [Call("shared")]),
            Function("shared", [Compute(1)]),
        ])
        assert program.function("shared").name == "shared"

    def test_function_lookup_error(self):
        program = Program([Function("main", [Compute(1)])])
        with pytest.raises(CompilationError):
            program.function("nope")
