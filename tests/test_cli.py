"""The command-line interface."""

import pytest

from repro.cli import main


class TestEstimate:
    def test_basic(self, capsys):
        assert main(["estimate", "bs"]) == 0
        output = capsys.readouterr().out
        assert "fault-free WCET" in output
        assert "none" in output and "srb" in output and "rw" in output

    def test_mechanism_selection(self, capsys):
        assert main(["estimate", "bs", "--mechanisms", "rw"]) == 0
        output = capsys.readouterr().out
        assert "rw" in output
        assert "srb:" not in output

    def test_refined_srb_at_reachable_target(self, capsys):
        assert main(["estimate", "bs", "--mechanisms", "srb+",
                     "--probability", "1e-9"]) == 0
        assert "srb+" in capsys.readouterr().out

    def test_refined_srb_refuses_deep_tail(self, capsys):
        assert main(["estimate", "bs", "--mechanisms", "srb+"]) == 0
        assert "unavailable" in capsys.readouterr().out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["estimate", "dhrystone"])

    def test_pfail_override(self, capsys):
        assert main(["estimate", "bs", "--pfail", "1e-6"]) == 0
        capsys.readouterr()


class TestOtherCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "adpcm" in output and "nsichneu" in output
        assert output.count("\n") >= 26

    def test_curve(self, capsys):
        assert main(["curve", "bs", "--mechanisms", "rw",
                     "--max-points", "5"]) == 0
        output = capsys.readouterr().out
        assert "# bs / rw" in output

    def test_fmm(self, capsys):
        assert main(["fmm", "bs"]) == 0
        assert "faulty" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "bs"]) == 0
        output = capsys.readouterr().out
        assert "gain/area" in output

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweep:
    def test_small_grid(self, capsys, tmp_path):
        assert main(["sweep", "--sizes", "512", "1024", "--ways", "2",
                     "--lines", "16", "--benchmarks", "bs", "fibcall",
                     "--cache", str(tmp_path / "store")]) == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "srb" in output and "rw" in output

    def test_output_file(self, capsys, tmp_path):
        report = tmp_path / "sweep.txt"
        assert main(["sweep", "--sizes", "512", "--ways", "2",
                     "--lines", "16", "--benchmarks", "bs",
                     "--cache", str(tmp_path / "store"),
                     "--output", str(report)]) == 0
        assert "written to" in capsys.readouterr().out
        assert "Pareto front" in report.read_text()

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "dhrystone"])

    def test_pfail_flag_sets_the_axis(self, capsys, tmp_path):
        assert main(["sweep", "--sizes", "512", "--ways", "2",
                     "--lines", "16", "--benchmarks", "bs",
                     "--pfail", "1e-3",
                     "--cache", str(tmp_path / "store")]) == 0
        output = capsys.readouterr().out
        assert "1e-03" in output and "1e-04" not in output

    def test_cache_off_accepted(self, capsys):
        assert main(["estimate", "bs", "--cache", "off"]) == 0
        capsys.readouterr()
