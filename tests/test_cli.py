"""The command-line interface."""

import pytest

from repro.cli import main


class TestEstimate:
    def test_basic(self, capsys):
        assert main(["estimate", "bs"]) == 0
        output = capsys.readouterr().out
        assert "fault-free WCET" in output
        assert "none" in output and "srb" in output and "rw" in output

    def test_mechanism_selection(self, capsys):
        assert main(["estimate", "bs", "--mechanisms", "rw"]) == 0
        output = capsys.readouterr().out
        assert "rw" in output
        assert "srb:" not in output

    def test_refined_srb_at_reachable_target(self, capsys):
        assert main(["estimate", "bs", "--mechanisms", "srb+",
                     "--probability", "1e-9"]) == 0
        assert "srb+" in capsys.readouterr().out

    def test_refined_srb_refuses_deep_tail(self, capsys):
        assert main(["estimate", "bs", "--mechanisms", "srb+"]) == 0
        assert "unavailable" in capsys.readouterr().out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["estimate", "dhrystone"])

    def test_pfail_override(self, capsys):
        assert main(["estimate", "bs", "--pfail", "1e-6"]) == 0
        capsys.readouterr()


class TestOtherCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "adpcm" in output and "nsichneu" in output
        assert output.count("\n") >= 26

    def test_curve(self, capsys):
        assert main(["curve", "bs", "--mechanisms", "rw",
                     "--max-points", "5"]) == 0
        output = capsys.readouterr().out
        assert "# bs / rw" in output

    def test_fmm(self, capsys):
        assert main(["fmm", "bs"]) == 0
        assert "faulty" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "bs"]) == 0
        output = capsys.readouterr().out
        assert "gain/area" in output

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweep:
    def test_small_grid(self, capsys, tmp_path):
        assert main(["sweep", "--sizes", "512", "1024", "--ways", "2",
                     "--lines", "16", "--benchmarks", "bs", "fibcall",
                     "--cache", str(tmp_path / "store")]) == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "srb" in output and "rw" in output

    def test_output_file(self, capsys, tmp_path):
        report = tmp_path / "sweep.txt"
        assert main(["sweep", "--sizes", "512", "--ways", "2",
                     "--lines", "16", "--benchmarks", "bs",
                     "--cache", str(tmp_path / "store"),
                     "--output", str(report)]) == 0
        assert "written to" in capsys.readouterr().out
        assert "Pareto front" in report.read_text()

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "dhrystone"])

    def test_pfail_flag_sets_the_axis(self, capsys, tmp_path):
        assert main(["sweep", "--sizes", "512", "--ways", "2",
                     "--lines", "16", "--benchmarks", "bs",
                     "--pfail", "1e-3",
                     "--cache", str(tmp_path / "store")]) == 0
        output = capsys.readouterr().out
        assert "1e-03" in output and "1e-04" not in output

    def test_cache_off_accepted(self, capsys):
        assert main(["estimate", "bs", "--cache", "off"]) == 0
        capsys.readouterr()


class TestStageTimeoutParsing:
    """``--stage-timeout`` specs must fail loudly: a silently dropped
    budget would green-light an unsupervised overnight run."""

    def retry(self, *specs, max_attempts=None):
        import argparse

        from repro.cli import _retry_from
        return _retry_from(argparse.Namespace(
            max_attempts=max_attempts, stage_timeout=list(specs)))

    @pytest.mark.parametrize("spec", [
        "bogus=2",          # unknown stage name
        "Solve=2",          # names are case-sensitive, like the DAG's
        "0", "-3", "solve=0", "solve=-1",  # non-positive seconds
        "nan", "inf", "solve=nan",         # non-finite seconds
        "solve=abc", "solve=", "",         # unparsable seconds
    ])
    def test_bad_specs_exit_with_a_message(self, spec):
        with pytest.raises(SystemExit, match="--stage-timeout"):
            self.retry(spec)

    def test_unknown_stage_message_lists_the_real_stages(self):
        with pytest.raises(SystemExit, match="sweep-cell"):
            self.retry("bogus=2")

    def test_repeated_flags_accumulate_per_stage(self):
        policy = self.retry("solve=2.5", "classify=1.5", "10")
        assert policy.timeout == 10.0
        assert policy.stage_timeouts == {"solve": 2.5, "classify": 1.5}

    def test_last_repeat_of_one_stage_wins(self):
        policy = self.retry("solve=2.5", "solve=7")
        assert policy.stage_timeouts == {"solve": 7.0}

    def test_no_flags_mean_no_policy_override(self):
        assert self.retry() is None

    def test_bad_max_attempts_rejected(self):
        with pytest.raises(SystemExit, match="--max-attempts"):
            self.retry(max_attempts=0)


class TestCacheEnvAlias:
    def test_legacy_env_is_honoured_with_one_warning(self, monkeypatch,
                                                     tmp_path):
        from repro.solve import store as store_module

        monkeypatch.delenv(store_module.CACHE_ENV, raising=False)
        monkeypatch.setenv(store_module.LEGACY_CACHE_ENV,
                           str(tmp_path / "legacy"))
        monkeypatch.setattr(store_module, "_WARNED_LEGACY", False)
        with pytest.warns(DeprecationWarning, match="REPRO_SOLVE_CACHE"):
            assert store_module.cache_env_value() == \
                str(tmp_path / "legacy")
        # Once per process, not once per resolve.
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store_module.cache_env_value() == \
                str(tmp_path / "legacy")

    def test_canonical_env_wins_silently(self, monkeypatch, tmp_path):
        import warnings

        from repro.solve import store as store_module

        monkeypatch.setenv(store_module.CACHE_ENV,
                           str(tmp_path / "canonical"))
        monkeypatch.setenv(store_module.LEGACY_CACHE_ENV,
                           str(tmp_path / "legacy"))
        monkeypatch.setattr(store_module, "_WARNED_LEGACY", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store_module.cache_env_value() == \
                str(tmp_path / "canonical")
