"""Linking and virtual inlining."""

import pytest
from hypothesis import given, settings

from repro.isa import MemoryLayout
from repro.isa.layout import DEFAULT_TEXT_BASE
from repro.minic import (Call, Compute, Function, Loop, Program,
                         compile_program)
from tests.strategies import multi_function_programs


class TestLinking:
    def test_functions_placed_in_definition_order(self):
        program = Program([
            Function("main", [Compute(2), Call("second")]),
            Function("second", [Compute(2)]),
        ])
        compiled = compile_program(program)
        main_image = compiled.layout.image_of("main")
        second_image = compiled.layout.image_of("second")
        assert main_image.base_address == DEFAULT_TEXT_BASE
        assert second_image.base_address == main_image.end_address

    def test_custom_layout_respected(self):
        layout = MemoryLayout(text_base=0x1000)
        program = Program([Function("main", [Compute(2)])])
        compiled = compile_program(program, layout)
        entry = compiled.cfg.block(compiled.cfg.entry_id)
        assert entry.instructions[0].address == 0x1000

    def test_addresses_relocated_into_images(self):
        program = Program([
            Function("main", [Call("helper")]),
            Function("helper", [Compute(3)]),
        ])
        compiled = compile_program(program)
        helper_image = compiled.layout.image_of("helper")
        helper_cfg = compiled.functions["helper"].cfg
        for block in helper_cfg.blocks.values():
            for address in block.addresses:
                assert (helper_image.base_address <= address
                        < helper_image.end_address)


class TestVirtualInlining:
    def test_two_calls_duplicate_blocks_not_addresses(self):
        program = Program([
            Function("main", [Call("helper"), Call("helper")]),
            Function("helper", [Compute(6)]),
        ])
        compiled = compile_program(program)
        helper_image = compiled.layout.image_of("helper")
        helper_blocks = [
            block for block in compiled.cfg.blocks.values()
            if block.addresses
            and helper_image.base_address <= block.addresses[0]
            < helper_image.end_address
        ]
        contexts = {block.context for block in helper_blocks}
        assert len(contexts) == 2  # one copy per call site
        addresses_per_context = {
            context: sorted(address for block in helper_blocks
                            if block.context == context
                            for address in block.addresses)
            for context in contexts
        }
        first, second = addresses_per_context.values()
        assert first == second  # same code, shared addresses

    def test_call_inside_loop_is_in_loop_body(self):
        from repro.cfg import find_loops
        program = Program([
            Function("main", [Loop(3, [Call("helper")])]),
            Function("helper", [Compute(4)]),
        ])
        compiled = compile_program(program)
        forest = find_loops(compiled.cfg)
        outer = [loop for loop in forest.loops.values() if loop.depth == 1]
        assert len(outer) == 1
        helper_blocks = [block.block_id
                         for block in compiled.cfg.blocks.values()
                         if block.context]
        assert helper_blocks
        assert all(block_id in outer[0].body for block_id in helper_blocks)

    def test_entry_and_exit_are_mains(self):
        program = Program([
            Function("main", [Call("helper")]),
            Function("helper", [Compute(2)]),
        ])
        compiled = compile_program(program)
        assert compiled.cfg.block(compiled.cfg.entry_id).context == ()
        assert compiled.cfg.block(compiled.cfg.exit_id).context == ()

    def test_nested_calls_nest_contexts(self):
        program = Program([
            Function("main", [Call("middle")]),
            Function("middle", [Call("leaf")]),
            Function("leaf", [Compute(2)]),
        ])
        compiled = compile_program(program)
        depths = {len(block.context)
                  for block in compiled.cfg.blocks.values()}
        assert depths == {0, 1, 2}

    @settings(max_examples=25, deadline=None)
    @given(multi_function_programs())
    def test_random_multi_function_programs_valid(self, program):
        compiled = compile_program(program)
        compiled.cfg.validate()
        assert compiled.code_size_bytes() > 0
