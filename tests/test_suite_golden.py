"""Golden regression test of the Figure 4 survey.

Pins the exact pipeline output for every benchmark at the paper's
configuration (1 KB 4-way 16 B LRU, pfail = 1e-4, exceedance 1e-15).
The pipeline is fully deterministic, so any change here is a real
behavioural change — either a bug or an intentional improvement that
must update this table *and* EXPERIMENTS.md.

Each entry: (fault-free WCET, pWCET none, pWCET SRB, pWCET RW,
Figure-4 category).
"""

import pytest

from repro.experiments import run_benchmark
from repro.experiments.fig4 import classify_category
from repro.suite import EVALUATED_BENCHMARKS

GOLDEN = {
    "adpcm": (1492751, 2942751, 1862751, 1652751, 4),
    "bs": (1708, 5008, 3008, 1708, 2),
    "bsort100": (808923, 16658923, 7768923, 5778923, 4),
    "cnt": (13014, 173614, 86114, 65514, 4),
    "cover": (778224, 1080424, 840524, 834424, 3),
    "crc": (92301, 2012301, 762001, 323101, 4),
    "duff": (4498, 14698, 8398, 8098, 3),
    "edn": (98002, 1524302, 485102, 273902, 4),
    "expint": (37592, 867992, 247792, 128192, 4),
    "fdct": (7313, 30813, 16013, 15013, 4),
    "fft": (51611, 836011, 370311, 283411, 4),
    "fibcall": (1241, 25341, 7441, 1241, 2),
    "fir": (39371, 864971, 263371, 39871, 2),
    "insertsort": (3629, 70229, 28829, 3629, 2),
    "janne_complex": (19102, 748102, 202102, 19102, 2),
    "jfdctint": (9273, 74073, 27473, 18473, 4),
    "lcdnum": (4037, 17337, 9637, 9337, 3),
    "ludcmp": (15011, 162511, 56711, 27811, 4),
    "matmult": (581687, 10669687, 3983987, 3902287, 3),
    "minver": (5523, 34923, 15023, 7923, 4),
    "ns": (45916, 715916, 283416, 223416, 4),
    "nsichneu": (137548, 175748, 137548, 137548, 1),
    "prime": (3862, 62462, 25862, 3862, 2),
    "qurt": (4092, 20092, 8392, 4792, 4),
    "ud": (17309, 182109, 60309, 40209, 4),
}


def test_golden_covers_whole_suite():
    assert set(GOLDEN) == set(EVALUATED_BENCHMARKS)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_pipeline_reproduces_golden_numbers(name):
    expected_ff, expected_none, expected_srb, expected_rw, category = \
        GOLDEN[name]
    result = run_benchmark(name)
    assert result.wcet_fault_free == expected_ff
    assert result.pwcet("none") == expected_none
    assert result.pwcet("srb") == expected_srb
    assert result.pwcet("rw") == expected_rw
    assert classify_category(expected_ff, expected_none, expected_srb,
                             expected_rw).value == category


def test_golden_table_is_internally_consistent():
    for name, (ff, none, srb, rw, _category) in GOLDEN.items():
        assert ff <= rw <= srb <= none, name


def test_golden_gain_statistics():
    """The headline statistics derived from the pinned numbers."""
    import statistics
    srb_gains = [1 - srb / none
                 for _ff, none, srb, _rw, _c in GOLDEN.values()]
    rw_gains = [1 - rw / none
                for _ff, none, _srb, rw, _c in GOLDEN.values()]
    assert statistics.mean(srb_gains) == pytest.approx(0.552, abs=0.01)
    assert statistics.mean(rw_gains) == pytest.approx(0.696, abs=0.01)
    assert min(srb_gains) == pytest.approx(0.217, abs=0.01)
    assert min(rw_gains) == pytest.approx(0.217, abs=0.01)
