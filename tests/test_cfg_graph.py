"""CFG container: construction, traversal, validation."""

import pytest

from repro.cfg import CFG
from repro.errors import CFGStructureError


def diamond() -> CFG:
    cfg = CFG("diamond")
    for label in ("entry", "left", "right", "exit"):
        cfg.new_block(label)
    cfg.add_edge(0, 1)
    cfg.add_edge(0, 2)
    cfg.add_edge(1, 3)
    cfg.add_edge(2, 3)
    cfg.set_entry(0)
    cfg.set_exit(3)
    return cfg


class TestConstruction:
    def test_duplicate_edge_rejected(self):
        cfg = diamond()
        with pytest.raises(CFGStructureError, match="duplicate edge"):
            cfg.add_edge(0, 1)

    def test_edge_to_unknown_block_rejected(self):
        cfg = diamond()
        with pytest.raises(CFGStructureError):
            cfg.add_edge(0, 99)

    def test_duplicate_block_id_rejected(self):
        from repro.cfg.basic_block import BasicBlock
        cfg = diamond()
        with pytest.raises(CFGStructureError):
            cfg.add_block(BasicBlock(block_id=0, label="again"))

    def test_missing_entry_raises(self):
        cfg = CFG()
        cfg.new_block("a")
        with pytest.raises(CFGStructureError):
            _ = cfg.entry_id

    def test_unknown_block_lookup(self):
        with pytest.raises(CFGStructureError):
            diamond().block(42)


class TestTraversal:
    def test_reverse_postorder_starts_at_entry(self):
        order = diamond().reverse_postorder()
        assert order[0] == 0
        assert order[-1] == 3
        assert set(order) == {0, 1, 2, 3}

    def test_edges_deterministic(self):
        assert diamond().edges() == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_successors_predecessors(self):
        cfg = diamond()
        assert set(cfg.successors(0)) == {1, 2}
        assert set(cfg.predecessors(3)) == {1, 2}

    def test_len_and_instruction_count(self):
        cfg = diamond()
        assert len(cfg) == 4
        assert cfg.instruction_count() == 0


class TestValidation:
    def test_valid_diamond(self):
        diamond().validate()

    def test_unreachable_block_detected(self):
        cfg = diamond()
        cfg.new_block("orphan")
        cfg.add_edge(4, 3)  # reaches exit but nothing reaches it
        with pytest.raises(CFGStructureError, match="unreachable"):
            cfg.validate()

    def test_trapped_block_detected(self):
        cfg = diamond()
        trapped = cfg.new_block("trap")
        cfg.add_edge(1, trapped.block_id)
        with pytest.raises(CFGStructureError, match="cannot reach"):
            cfg.validate()

    def test_entry_with_predecessor_rejected(self):
        cfg = CFG()
        a = cfg.new_block("a")
        b = cfg.new_block("b")
        cfg.add_edge(a.block_id, b.block_id)
        cfg.add_edge(b.block_id, a.block_id)
        cfg.set_entry(a.block_id)
        cfg.set_exit(b.block_id)
        with pytest.raises(CFGStructureError):
            cfg.validate()

    def test_exit_with_successor_rejected(self):
        cfg = CFG()
        a = cfg.new_block("a")
        b = cfg.new_block("b")
        cfg.add_edge(a.block_id, b.block_id)
        cfg.set_entry(a.block_id)
        cfg.set_exit(a.block_id)
        with pytest.raises(CFGStructureError):
            cfg.validate()
