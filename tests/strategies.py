"""Hypothesis strategies for random MiniC programs and traces.

Random *structured* programs are the backbone of the soundness
property tests: any structurally feasible execution of any generated
program must be covered by the static analyses.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.minic import Compute, Function, If, Loop, Program


def statements(depth: int = 2) -> st.SearchStrategy:
    """A list of statements with bounded nesting depth."""
    compute = st.builds(Compute, units=st.integers(1, 20))
    if depth <= 0:
        return st.lists(compute, min_size=1, max_size=3)
    inner = statements(depth - 1)
    loop = st.builds(
        lambda bound, body: Loop(bound, body),
        st.integers(0, 5), inner)
    branch = st.builds(
        lambda then, orelse, with_else: If(then, orelse if with_else else ()),
        inner, inner, st.booleans())
    return st.lists(st.one_of(compute, loop, branch),
                    min_size=1, max_size=3)


@st.composite
def programs(draw) -> Program:
    """A single-function random structured program."""
    body = draw(statements(depth=2))
    return Program([Function("main", body)], name="random_program")


@st.composite
def multi_function_programs(draw) -> Program:
    """A program where main calls up to two leaf helpers."""
    from repro.minic import Call
    helper_body = draw(statements(depth=1))
    body = draw(statements(depth=1))
    calls = draw(st.integers(0, 2))
    full_body = list(body)
    for _ in range(calls):
        full_body.append(Call("helper"))
    return Program([Function("main", full_body),
                    Function("helper", helper_body)],
                   name="random_calls")


def block_traces(max_block: int = 40, max_length: int = 200
                 ) -> st.SearchStrategy:
    """Raw memory-block traces for cache-simulator properties."""
    return st.lists(st.integers(0, max_block), min_size=0,
                    max_size=max_length)
