"""Experiment drivers: categories, figure data, ablations."""

import pytest

from repro.experiments import (classify_category, exceedance_curves,
                               fig4_rows, format_fig3, format_fig4,
                               gain_summary, run_benchmark)
from repro.experiments.fig1 import compute_fig1, format_fig1
from repro.experiments.fig4 import Category
from repro.pwcet.estimator import TARGET_EXCEEDANCE

#: A fast, category-diverse subset used instead of the whole suite.
SUBSET = ("fibcall", "bs", "nsichneu", "ud")


class TestCategoryClassification:
    def test_category_1(self):
        assert (classify_category(100, 200, 100, 100)
                is Category.FULLY_MASKED)

    def test_category_2(self):
        assert (classify_category(100, 200, 150, 100)
                is Category.MRU_TEMPORAL)

    def test_category_3(self):
        assert (classify_category(100, 200, 151, 150)
                is Category.DEEP_TEMPORAL)

    def test_category_4(self):
        assert classify_category(100, 400, 300, 180) is Category.MIXED

    def test_degenerate_no_degradation(self):
        assert classify_category(100, 100, 100, 100) is Category.FULLY_MASKED


class TestRunner:
    def test_results_cached(self):
        first = run_benchmark("fibcall")
        second = run_benchmark("fibcall")
        assert first is second

    def test_result_invariants(self):
        result = run_benchmark("bs")
        assert result.wcet_fault_free <= result.pwcet("rw")
        assert result.pwcet("rw") <= result.pwcet("srb")
        assert result.pwcet("srb") <= result.pwcet("none")
        assert 0.0 <= result.gain("srb") <= 1.0
        assert result.target_probability == TARGET_EXCEEDANCE


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig4_rows(benchmarks=SUBSET)

    def test_rows_cover_subset(self, rows):
        assert {row.name for row in rows} == set(SUBSET)

    def test_normalisation(self, rows):
        for row in rows:
            assert 0.0 < row.normalized_fault_free <= 1.0
            assert row.normalized_rw <= row.normalized_srb <= 1.0

    def test_known_categories(self, rows):
        by_name = {row.name: row for row in rows}
        assert by_name["nsichneu"].category is Category.FULLY_MASKED
        assert by_name["fibcall"].category is Category.MRU_TEMPORAL

    def test_gain_summary(self, rows):
        summary = gain_summary(rows)
        assert 0.0 <= summary.average_gain_srb <= 1.0
        assert summary.average_gain_rw >= summary.average_gain_srb
        assert summary.min_gain_srb_benchmark in SUBSET
        assert "paper" in summary.format()

    def test_format_contains_all_benchmarks(self, rows):
        text = format_fig4(rows)
        for name in SUBSET:
            assert name in text


class TestFig3:
    def test_curves_ordered(self):
        curves = exceedance_curves("bs")
        for probability in (1e-3, 1e-9, TARGET_EXCEEDANCE):
            assert (curves["rw"].pwcet(probability)
                    <= curves["srb"].pwcet(probability)
                    <= curves["none"].pwcet(probability))

    def test_format(self):
        text = format_fig3("bs")
        assert "Figure 3" in text
        assert "bs" in text
        assert "1e-15" in text.replace("e-15", "e-15")


class TestFig1:
    def test_compute(self):
        data = compute_fig1()
        assert data.fmm.max_fault_count == 2  # 2-way example cache
        assert data.combined.total_mass == pytest.approx(1.0, abs=1e-9)
        assert len(data.per_set) <= 4

    def test_format(self):
        text = format_fig1(compute_fig1())
        assert "Figure 1.a" in text and "Figure 1.b" in text


class TestAblations:
    def test_pfail_sweep_monotone(self):
        from repro.experiments.ablations import pfail_sweep
        points = pfail_sweep(pfails=(1e-5, 1e-4), benchmarks=("bs",))
        assert len(points) == 2
        by_pfail = {point.value: point for point in points}
        assert (by_pfail[1e-5].pwcet_none <= by_pfail[1e-4].pwcet_none)

    def test_solver_comparison_sound(self):
        from repro.experiments.ablations import solver_comparison
        pairs = solver_comparison(benchmarks=("bs",))
        for exact, relaxed in pairs:
            assert relaxed.pwcet_none >= exact.pwcet_none

    def test_format_sweep(self):
        from repro.experiments.ablations import format_sweep, pfail_sweep
        text = format_sweep(pfail_sweep(pfails=(1e-4,),
                                        benchmarks=("bs",)))
        assert "bs" in text and "pfail" in text
