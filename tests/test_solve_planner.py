"""The solve planner: dedup/prune/batch must not change any result.

The planner's whole contract is *bit-identical outputs*: every
shortcut (canonical-objective dedup, empty short-circuit, LP
relaxation pre-screen, process-pool batching, persistent backends) is
value-preserving with respect to solving every (set, fault count) ILP
directly.  These tests pin that equivalence on real suite benchmarks
across all three reliability mechanisms, plus unit-level behaviour of
the planner and backends.
"""

import pytest

from repro.analysis import CacheAnalysis
from repro.fmm import compute_fault_miss_map
from repro.ipet import FlowModel, LinearProgram
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.reliability import mechanism_by_name
from repro.solve import (SolvePlanner, SolveRequest, available_backends,
                        make_backend)
from repro.solve.backend import ScipyBackend
from repro.suite import load

MECHANISMS = ("none", "srb", "rw")
#: Mid-size benchmarks with different control structure: loop nest
#: (ud), branchy CRC, and a large multi-function program (adpcm).
EQUIVALENCE_BENCHMARKS = ("ud", "crc", "adpcm")


def _direct_fmm(name: str, mechanism: str):
    """The unplanned reference path: every non-empty cell solved."""
    compiled = load(name)
    analysis = CacheAnalysis(compiled.cfg, EstimatorConfig().geometry)
    flow_model = FlowModel(compiled.cfg, analysis.forest)
    planner = SolvePlanner(flow_model.program, dedup=False,
                           prescreen=False)
    return compute_fault_miss_map(analysis, mechanism_by_name(mechanism),
                                  flow_model=flow_model, planner=planner)


class TestPipelineEquivalence:
    """Planned results must equal the direct path, bit for bit."""

    @pytest.mark.parametrize("name", EQUIVALENCE_BENCHMARKS)
    def test_fmm_identical_to_direct_path(self, name):
        estimator = PWCETEstimator(load(name), name=name)
        for mechanism in MECHANISMS:
            planned = estimator.fault_miss_map(mechanism)
            direct = _direct_fmm(name, mechanism)
            assert planned.rows == direct.rows, (name, mechanism)
        stats = estimator.solver_stats
        assert stats.dedup_hits > 0  # the shortcuts actually engaged
        assert stats.pruned_empty > 0

    @pytest.mark.parametrize("name", EQUIVALENCE_BENCHMARKS)
    def test_pwcet_identical_to_direct_path(self, name):
        planned = PWCETEstimator(load(name), name=name)
        direct = PWCETEstimator(load(name), name=name)
        direct._planner.dedup = False
        direct._planner.prescreen = False
        for mechanism in MECHANISMS:
            assert (planned.estimate(mechanism).pwcet()
                    == direct.estimate(mechanism).pwcet()), (name, mechanism)

    def test_parallel_workers_identical(self):
        sequential = PWCETEstimator(load("crc"), name="crc")
        parallel = PWCETEstimator(load("crc"),
                                  EstimatorConfig(workers=2), name="crc")
        for mechanism in MECHANISMS:
            assert (parallel.fault_miss_map(mechanism).rows
                    == sequential.fault_miss_map(mechanism).rows)
            assert (parallel.estimate(mechanism).pwcet()
                    == sequential.estimate(mechanism).pwcet())

    def test_relaxed_mode_identical_to_direct_path(self):
        planned = PWCETEstimator(load("ud"), EstimatorConfig(relaxed=True),
                                 name="ud")
        direct = PWCETEstimator(load("ud"), EstimatorConfig(relaxed=True),
                                name="ud")
        direct._planner.dedup = False
        direct._planner.prescreen = False
        for mechanism in MECHANISMS:
            assert (planned.estimate(mechanism).pwcet()
                    == direct.estimate(mechanism).pwcet())


class TestParallelSuite:
    def test_run_suite_workers_identical(self):
        from repro.experiments.runner import run_suite
        subset = ("fibcall", "bs", "prime")
        sequential = run_suite(benchmarks=subset)
        parallel = run_suite(EstimatorConfig(workers=2), benchmarks=subset,
                             workers=2)
        for left, right in zip(sequential, parallel):
            assert left.name == right.name
            assert left.wcet_fault_free == right.wcet_fault_free
            for mechanism in MECHANISMS:
                assert left.pwcet(mechanism) == right.pwcet(mechanism)


class TestSolveRequest:
    def test_canonical_key_ignores_insertion_order(self):
        first = SolveRequest.from_objective({3: 1.0, 1: 2.0})
        second = SolveRequest.from_objective({1: 2.0, 3: 1.0})
        assert first == second
        assert first.key == second.key

    def test_tag_does_not_affect_identity(self):
        first = SolveRequest.from_objective({0: 1.0}, tag=(0, 1))
        second = SolveRequest.from_objective({0: 1.0}, tag=(7, 3))
        assert first == second

    def test_relaxation_mode_separates_keys(self):
        exact = SolveRequest.from_objective({0: 1.0})
        relaxed = SolveRequest.from_objective({0: 1.0}, relaxed=True)
        assert exact.key != relaxed.key

    def test_empty_objective_rejected(self):
        from repro.errors import SolverError
        with pytest.raises(SolverError):
            SolveRequest.from_objective({})


def _bounded_program(upper: float = 5.0) -> LinearProgram:
    program = LinearProgram(name="unit")
    program.add_variable("x", upper=upper)
    return program


def _constraint_bounded_program(upper: float = 5.0) -> LinearProgram:
    """x bounded only by a row — invisible to the structural screen."""
    program = LinearProgram(name="unit-row")
    program.add_variable("x")
    program.add_le({0: 1.0}, upper)
    return program


class TestPlannerUnit:
    def test_dedup_solves_once(self):
        planner = SolvePlanner(_bounded_program())
        request = SolveRequest.from_objective({0: 1.0})
        assert planner.solve(request) == 5
        assert planner.solve(request) == 5
        assert planner.stats.ilp_solved == 1
        assert planner.stats.dedup_hits == 1

    def test_fmm_row_empty_columns_short_circuit(self):
        planner = SolvePlanner(_bounded_program())
        row = planner.fmm_row([None, None])
        assert row == (0, 0, 0)
        assert planner.stats.pruned_empty == 2
        assert planner.stats.ilp_solved == 0

    def test_fmm_row_monotone_and_structural_prescreen(self):
        # x integer in [0, 5]: column 1 maximises x (=5); column 2 has
        # a *different* objective whose structural bound
        # floor(0.9 * 5) = 4 cannot beat the previous value, so the
        # ILP is pruned without touching the solver at all.
        planner = SolvePlanner(_bounded_program())
        row = planner.fmm_row([
            SolveRequest.from_objective({0: 1.0}),
            SolveRequest.from_objective({0: 0.9}),
        ])
        assert row == (0, 5, 5)
        assert planner.stats.pruned_structural == 1
        assert planner.stats.ilp_solved == 1
        assert planner.stats.lp_solved == 0  # structural screen is free

    def test_structural_prescreen_sound_for_fractional_weights(self):
        # Regression: the reported value of a fractional-weight ILP is
        # round(optimum), which may exceed floor(bound) — the screen
        # must not prune column 2 here (true row is (0, 4, 5)).
        planned = SolvePlanner(_bounded_program())
        direct = SolvePlanner(_bounded_program(), prescreen=False,
                              dedup=False)
        columns = [SolveRequest.from_objective({0: 0.8}),
                   SolveRequest.from_objective({0: 0.92})]
        assert planned.fmm_row(columns) == direct.fmm_row(columns)

    def test_structural_bound_unbounded_or_negative_is_inf(self):
        import math
        planner = SolvePlanner(_constraint_bounded_program())
        assert planner.structural_bound(
            SolveRequest.from_objective({0: 1.0})) == math.inf
        planner = SolvePlanner(_bounded_program())
        assert planner.structural_bound(
            SolveRequest.from_objective({0: -1.0})) == math.inf

    def test_lp_prescreen_opt_in_fires_when_structural_cannot(self):
        # The variable is only bounded by a constraint row, so the
        # structural screen knows nothing (inf); the opt-in LP screen
        # proves ceil(0.9 * 5) = 5 <= 5 and prunes the second ILP.
        planner = SolvePlanner(_constraint_bounded_program(),
                               lp_prescreen=True)
        row = planner.fmm_row([
            SolveRequest.from_objective({0: 1.0}),
            SolveRequest.from_objective({0: 0.9}),
        ])
        assert row == (0, 5, 5)
        assert planner.stats.pruned_structural == 0
        assert planner.stats.pruned_relaxation == 1
        assert planner.stats.ilp_solved == 1

    def test_lp_prescreen_off_by_default(self):
        planner = SolvePlanner(_constraint_bounded_program())
        planner.fmm_row([
            SolveRequest.from_objective({0: 1.0}),
            SolveRequest.from_objective({0: 0.9}),
        ])
        assert planner.stats.lp_solved == 0
        assert planner.stats.ilp_solved == 2

    def test_lp_prescreen_budget_disables_after_misses(self):
        planner = SolvePlanner(_constraint_bounded_program(upper=100.0),
                               lp_prescreen=True)
        # Strictly increasing columns: every pre-screen misses.
        columns = [SolveRequest.from_objective({0: float(i)})
                   for i in range(1, SolvePlanner.PRESCREEN_MISS_BUDGET + 4)]
        planner.fmm_row(columns)
        assert planner.stats.pruned_relaxation == 0
        # Only the first PRESCREEN_MISS_BUDGET columns paid for an LP
        # (the first column skips the screen: previous value is 0).
        assert planner.stats.lp_solved == SolvePlanner.PRESCREEN_MISS_BUDGET

    def test_prime_fills_cache(self):
        planner = SolvePlanner(_bounded_program())
        requests = [SolveRequest.from_objective({0: 1.0}),
                    SolveRequest.from_objective({0: 2.0}),
                    SolveRequest.from_objective({0: 1.0})]
        planner.prime(requests, workers=1)
        assert planner.stats.ilp_solved == 2  # unique objectives only
        # First consumption of a primed key is the solve prime()
        # already counted, not a dedup hit; the second one is.
        assert planner.solve(requests[0]) == 5
        assert planner.stats.dedup_hits == 0
        assert planner.solve(requests[0]) == 5
        assert planner.stats.dedup_hits == 1

    def test_prime_requires_dedup(self):
        planner = SolvePlanner(_bounded_program(), dedup=False)
        planner.prime([SolveRequest.from_objective({0: 1.0})], workers=1)
        assert planner.stats.ilp_solved == 0  # no-op without a cache

    def test_stats_dict_keys(self):
        stats = SolvePlanner(_bounded_program()).stats.as_dict()
        assert {"requests", "ilp_solved", "lp_solved", "dedup_hits",
                "store_hits", "pruned_empty", "pruned_structural",
                "pruned_relaxation", "dedup_hit_rate",
                "store_hit_rate"} == set(stats)


class TestBackends:
    def test_backends_agree_on_flow_polytope(self, loop_program):
        """Persistent HiGHS and frozen scipy give the same optima."""
        flow_model = FlowModel(loop_program.cfg)
        snapshot = flow_model.program.snapshot()
        objective = {flow_model.entry_var: 1.0}
        for block_id in loop_program.cfg.block_ids():
            for variable, weight in flow_model.block_count_coefficients(
                    block_id, 3.0).items():
                objective[variable] = objective.get(variable, 0.0) + weight
        reference = ScipyBackend(snapshot)
        for name in available_backends():
            backend = make_backend(snapshot, prefer=name)
            for relaxed in (False, True):
                value, _ = backend.solve(objective, sign=-1.0,
                                         relaxed=relaxed)
                expected, _ = reference.solve(objective, sign=-1.0,
                                              relaxed=relaxed)
                assert round(value, 6) == round(expected, 6)

    def test_snapshot_invalidated_by_model_edits(self):
        program = _bounded_program()
        first = program.snapshot()
        program.add_variable("y", upper=2.0)
        second = program.snapshot()
        assert second.num_variables == first.num_variables + 1
        assert program.maximize({0: 1.0, 1: 1.0}).rounded_objective() == 7

    def test_program_pickles_without_backend(self):
        import pickle
        program = _bounded_program()
        program.maximize({0: 1.0})  # forces a live backend
        clone = pickle.loads(pickle.dumps(program))
        assert clone.maximize({0: 1.0}).rounded_objective() == 5
