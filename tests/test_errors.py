"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.CompilationError,
    errors.RecursionUnsupportedError,
    errors.CFGStructureError,
    errors.AnalysisError,
    errors.SolverError,
    errors.DistributionError,
    errors.SimulationError,
    errors.EstimationError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_derives_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)
    assert issubclass(error_type, Exception)


def test_recursion_is_a_compilation_error():
    assert issubclass(errors.RecursionUnsupportedError,
                      errors.CompilationError)


def test_catchable_as_family():
    with pytest.raises(errors.ReproError):
        raise errors.SolverError("infeasible")
