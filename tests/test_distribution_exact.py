"""Exact-rational cross-validation of the probabilistic chain.

The float pipeline (binomial pmf -> per-set points -> convolution ->
CCDF -> quantile) is re-implemented here with ``fractions.Fraction``
arithmetic and compared point by point.  This guards the deep-tail
behaviour the paper's 1e-15 quantiles rely on: float round-off must
never move a quantile.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.pwcet import DiscreteDistribution


def exact_convolve(left: dict[int, Fraction],
                   right: dict[int, Fraction]) -> dict[int, Fraction]:
    result: dict[int, Fraction] = {}
    for a, pa in left.items():
        for b, pb in right.items():
            result[a + b] = result.get(a + b, Fraction(0)) + pa * pb
    return result


def exact_quantile(points: dict[int, Fraction],
                   probability: Fraction) -> int:
    values = sorted(points)
    # smallest v with P(X > v) <= probability
    for v in values:
        tail = sum(p for value, p in points.items() if value > v)
        if tail <= probability:
            return v
    return values[-1]


@st.composite
def rational_point_sets(draw):
    """Sparse distributions with exactly representable probabilities."""
    size = draw(st.integers(1, 4))
    values = draw(st.lists(st.integers(0, 30), min_size=size,
                           max_size=size, unique=True))
    weights = draw(st.lists(st.integers(1, 16), min_size=size,
                            max_size=size))
    total = sum(weights)
    return {value: Fraction(weight, total)
            for value, weight in zip(values, weights)}


class TestAgainstExactArithmetic:
    @settings(max_examples=60)
    @given(st.lists(rational_point_sets(), min_size=1, max_size=4))
    def test_convolution_matches_fractions(self, parts):
        exact: dict[int, Fraction] = {0: Fraction(1)}
        for part in parts:
            exact = exact_convolve(exact, part)
        floats = DiscreteDistribution.convolve_all([
            DiscreteDistribution.from_points(
                {value: float(p) for value, p in part.items()})
            for part in parts
        ])
        for value, probability in exact.items():
            assert floats.probability_of(value) == pytest.approx(
                float(probability), rel=1e-9, abs=1e-12)

    @settings(max_examples=60)
    @given(st.lists(rational_point_sets(), min_size=1, max_size=3),
           st.integers(1, 60))
    def test_quantiles_match_fractions(self, parts, denominator):
        probability = Fraction(1, denominator * 10)
        exact: dict[int, Fraction] = {0: Fraction(1)}
        for part in parts:
            exact = exact_convolve(exact, part)
        floats = DiscreteDistribution.convolve_all([
            DiscreteDistribution.from_points(
                {value: float(p) for value, p in part.items()})
            for part in parts
        ])
        expected = exact_quantile(exact, probability)
        # Guard against knife-edge cases where the float CCDF equals
        # the probability exactly: only compare when the exact tail is
        # not razor-close to the target.
        tail_at_expected = sum(p for value, p in exact.items()
                               if value > expected)
        margin = abs(float(tail_at_expected) - float(probability))
        if margin > 1e-9:
            assert floats.quantile_exceedance(float(probability)) \
                == expected

    def test_deep_tail_binomial_chain(self):
        """16 sets, 5-point binomials, quantile at 1e-15 — the paper's
        exact configuration, checked against rational arithmetic."""
        q = Fraction(1, 79)  # a pbf-like rational
        per_set: dict[int, Fraction] = {}
        from math import comb
        for w in range(5):
            probability = (Fraction(comb(4, w)) * q ** w
                           * (1 - q) ** (4 - w))
            per_set[w * 10] = probability  # penalty = 10 misses per way
        exact: dict[int, Fraction] = {0: Fraction(1)}
        for _ in range(16):
            exact = exact_convolve(exact, per_set)
        floats = DiscreteDistribution.convolve_all(
            [DiscreteDistribution.from_points(
                {value: float(p) for value, p in per_set.items()})
             for _ in range(16)])
        for probability in (Fraction(1, 10 ** 6), Fraction(1, 10 ** 10),
                            Fraction(1, 10 ** 15)):
            assert (floats.quantile_exceedance(float(probability))
                    == exact_quantile(exact, probability))
