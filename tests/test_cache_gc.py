"""`repro cache gc`: offline compaction of the persistent stores."""

from __future__ import annotations

import json

from repro.analysis.store import ClassificationStore, classification_key
from repro.cache import CacheGeometry
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.solve.gc import GC_SHARD_NAME, compact_shard_dir, gc_cache
from repro.solve.store import SolveStore, solve_key
from repro.suite import load

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


def _populate_both_stores(root) -> None:
    """A real estimation writes both solve and classification shards."""
    estimator = PWCETEstimator(load("fibcall"),
                               EstimatorConfig(cache=str(root)),
                               name="fibcall")
    for mechanism in ("none", "srb", "rw"):
        estimator.estimate(mechanism)


class TestCompaction:
    def test_folds_shards_into_one_sorted_file(self, tmp_path):
        store = SolveStore(tmp_path)
        for index in range(5):
            store.put(solve_key("ctx", [("x", float(index))], False), index)
        store.close()
        shard_dir = tmp_path / "v1"
        # A second writer process that re-derived the same entries:
        # identical lines in a second shard, as concurrent cold runs do.
        first = next(shard_dir.glob("shard-*.jsonl"))
        (shard_dir / "shard-99999-twin.jsonl").write_text(first.read_text())
        assert len(list(shard_dir.glob("shard-*.jsonl"))) == 2

        report = compact_shard_dir(shard_dir)
        assert report.shards_before == 2
        assert report.entries == 5
        assert report.duplicates_dropped == 5
        shards = list(shard_dir.glob("shard-*.jsonl"))
        assert [shard.name for shard in shards] == [GC_SHARD_NAME]
        keys = [json.loads(line)["k"]
                for line in shards[0].read_text().splitlines()]
        assert keys == sorted(keys)

    def test_corrupt_lines_are_dropped_for_good(self, tmp_path):
        store = SolveStore(tmp_path)
        key = solve_key("ctx", [("x", 1.0)], False)
        store.put(key, 5)
        store.close()
        shard_dir = tmp_path / "v1"
        shard = next(shard_dir.glob("shard-*.jsonl"))
        with open(shard, "a") as handle:
            handle.write('{"t":"solve","k":"abc","v":12\n')  # truncated
            handle.write("garbage\n")
        report = compact_shard_dir(shard_dir)
        assert report.corrupt_dropped == 2
        assert report.entries == 1
        fresh = SolveStore(tmp_path)
        assert fresh.get(key) == 5
        assert fresh.stats.corrupt_skipped == 0

    def test_dry_run_touches_nothing(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(solve_key("ctx", [("x", 1.0)], False), 5)
        store.close()
        shard_dir = tmp_path / "v1"
        before = sorted(path.name for path in shard_dir.iterdir())
        report = compact_shard_dir(shard_dir, dry_run=True)
        assert report.dry_run
        assert "would fold" in report.format_row()
        assert sorted(path.name for path in shard_dir.iterdir()) == before

    def test_empty_directory_reports_none(self, tmp_path):
        assert compact_shard_dir(tmp_path / "v1") is None


class TestGcCache:
    def test_compacts_both_stores_under_one_root(self, tmp_path):
        _populate_both_stores(tmp_path)
        reports = gc_cache(str(tmp_path))
        directories = {report.directory.rsplit("/", 1)[-1]
                       for report in reports}
        assert any(name.startswith("v") for name in directories)
        assert any(name.startswith("classify-v") for name in directories)
        for report in reports:
            assert report.corrupt_dropped == 0
            assert report.entries > 0

    def test_warm_run_after_gc_is_still_fully_cached(self, tmp_path):
        _populate_both_stores(tmp_path)
        gc_cache(str(tmp_path))
        estimator = PWCETEstimator(load("fibcall"),
                                   EstimatorConfig(cache=str(tmp_path)),
                                   name="fibcall")
        # Fresh handles, so the compacted shard is what gets read.
        estimator._analysis._store = ClassificationStore(tmp_path)
        fresh_store = SolveStore(tmp_path)
        estimator._planner.attach_store(
            fresh_store, estimator._planner._store_context)
        for mechanism in ("none", "srb", "rw"):
            estimator.estimate(mechanism)
        stats = estimator.stats_summary()
        assert stats["ilp_solved"] == 0
        assert stats["fixpoints_run"] == 0

    def test_off_means_nothing_to_compact(self):
        assert gc_cache("off") == []

    def test_classification_entries_survive_compaction(self, tmp_path):
        store = ClassificationStore(tmp_path)
        key = classification_key("cfg", GEOMETRY, 2)
        store.put(key, {"blocks": [[0, [0, 2]]]})
        store.close()
        gc_cache(str(tmp_path))
        assert ClassificationStore(tmp_path).get(key) == \
            {"blocks": [[0, [0, 2]]]}


class TestCli:
    def test_cache_gc_command(self, tmp_path, capsys):
        from repro.cli import main
        _populate_both_stores(tmp_path)
        assert main(["cache", "gc", "--dry-run",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "would save" in out
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        # Idempotent: a second gc folds the already-folded shard.
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 0

    def test_cache_gc_on_missing_directory(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["cache", "gc",
                     "--cache", str(tmp_path / "empty")]) == 0
        assert "nothing to compact" in capsys.readouterr().out
