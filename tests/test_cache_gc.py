"""`repro cache gc`: offline compaction of the persistent stores."""

from __future__ import annotations

import json

from repro.analysis.store import ClassificationStore, classification_key
from repro.cache import CacheGeometry
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.solve.gc import GC_SHARD_NAME, compact_shard_dir, gc_cache
from repro.solve.store import SolveStore, solve_key
from repro.suite import load

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


def _populate_both_stores(root) -> None:
    """A real estimation writes both solve and classification shards."""
    estimator = PWCETEstimator(load("fibcall"),
                               EstimatorConfig(cache=str(root)),
                               name="fibcall")
    for mechanism in ("none", "srb", "rw"):
        estimator.estimate(mechanism)


class TestCompaction:
    def test_folds_shards_into_one_sorted_file(self, tmp_path):
        store = SolveStore(tmp_path)
        for index in range(5):
            store.put(solve_key("ctx", [("x", float(index))], False), index)
        store.close()
        shard_dir = tmp_path / "v1"
        # A second writer process that re-derived the same entries:
        # identical lines in a second shard, as concurrent cold runs do.
        first = next(shard_dir.glob("shard-*.jsonl"))
        (shard_dir / "shard-99999-twin.jsonl").write_text(first.read_text())
        assert len(list(shard_dir.glob("shard-*.jsonl"))) == 2

        report = compact_shard_dir(shard_dir)
        assert report.shards_before == 2
        assert report.entries == 5
        assert report.duplicates_dropped == 5
        shards = list(shard_dir.glob("shard-*.jsonl"))
        assert [shard.name for shard in shards] == [GC_SHARD_NAME]
        keys = [json.loads(line)["k"]
                for line in shards[0].read_text().splitlines()]
        assert keys == sorted(keys)

    def test_corrupt_lines_are_dropped_for_good(self, tmp_path):
        store = SolveStore(tmp_path)
        key = solve_key("ctx", [("x", 1.0)], False)
        store.put(key, 5)
        store.close()
        shard_dir = tmp_path / "v1"
        shard = next(shard_dir.glob("shard-*.jsonl"))
        with open(shard, "a") as handle:
            handle.write('{"t":"solve","k":"abc","v":12\n')  # truncated
            handle.write("garbage\n")
        report = compact_shard_dir(shard_dir)
        assert report.corrupt_dropped == 2
        assert report.entries == 1
        fresh = SolveStore(tmp_path)
        assert fresh.get(key) == 5
        assert fresh.stats.corrupt_skipped == 0

    def test_dry_run_touches_nothing(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(solve_key("ctx", [("x", 1.0)], False), 5)
        store.close()
        shard_dir = tmp_path / "v1"
        before = sorted(path.name for path in shard_dir.iterdir())
        report = compact_shard_dir(shard_dir, dry_run=True)
        assert report.dry_run
        assert "would fold" in report.format_row()
        assert sorted(path.name for path in shard_dir.iterdir()) == before

    def test_empty_directory_reports_none(self, tmp_path):
        assert compact_shard_dir(tmp_path / "v1") is None


class TestGcCache:
    def test_compacts_both_stores_under_one_root(self, tmp_path):
        _populate_both_stores(tmp_path)
        reports = gc_cache(str(tmp_path))
        directories = {report.directory.rsplit("/", 1)[-1]
                       for report in reports}
        assert any(name.startswith("v") for name in directories)
        assert any(name.startswith("classify-v") for name in directories)
        for report in reports:
            assert report.corrupt_dropped == 0
            assert report.entries > 0

    def test_warm_run_after_gc_is_still_fully_cached(self, tmp_path):
        _populate_both_stores(tmp_path)
        gc_cache(str(tmp_path))
        estimator = PWCETEstimator(load("fibcall"),
                                   EstimatorConfig(cache=str(tmp_path)),
                                   name="fibcall")
        # Fresh handles, so the compacted shard is what gets read.
        estimator._analysis._store = ClassificationStore(tmp_path)
        fresh_store = SolveStore(tmp_path)
        estimator._planner.attach_store(
            fresh_store, estimator._planner._store_context)
        for mechanism in ("none", "srb", "rw"):
            estimator.estimate(mechanism)
        stats = estimator.stats_summary()
        assert stats["ilp_solved"] == 0
        assert stats["fixpoints_run"] == 0

    def test_off_means_nothing_to_compact(self):
        assert gc_cache("off") == []

    def test_classification_entries_survive_compaction(self, tmp_path):
        store = ClassificationStore(tmp_path)
        key = classification_key("cfg", GEOMETRY, 2)
        store.put(key, {"blocks": [[0, [0, 2]]]})
        store.close()
        gc_cache(str(tmp_path))
        assert ClassificationStore(tmp_path).get(key) == \
            {"blocks": [[0, [0, 2]]]}


class TestCli:
    def test_cache_gc_command(self, tmp_path, capsys):
        from repro.cli import main
        _populate_both_stores(tmp_path)
        assert main(["cache", "gc", "--dry-run",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "would save" in out
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        # Idempotent: a second gc folds the already-folded shard.
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 0

    def test_cache_gc_on_missing_directory(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["cache", "gc",
                     "--cache", str(tmp_path / "empty")]) == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_cache_gc_reports_corrupt_line_recovery(self, tmp_path,
                                                    capsys):
        """Silent store repair made visible: torn/corrupt lines that
        every reader skipped show up as an explicit recovery count, in
        the dry run too."""
        from repro.cli import main
        store = SolveStore(tmp_path)
        store.put(solve_key("ctx", [("x", 1)], False), 7)
        store.close()
        shard = next((tmp_path / "v1").glob("shard-*.jsonl"))
        with shard.open("a") as handle:
            handle.write('{"c":1,"k":"tampered","t":"solve","v":1}\n')
            handle.write('{"torn half-li')  # a killed writer's tail
        assert main(["cache", "gc", "--dry-run",
                     "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "would drop 2 corrupt/torn line(s) " \
               "recovered by re-computation" in out
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dropped 2 corrupt/torn line(s)" in out
        # The repaired cache is clean: no recovery line on a re-run.
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 0
        assert "corrupt/torn" not in capsys.readouterr().out

    def test_corrupt_recovery_counts_surface_in_stats_summary(
            self, tmp_path):
        """The estimator's ``stats_summary()`` exposes each store's
        skipped-line count, so degraded shards are observable without
        running gc."""
        store = SolveStore(tmp_path)
        store.put(solve_key("ctx", [("x", 1)], False), 7)
        store.close()
        shard = next((tmp_path / "v1").glob("shard-*.jsonl"))
        with shard.open("a") as handle:
            handle.write('{"torn half-li')
        estimator = PWCETEstimator(load("fibcall"),
                                   EstimatorConfig(cache=str(tmp_path)),
                                   name="fibcall")
        estimator.estimate("none")
        summary = estimator.stats_summary()
        assert summary["store_corrupt_skipped"] == 1
        assert summary["classify_store_corrupt_skipped"] == 0
        assert summary["cell_store_corrupt_skipped"] == 0


class TestExportImport:
    """`repro cache export/import`: store sharing across machines."""

    def test_round_trip_seeds_a_fresh_machine(self, tmp_path):
        from repro.solve.gc import export_cache, import_cache
        source = tmp_path / "machine-a"
        target = tmp_path / "machine-b"
        tarball = tmp_path / "seed.tar.gz"
        _populate_both_stores(source)

        exported = export_cache(tarball, str(source))
        assert {report.directory for report in exported} == \
            {"v1", "classify-v1"}
        assert all(report.entries > 0 for report in exported)
        # The live source store is packed, never modified.
        assert not list(source.glob(f"*/{GC_SHARD_NAME}"))

        imported = import_cache(tarball, str(target))
        assert sum(report.imported for report in imported) == \
            sum(report.entries for report in exported)

        # Machine B is now fully warm: zero fixpoints, zero ILPs.
        estimator = PWCETEstimator(load("fibcall"),
                                   EstimatorConfig(cache=str(target)),
                                   name="fibcall")
        for mechanism in ("none", "srb", "rw"):
            estimator.estimate(mechanism)
        summary = estimator.stats_summary()
        assert summary["fixpoints_run"] == 0
        assert summary["ilp_solved"] == 0
        assert summary["lp_solved"] == 0

    def test_import_is_idempotent_and_merges(self, tmp_path):
        from repro.solve.gc import export_cache, import_cache
        source = tmp_path / "src"
        target = tmp_path / "dst"
        tarball = tmp_path / "seed.tar.gz"
        _populate_both_stores(source)
        export_cache(tarball, str(source))
        first = import_cache(tarball, str(target))
        again = import_cache(tarball, str(target))
        assert sum(report.imported for report in first) > 0
        assert sum(report.imported for report in again) == 0
        assert sum(report.already_present for report in again) == \
            sum(report.imported for report in first)
        # Exactly one import shard per schema directory: the rerun
        # appended nothing.
        for directory in ("v1", "classify-v1"):
            shards = list((target / directory).glob("shard-*.jsonl"))
            assert len(shards) == 1

    def test_import_never_clobbers_local_entries(self, tmp_path):
        from repro.solve.gc import export_cache, import_cache
        source = tmp_path / "src"
        target = tmp_path / "dst"
        tarball = tmp_path / "seed.tar.gz"
        key = solve_key("ctx", [("x", 1.0)], False)
        remote = SolveStore(source)
        remote.put(key, 41)
        remote.close()
        local = SolveStore(target)
        local.put(key, 99)  # disagreeing local value
        local.put(solve_key("ctx", [("y", 1.0)], False), 7)
        local.close()
        export_cache(tarball, str(source))
        reports = import_cache(tarball, str(target))
        (report,) = reports
        assert report.conflicts_kept_local == 1
        assert report.imported == 0
        assert SolveStore(target).get(key) == 99  # local wins

    def test_import_validates_lines_and_member_paths(self, tmp_path):
        import io
        import tarfile

        from repro.solve.gc import import_cache
        from repro.solve.store import encode_shard_line
        tarball = tmp_path / "seed.tar.gz"
        good = encode_shard_line("solve", "a" * 64, 5)
        with tarfile.open(tarball, "w:gz") as archive:
            def add(name, text):
                payload = text.encode("utf-8")
                member = tarfile.TarInfo(name=name)
                member.size = len(payload)
                archive.addfile(member, io.BytesIO(payload))
            add("v1/shard-0-ok.jsonl", good + "garbage line\n")
            add("../escape/shard-0-evil.jsonl", good)
            add("notastore/shard-0-alien.jsonl", good)
        target = tmp_path / "dst"
        reports = import_cache(tarball, str(target))
        (report,) = reports  # only the valid v1 member was considered
        assert report.directory == "v1"
        assert report.imported == 1
        assert report.corrupt_dropped == 1
        assert not (tmp_path / "escape").exists()
        assert SolveStore(target).get("a" * 64) == 5

    def test_export_disabled_cache_raises(self, tmp_path):
        import pytest

        from repro.errors import ConfigurationError
        from repro.solve.gc import export_cache, import_cache
        with pytest.raises(ConfigurationError):
            export_cache(tmp_path / "x.tar.gz", "off")
        with pytest.raises(ConfigurationError):
            import_cache(tmp_path / "x.tar.gz", "off")

    def test_cli_export_import_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        _populate_both_stores(tmp_path / "src")
        tarball = str(tmp_path / "seed.tar.gz")
        assert main(["cache", "export", tarball,
                     "--cache", str(tmp_path / "src")]) == 0
        assert "packed" in capsys.readouterr().out
        assert main(["cache", "import", tarball,
                     "--cache", str(tmp_path / "dst")]) == 0
        assert "merged" in capsys.readouterr().out
        # Empty archive edge: exporting an empty store packs nothing.
        assert main(["cache", "export", str(tmp_path / "empty.tar.gz"),
                     "--cache", str(tmp_path / "nothing")]) == 0
        assert "nothing to pack" in capsys.readouterr().out
        assert main(["cache", "import", str(tmp_path / "empty.tar.gz"),
                     "--cache", str(tmp_path / "dst")]) == 0
        assert "no store shards" in capsys.readouterr().out
