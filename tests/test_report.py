"""The one-shot reproduction report and its CLI command."""

import pytest

from repro.cli import main
from repro.experiments.report import full_report, refined_srb_section
from repro.pwcet import EstimatorConfig


@pytest.fixture(scope="module")
def report_text():
    return full_report(EstimatorConfig())


class TestFullReport:
    def test_contains_every_section(self, report_text):
        for heading in ("Figure 1", "Figure 3", "Figure 4",
                        "refined SRB", "cost trade-off"):
            assert heading in report_text

    def test_contains_gain_summary(self, report_text):
        assert "SRB gain vs no protection" in report_text
        assert "paper: SRB avg 40%" in report_text

    def test_configuration_line(self, report_text):
        assert "pfail = 0.0001" in report_text
        assert "1024B cache" in report_text

    def test_refined_section_floor(self):
        text = refined_srb_section(EstimatorConfig())
        assert "refinement floor" in text
        assert "srb+" in text or "fibcall" in text


class TestReportCommand:
    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--output", str(target)]) == 0
        assert "report written" in capsys.readouterr().out
        assert "Figure 4" in target.read_text()
