"""The persistent solve store: identity, recovery, concurrency.

The store's contract mirrors the planner's: *bit-identical outputs* —
a warm run must produce exactly the numbers a cold run computes, and
anything unreadable on disk (truncated tails, corrupt bytes, foreign
schema versions) must degrade to a re-solve, never to a wrong value.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.solve.store import (CACHE_ENV, SCHEMA_VERSION, SolveStore,
                               solve_key, store_context)
from repro.suite import EVALUATED_BENCHMARKS, load

MECHANISMS = ("none", "srb", "rw")


def _shards(store: SolveStore):
    return sorted(store._shard_dir.glob("shard-*.jsonl"))


class TestRoundTrip:
    def test_value_round_trip_identity(self, tmp_path):
        store = SolveStore(tmp_path)
        entries = {solve_key("ctx", [("x", 1.0)], False): 0,
                   solve_key("ctx", [("x", 2.0)], False): 41,
                   solve_key("ctx", [("x", 2.0)], True): 42,
                   solve_key("ctx", [("y", 0.5)], False): 10**12}
        for key, value in entries.items():
            store.put(key, value)
        store.close()
        fresh = SolveStore(tmp_path)
        for key, value in entries.items():
            assert fresh.get(key) == value
        assert fresh.stats.hits == len(entries)

    def test_artefact_round_trip_identity(self, tmp_path):
        store = SolveStore(tmp_path)
        artefact = {"objective": 1234.0,
                    "values": {"e_0_1": 3.0, "m_2_s1": 0.5}}
        key = solve_key("ctx", [("e_0_1", 7.0)], False, kind="solution")
        store.put_artefact(key, artefact)
        store.close()
        assert SolveStore(tmp_path).get_artefact(key) == artefact

    def test_solution_and_value_keys_do_not_collide(self):
        named = [("x", 1.0)]
        assert (solve_key("ctx", named, False)
                != solve_key("ctx", named, False, kind="solution"))

    def test_key_is_order_independent_but_context_sensitive(self):
        assert (solve_key("ctx", [("a", 1.0), ("b", 2.0)], False)
                == solve_key("ctx", [("b", 2.0), ("a", 1.0)], False))
        assert (solve_key("ctx", [("a", 1.0)], False)
                != solve_key("other", [("a", 1.0)], False))
        assert (solve_key("ctx", [("a", 1.0)], False)
                != solve_key("ctx", [("a", 1.0)], True))

    def test_missing_key_counts_a_miss(self, tmp_path):
        store = SolveStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1

    def test_duplicate_put_not_rewritten(self, tmp_path):
        store = SolveStore(tmp_path)
        key = solve_key("ctx", [("x", 1.0)], False)
        store.put(key, 5)
        store.put(key, 5)
        assert store.stats.writes == 1


class TestSchemaVersioning:
    def test_entries_live_under_versioned_directory(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(solve_key("ctx", [("x", 1.0)], False), 5)
        assert (tmp_path / f"v{SCHEMA_VERSION}").is_dir()

    def test_schema_bump_invalidates_entries(self, tmp_path, monkeypatch):
        key = solve_key("ctx", [("x", 1.0)], False)
        store = SolveStore(tmp_path)
        store.put(key, 5)
        store.close()
        monkeypatch.setattr("repro.solve.store.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        fresh = SolveStore(tmp_path)
        # Old shards are not even loaded (different subdirectory), and
        # freshly derived keys differ anyway (version in the preimage).
        assert fresh.get(key) is None
        assert key != solve_key("ctx", [("x", 1.0)], False)


class TestCorruptionRecovery:
    def _populated(self, tmp_path) -> tuple[SolveStore, str]:
        store = SolveStore(tmp_path)
        key = solve_key("ctx", [("x", 1.0)], False)
        store.put(key, 5)
        store.close()
        return store, key

    def test_truncated_tail_is_skipped(self, tmp_path):
        store, key = self._populated(tmp_path)
        shard = _shards(store)[0]
        with open(shard, "a") as handle:
            handle.write('{"t":"solve","k":"abc","v":12')  # killed writer
        fresh = SolveStore(tmp_path)
        assert fresh.get(key) == 5
        assert fresh.stats.corrupt_skipped == 1

    def test_garbage_bytes_are_skipped(self, tmp_path):
        store, key = self._populated(tmp_path)
        shard = _shards(store)[0]
        with open(shard, "ab") as handle:
            handle.write(b"\x00\xffgarbage\n[1, 2\n")
        fresh = SolveStore(tmp_path)
        assert fresh.get(key) == 5
        assert fresh.stats.corrupt_skipped >= 1

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        store, key = self._populated(tmp_path)
        shard = _shards(store)[0]
        entry = json.loads(shard.read_text().splitlines()[0])
        entry["v"] = entry["v"] + 1  # flip the value, keep the checksum
        with open(shard, "a") as handle:
            handle.write(json.dumps(entry) + "\n")
        other = solve_key("ctx", [("y", 1.0)], False)
        with open(shard, "a") as handle:
            handle.write(json.dumps({"t": "solve", "k": other, "v": 9,
                                     "c": 123456}) + "\n")
        fresh = SolveStore(tmp_path)
        assert fresh.get(key) == 5  # the tampered duplicate is dropped
        assert fresh.get(other) is None
        assert fresh.stats.corrupt_skipped == 2

    def test_corrupt_entry_is_resolved_and_rewritten(self, tmp_path):
        store, key = self._populated(tmp_path)
        for shard in _shards(store):
            shard.write_text("not json at all\n")
        fresh = SolveStore(tmp_path)
        assert fresh.get(key) is None
        fresh.put(key, 5)  # the re-solve writes a clean entry
        fresh.close()
        assert SolveStore(tmp_path).get(key) == 5

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        target = tmp_path / "readonly"
        target.mkdir()
        os.chmod(target, 0o555)
        try:
            store = SolveStore(target)
            key = solve_key("ctx", [("x", 1.0)], False)
            store.put(key, 5)  # must not raise
            assert store.get(key) == 5  # still cached in memory
        finally:
            os.chmod(target, 0o755)


def _concurrent_writer(args) -> int:
    root, writer_id = args
    store = SolveStore(root)
    for index in range(25):
        store.put(solve_key(f"w{writer_id}", [("x", float(index))], False),
                  writer_id * 1000 + index)
    store.close()
    return writer_id


class TestConcurrentWriters:
    def test_parallel_processes_share_one_store(self, tmp_path):
        """Pool workers appending concurrently, like ``prime()`` does."""
        with multiprocessing.Pool(4) as pool:
            pool.map(_concurrent_writer,
                     [(str(tmp_path), writer) for writer in range(4)])
        store = SolveStore(tmp_path)
        for writer in range(4):
            for index in range(25):
                key = solve_key(f"w{writer}", [("x", float(index))], False)
                assert store.get(key) == writer * 1000 + index
        assert store.stats.corrupt_skipped == 0


class TestResolution:
    def test_off_values_disable(self, monkeypatch):
        for value in ("off", "OFF", "none", "0"):
            monkeypatch.setenv(CACHE_ENV, value)
            assert SolveStore.resolve() is None

    def test_override_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "off")
        store = SolveStore.resolve(str(tmp_path))
        assert store is not None and store.root == tmp_path
        assert SolveStore.resolve("off") is None

    def test_environment_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "cache"))
        store = SolveStore.resolve()
        assert store.root == tmp_path / "cache"

    def test_default_is_user_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        store = SolveStore.resolve()
        assert store.root == tmp_path / "repro" / "solve"


class TestWarmPipeline:
    """The tentpole property: a warm rerun performs zero backend solves."""

    def _estimate_all(self, name: str, cache: str):
        estimator = PWCETEstimator(load(name),
                                   EstimatorConfig(cache=cache), name=name)
        values = {mechanism: estimator.estimate(mechanism).pwcet()
                  for mechanism in MECHANISMS}
        return values, estimator.solver_stats

    @pytest.mark.parametrize("name", ("crc", "ud"))
    def test_warm_estimator_solves_nothing(self, tmp_path, name):
        cache = str(tmp_path / "store")
        cold_values, cold_stats = self._estimate_all(name, cache)
        assert cold_stats.ilp_solved > 0
        warm_values, warm_stats = self._estimate_all(name, cache)
        assert warm_values == cold_values
        assert warm_stats.ilp_solved == 0
        assert warm_stats.lp_solved == 0
        assert warm_stats.store_hits == cold_stats.ilp_solved

    def test_cache_off_disables_persistence(self, tmp_path):
        cache = str(tmp_path / "store")
        self._estimate_all("crc", cache)
        _, stats = self._estimate_all("crc", "off")
        assert stats.ilp_solved > 0
        assert stats.store_hits == 0

    def test_primed_pool_results_are_persisted(self, tmp_path):
        cache = str(tmp_path / "store")
        config = EstimatorConfig(cache=cache, workers=2)
        parallel = PWCETEstimator(load("crc"), config, name="crc")
        for mechanism in MECHANISMS:
            parallel.estimate(mechanism)
        assert parallel.solver_stats.ilp_solved > 0
        warm = PWCETEstimator(load("crc"), EstimatorConfig(cache=cache),
                              name="crc")
        for mechanism in MECHANISMS:
            warm.estimate(mechanism)
        assert warm.solver_stats.ilp_solved == 0

    def test_relaxed_mode_keys_apart(self, tmp_path):
        cache = str(tmp_path / "store")
        exact, _ = self._estimate_all("ud", cache)
        estimator = PWCETEstimator(load("ud"),
                                   EstimatorConfig(cache=cache,
                                                   relaxed=True), name="ud")
        relaxed = {mechanism: estimator.estimate(mechanism).pwcet()
                   for mechanism in MECHANISMS}
        for mechanism in MECHANISMS:
            assert relaxed[mechanism] >= exact[mechanism]


class TestWarmSuite:
    """Acceptance: the warm 25-benchmark suite solves zero backend ILPs
    and reproduces the cold numbers bit for bit."""

    def test_full_suite_warm_rerun(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        config = EstimatorConfig(cache=str(tmp_path / "store"))
        monkeypatch.setattr(runner, "_CACHE", {})
        cold = runner.run_suite(config)
        cold_totals = runner.solver_totals(cold)
        assert cold_totals["ilp_solved"] > 0
        monkeypatch.setattr(runner, "_CACHE", {})
        warm = runner.run_suite(config)
        warm_totals = runner.solver_totals(warm)
        assert warm_totals["ilp_solved"] == 0
        assert warm_totals["lp_solved"] == 0
        assert warm_totals["fixpoints_run"] == 0
        # The plan pass satisfies every (mechanism, pfail) cell from
        # the persistent cell store — no solve stage runs at all, so
        # the warm run's work is zero rather than all-store-hits.
        assert warm_totals["cells_from_store"] == \
            3 * len(EVALUATED_BENCHMARKS)
        for before, after in zip(cold, warm):
            assert before.name == after.name
            assert before.wcet_fault_free == after.wcet_fault_free
            for mechanism in MECHANISMS:
                assert before.pwcet(mechanism) == after.pwcet(mechanism)


class TestEstimatorContext:
    def test_geometry_separates_contexts(self):
        from repro.cache import CacheGeometry
        from repro.ipet import TimingModel
        timing = TimingModel()
        small = CacheGeometry.from_size(512, 2, 16)
        paper = CacheGeometry.from_size(1024, 4, 16)
        assert (store_context("cfg", small, timing)
                != store_context("cfg", paper, timing))

    def test_cfg_digest_stable_and_content_sensitive(self):
        first = load("crc").cfg.digest()
        assert first == load("crc").cfg.digest()
        assert first != load("ud").cfg.digest()
