"""The end-to-end pWCET estimator."""

import pytest

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError, EstimationError
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.pwcet.estimator import TARGET_EXCEEDANCE


@pytest.fixture(scope="module")
def estimator(loop_program):
    return PWCETEstimator(loop_program, EstimatorConfig(),
                          name="loop_program")


class TestConfig:
    def test_defaults_match_paper(self):
        config = EstimatorConfig()
        assert config.geometry.total_bytes == 1024
        assert config.geometry.ways == 4
        assert config.geometry.block_bytes == 16
        assert config.timing.hit_cycles == 1
        assert config.timing.memory_cycles == 100
        assert config.pfail == 1e-4

    def test_fault_model_derived(self):
        model = EstimatorConfig().fault_model()
        assert model.pfail == 1e-4
        assert model.block_bits == 128


class TestEstimates:
    def test_ordering_at_target(self, estimator):
        """WCET_ff <= pWCET_RW <= pWCET_SRB <= pWCET_none."""
        ff = estimator.fault_free_wcet()
        none = estimator.estimate("none").pwcet()
        srb = estimator.estimate("srb").pwcet()
        rw = estimator.estimate("rw").pwcet()
        assert ff <= rw <= srb <= none

    def test_ordering_along_whole_curve(self, estimator):
        curves = {name: estimator.estimate(name).exceedance_curve()
                  for name in ("none", "srb", "rw")}
        for probability in (1e-2, 1e-5, 1e-8, 1e-11, 1e-15):
            assert (curves["rw"].pwcet(probability)
                    <= curves["srb"].pwcet(probability)
                    <= curves["none"].pwcet(probability))

    def test_pwcet_monotone_in_probability(self, estimator):
        estimate = estimator.estimate("none")
        values = [estimate.pwcet(p)
                  for p in (1e-3, 1e-6, 1e-9, 1e-12, 1e-15)]
        assert values == sorted(values)

    def test_memoised(self, estimator):
        assert estimator.estimate("rw") is estimator.estimate("rw")

    def test_estimate_all(self, estimator):
        estimates = estimator.estimate_all()
        assert set(estimates) == {"none", "srb", "rw"}

    def test_default_probability_is_paper_target(self, estimator):
        estimate = estimator.estimate("none")
        assert estimate.pwcet() == estimate.pwcet(TARGET_EXCEEDANCE)

    def test_unknown_mechanism(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.estimate("ecc")
        with pytest.raises(EstimationError):
            estimator.estimate(42)

    def test_bad_probability(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.estimate("none").pwcet(0.0)

    def test_penalty_distribution_mass(self, estimator):
        for name in ("none", "srb", "rw"):
            penalty = estimator.penalty_distribution(name)
            assert penalty.total_mass == pytest.approx(1.0, abs=1e-9)


class TestSensitivity:
    def test_pwcet_monotone_in_pfail(self, loop_program):
        previous = None
        for pfail in (1e-6, 1e-5, 1e-4, 1e-3):
            config = EstimatorConfig(pfail=pfail)
            estimator = PWCETEstimator(loop_program, config)
            value = estimator.estimate("none").pwcet()
            if previous is not None:
                assert value >= previous
            previous = value

    def test_zero_pfail_degenerates_to_fault_free(self, loop_program):
        config = EstimatorConfig(pfail=0.0)
        estimator = PWCETEstimator(loop_program, config)
        for name in ("none", "srb", "rw"):
            assert (estimator.estimate(name).pwcet()
                    == estimator.fault_free_wcet())

    def test_relaxed_config_upper_bounds_exact(self, loop_program):
        exact = PWCETEstimator(loop_program, EstimatorConfig())
        relaxed = PWCETEstimator(loop_program,
                                 EstimatorConfig(relaxed=True))
        for name in ("none", "srb", "rw"):
            assert (relaxed.estimate(name).pwcet()
                    >= exact.estimate(name).pwcet())

    def test_bigger_cache_never_hurts_fault_free(self, loop_program):
        small = PWCETEstimator(loop_program, EstimatorConfig(
            geometry=CacheGeometry.from_size(512, 4, 16)))
        large = PWCETEstimator(loop_program, EstimatorConfig(
            geometry=CacheGeometry.from_size(2048, 4, 16)))
        assert large.fault_free_wcet() <= small.fault_free_wcet()
