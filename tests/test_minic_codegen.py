"""Code generation: block structure, addresses, call sites."""

import pytest
from hypothesis import given, settings

from repro.isa import INSTRUCTION_SIZE, InstructionKind
from repro.minic import Compute, Function, If, Loop, compile_function
from repro.minic.ast import Call
from tests.strategies import programs


class TestStraightLine:
    def test_prologue_and_epilogue_wrap_body(self):
        code = compile_function(Function("f", [Compute(5)]))
        entry = code.cfg.block(code.cfg.entry_id)
        exit_ = code.cfg.block(code.cfg.exit_id)
        assert entry.instructions[0].mnemonic == "addiu"
        assert exit_.instructions[-1].mnemonic == "jr"
        # 4 prologue + 5 body + 5 epilogue
        assert code.cfg.instruction_count() == 14
        assert code.size_bytes == 14 * INSTRUCTION_SIZE

    def test_addresses_contiguous_from_zero(self):
        code = compile_function(Function("f", [Compute(9)]))
        addresses = sorted(
            address for block in code.cfg.blocks.values()
            for address in block.addresses)
        assert addresses == list(range(0, code.size_bytes,
                                       INSTRUCTION_SIZE))


class TestLoops:
    def test_header_carries_bound(self):
        code = compile_function(Function("f", [Loop(7, [Compute(2)])]))
        headers = [block for block in code.cfg.blocks.values()
                   if block.loop_bound is not None]
        assert len(headers) == 1
        assert headers[0].loop_bound == 8  # iterations + 1

    def test_header_has_two_successors(self):
        code = compile_function(Function("f", [Loop(7, [Compute(2)])]))
        [header] = [block.block_id for block in code.cfg.blocks.values()
                    if block.loop_bound is not None]
        assert len(code.cfg.successors(header)) == 2

    def test_latch_jumps_back(self):
        code = compile_function(Function("f", [Loop(7, [Compute(2)])]))
        [header] = [block.block_id for block in code.cfg.blocks.values()
                    if block.loop_bound is not None]
        latch_edges = [src for src in code.cfg.predecessors(header)
                       if code.cfg.block(src).instructions
                       and code.cfg.block(src).instructions[-1].kind
                       is InstructionKind.JUMP]
        assert len(latch_edges) == 1

    def test_nested_loops_have_two_headers(self):
        code = compile_function(
            Function("f", [Loop(3, [Loop(4, [Compute(1)])])]))
        bounds = sorted(block.loop_bound
                        for block in code.cfg.blocks.values()
                        if block.loop_bound is not None)
        assert bounds == [4, 5]


class TestBranches:
    def test_if_without_else_diamonds(self):
        code = compile_function(Function("f", [If([Compute(3)])]))
        branching = [block.block_id for block in code.cfg.blocks.values()
                     if len(code.cfg.successors(block.block_id)) == 2]
        assert len(branching) == 1

    def test_if_with_else_has_join(self):
        code = compile_function(
            Function("f", [If([Compute(3)], [Compute(4)]), Compute(1)]))
        code.cfg.validate()
        joins = [block.block_id for block in code.cfg.blocks.values()
                 if len(code.cfg.predecessors(block.block_id)) == 2]
        assert joins  # at least the join point

    def test_then_branch_ends_with_jump_over_else(self):
        code = compile_function(
            Function("f", [If([Compute(3)], [Compute(4)])]))
        jumps = [block for block in code.cfg.blocks.values()
                 if block.instructions
                 and block.instructions[-1].kind is InstructionKind.JUMP]
        assert len(jumps) == 1


class TestCalls:
    def test_call_block_recorded(self):
        code = compile_function(Function("f", [Call("g")]))
        assert len(code.call_sites) == 1
        block_id, callee = code.call_sites[0]
        assert callee == "g"
        assert code.cfg.block(block_id).call_target == "g"

    def test_call_block_single_successor(self):
        code = compile_function(
            Function("f", [Compute(2), Call("g"), Compute(2)]))
        block_id, _callee = code.call_sites[0]
        assert len(code.cfg.successors(block_id)) == 1


class TestGeneratedCFGs:
    @settings(max_examples=40, deadline=None)
    @given(programs())
    def test_random_programs_compile_to_valid_cfgs(self, program):
        code = compile_function(program.functions[0])
        code.cfg.validate()
        # Addresses are unique and aligned.
        addresses = [address for block in code.cfg.blocks.values()
                     for address in block.addresses]
        assert len(addresses) == len(set(addresses))
        assert all(address % INSTRUCTION_SIZE == 0
                   for address in addresses)
