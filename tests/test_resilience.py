"""The fault-tolerant pipeline: retries, quarantine, partial results.

Covers the resilience tentpole end to end: policy arithmetic, inline
and pool recovery from transient faults (including a worker SIGKILL'd
under the chaos harness), stage-timeout supervision, quarantine with
subtree-only cascades in ``strict=False`` runs — and the acceptance
property that a recovered chaos run stays byte-identical to an
undisturbed sequential one.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import SolverError
from repro.experiments.fig4 import format_fig4, row_of
from repro.experiments.runner import (FailedBenchmark, fresh_results,
                                      run_suite)
from repro.pipeline import PipelineScheduler, PipelineStats
from repro.pipeline.resilience import (CASCADED, PERMANENT, TRANSIENT,
                                       DEFAULT_RETRY_POLICY, RetryPolicy,
                                       StageTimeout, TaskFailure,
                                       classify_failure)
from repro.pwcet import EstimatorConfig
from repro.solve.store import SolveStore
from repro.sweep import format_sweep_report, geometry_grid, run_sweep
from repro.testing import faultinject
from repro.testing.faultinject import PLAN_ENV, STATE_ENV

SUBSET = ("fibcall", "bs", "prime")

#: Instant retries for tests — no real backoff sleeping.
FAST = RetryPolicy(sleep=lambda seconds: None)


@pytest.fixture(autouse=True)
def _clean_harness(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    faultinject._PLAN_MEMO = None
    faultinject._LOCAL_COUNTS.clear()
    yield
    faultinject._PLAN_MEMO = None
    faultinject._LOCAL_COUNTS.clear()


class TestPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.12)
        assert policy.backoff(1) == 0.05
        assert policy.backoff(2) == 0.10
        assert policy.backoff(3) == 0.12  # capped
        assert policy.backoff(10) == 0.12

    def test_stage_timeouts_override_the_global_budget(self):
        policy = RetryPolicy(timeout=5.0,
                             stage_timeouts={"solve": 30.0})
        assert policy.timeout_for("solve") == 30.0
        assert policy.timeout_for("classify") == 5.0
        assert RetryPolicy().timeout_for("solve") is None

    def test_classification_follows_the_taxonomy(self):
        from concurrent.futures.process import BrokenProcessPool
        assert classify_failure(BrokenProcessPool()) == TRANSIENT
        assert classify_failure(StageTimeout("late")) == TRANSIENT
        assert classify_failure(ConnectionError()) == TRANSIENT
        assert classify_failure(EOFError()) == TRANSIENT
        assert classify_failure(SolverError("infeasible")) == PERMANENT
        assert classify_failure(ValueError("bad input")) == PERMANENT

    def test_jittered_sleep_stays_within_the_backoff_envelope(self):
        """``sleep_backoff`` samples uniformly *downward* from the
        deterministic ceiling: never longer (no pile-up past the cap),
        never below ``backoff * (1 - jitter)`` (still a real wait)."""
        naps = []
        rolls = iter((0.0, 1.0, 0.5))
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0,
                             jitter=0.5, rng=lambda: next(rolls),
                             sleep=naps.append)
        policy.sleep_backoff(1)  # roll 0.0: the full ceiling
        policy.sleep_backoff(1)  # roll 1.0: the floor of the envelope
        policy.sleep_backoff(2)  # roll 0.5: mid-envelope
        assert naps == pytest.approx([0.1, 0.05, 0.15])
        for nap, attempt in zip(naps, (1, 1, 2)):
            ceiling = policy.backoff(attempt)
            assert ceiling * (1 - policy.jitter) <= nap <= ceiling

    def test_sleep_backoff_clamps_to_the_deadline(self):
        """A retry sleep never overshoots the run's global deadline —
        and sleeps not at all once the deadline has passed."""
        naps = []
        policy = RetryPolicy(backoff_base=10.0, backoff_cap=10.0,
                             jitter=0.0, sleep=naps.append)
        slept = policy.sleep_backoff(1, deadline=time.monotonic() + 0.2)
        assert 0.0 < slept <= 0.2
        assert naps == [slept]
        # An expired deadline skips the sleep entirely.
        assert policy.sleep_backoff(1,
                                    deadline=time.monotonic() - 1.0) == 0.0
        assert len(naps) == 1

    def test_failure_report_round_trips_through_dicts(self):
        from repro.pipeline.resilience import FailureReport
        failure = TaskFailure(key="cell:crc:0", stage="cell",
                              classification=TRANSIENT, attempts=3,
                              error="injected network fault",
                              elapsed=1.25, root_key="cell:crc:0")
        cascaded = TaskFailure(key="estimate:crc", stage="estimate",
                               classification=CASCADED, attempts=0,
                               error="upstream quarantined",
                               elapsed=0.0, root_key="cell:crc:0")
        report = FailureReport(failures=[failure, cascaded], retries=4,
                               timeouts=1, pool_rebuilds=2)
        restored = FailureReport.from_dict(report.as_dict())
        assert restored.as_dict() == report.as_dict()
        assert restored.retries == 4
        assert restored.timeouts == 1
        assert restored.pool_rebuilds == 2
        assert [f.key for f in restored.failures] == \
            [f.key for f in report.failures]
        restored_failure = restored.failures[0]
        assert restored_failure == failure
        assert restored_failure.classification == TRANSIENT
        assert restored.failures[1].root_key == "cell:crc:0"
        # A clean report survives the trip too, and stays ok.
        clean = FailureReport.from_dict(FailureReport().as_dict())
        assert clean.ok
        assert clean.summary()["failed_tasks"] == 0


def flaky(failures: int, error=ConnectionError):
    """A task body failing ``failures`` times before succeeding."""
    state = {"left": failures}

    def fn(*deps):
        if state["left"] > 0:
            state["left"] -= 1
            raise error(f"flake ({state['left']} left)")
        return "done"
    return fn


class TestInlineRecovery:
    def test_transient_failures_retry_until_success(self):
        naps = []
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.15,
                             jitter=0.0, sleep=naps.append)
        scheduler = PipelineScheduler(workers=1, retry=policy)
        scheduler.add("a", flaky(2))
        stats = PipelineStats()
        assert scheduler.run(stats=stats)["a"] == "done"
        assert stats.failure_report.ok
        assert stats.failure_report.retries == 2
        # The deterministic exponential schedule, not wall-clock luck.
        assert naps == [0.1, 0.15]

    def test_exhausted_transient_budget_quarantines(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)
        scheduler = PipelineScheduler(workers=1, retry=policy,
                                      strict=False)
        scheduler.add("a", flaky(99))
        stats = PipelineStats()
        failure = scheduler.run(stats=stats)["a"]
        assert isinstance(failure, TaskFailure)
        assert failure.classification == TRANSIENT
        assert failure.attempts == 2
        assert stats.failure_report.retries == 1

    def test_permanent_failures_never_retry(self):
        naps = []
        policy = RetryPolicy(sleep=naps.append)
        scheduler = PipelineScheduler(workers=1, retry=policy,
                                      strict=False)
        scheduler.add("a", flaky(99, error=SolverError))
        failure = scheduler.run()["a"]
        assert failure.classification == PERMANENT
        assert failure.attempts == 1
        assert naps == []

    def test_strict_mode_reraises_the_original_error(self):
        scheduler = PipelineScheduler(workers=1, retry=FAST)
        scheduler.add("a", flaky(99, error=SolverError))
        stats = PipelineStats()
        with pytest.raises(SolverError, match="flake"):
            scheduler.run(stats=stats)
        # The ledger still records what happened before the raise.
        assert not stats.failure_report.ok

    def test_no_policy_is_the_legacy_raw_path(self):
        scheduler = PipelineScheduler(workers=1, retry=None)
        scheduler.add("a", flaky(1))  # transient, would recover
        with pytest.raises(ConnectionError):
            scheduler.run()


class TestPartialResults:
    def test_only_the_dependent_subtree_cascades(self):
        scheduler = PipelineScheduler(workers=1, retry=FAST,
                                      strict=False)
        scheduler.add("bad", flaky(99, error=SolverError))
        scheduler.add("child", lambda dep: dep, deps=("bad",))
        scheduler.add("grandchild", lambda dep: dep, deps=("child",))
        scheduler.add("ok", lambda: 41)
        scheduler.add("ok2", lambda dep: dep + 1, deps=("ok",))
        stats = PipelineStats()
        results = scheduler.run(stats=stats)
        # The independent subtree completed normally ...
        assert results["ok"] == 41
        assert results["ok2"] == 42
        # ... while the quarantined root's descendants cascaded.
        assert results["bad"].classification == PERMANENT
        assert results["child"].classification == CASCADED
        assert results["child"].root_key == "bad"
        assert results["grandchild"].root_key == "bad"
        assert stats.partial
        report = stats.failure_report
        assert [f.key for f in report.quarantined] == ["bad"]
        assert report.summary()["failed_tasks"] == 3

    def test_run_suite_partial_returns_failed_benchmark(
            self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc")
        with fresh_results():
            stats = PipelineStats()
            results = run_suite(EstimatorConfig(cache="off"),
                                benchmarks=("crc", "fibcall"),
                                pipeline_stats=stats,
                                strict=False, retry=FAST)
            crc, fibcall = results
            assert isinstance(crc, FailedBenchmark)
            assert crc.name == "crc"
            assert "injected solver fault" in crc.failure.error \
                or crc.failure.cascaded
            # The undisturbed benchmark is a complete, usable result.
            assert fibcall.name == "fibcall"
            assert fibcall.pwcet("rw") > 0
            assert row_of(fibcall).name == "fibcall"
            assert stats.partial
            assert stats.failure_report.quarantined

    def test_run_suite_strict_raises_the_solver_error(
            self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc")
        with fresh_results():
            with pytest.raises(SolverError, match="injected"):
                run_suite(EstimatorConfig(cache="off"),
                          benchmarks=("crc",), retry=FAST)

    def test_failed_benchmarks_are_never_memoised(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc#1")
        with fresh_results():
            first = run_suite(EstimatorConfig(cache="off"),
                              benchmarks=("crc",),
                              strict=False,
                              retry=RetryPolicy(max_attempts=1,
                                                sleep=lambda s: None))
            assert isinstance(first[0], FailedBenchmark)
            # Ordinal #1 is spent: the rerun recomputes and succeeds.
            second = run_suite(EstimatorConfig(cache="off"),
                               benchmarks=("crc",),
                               strict=False, retry=FAST)
            assert not isinstance(second[0], FailedBenchmark)
            assert second[0].pwcet("none") > 0

    def test_sweep_partial_annotates_the_failed_cell(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc")
        with fresh_results():
            geometries = geometry_grid(sizes=(1024,), ways=(4,),
                                       lines=(16,))
            result = run_sweep(geometries, pfails=(1e-4, 1e-3),
                               benchmarks=("crc", "fibcall"),
                               config=EstimatorConfig(cache="off"),
                               strict=False, retry=FAST)
            # Both (geometry, pfail) cells contain crc: both fail.
            assert len(result.failed) == 2
            assert all(failure.benchmarks == ("crc",)
                       for failure in result.failed)
            assert "injected solver fault" in result.failed[0].reason
            assert result.points == ()
            text = format_sweep_report(result)
            assert "FAILED cells (2 of 2" in text
            assert "crc" in text


class TestCleanRunsUnchanged:
    def test_clean_report_is_structurally_empty(self):
        scheduler = PipelineScheduler(workers=1,
                                      retry=DEFAULT_RETRY_POLICY,
                                      strict=False)
        scheduler.add("a", lambda: 1)
        stats = PipelineStats()
        scheduler.run(stats=stats)
        assert stats.failure_report.ok
        assert not stats.partial
        assert stats.failure_report.summary() == {
            "failed_tasks": 0, "quarantined": 0, "retries": 0,
            "timeouts": 0, "pool_rebuilds": 0}

    def test_clean_sweep_report_has_no_failed_section(self):
        with fresh_results():
            geometries = geometry_grid(sizes=(1024,), ways=(4,),
                                       lines=(16,))
            result = run_sweep(geometries, pfails=(1e-4,),
                               benchmarks=("fibcall",),
                               config=EstimatorConfig(cache="off"))
            assert result.failed == ()
            assert "FAILED" not in format_sweep_report(result)


def double_stage(value):
    """Module-level pool task body (picklable)."""
    return value * 2


def sleepy_stage():
    time.sleep(30)
    return "too late"  # pragma: no cover - always killed first


class TestPoolRecovery:
    def test_sigkilled_worker_is_rebuilt_and_retried(
            self, monkeypatch, tmp_path):
        """The chaos plan kills the worker running the stage's first
        global invocation; the pool is rebuilt and the resubmitted
        task succeeds with the identical result."""
        monkeypatch.setenv(PLAN_ENV, "worker:kill@double_stage#1")
        monkeypatch.setenv(STATE_ENV, str(tmp_path / "state"))
        scheduler = PipelineScheduler(workers=2, retry=FAST)
        scheduler.add("a", double_stage, args=(21,), pool=True)
        stats = PipelineStats()
        results = scheduler.run(stats=stats)
        assert results["a"] == 42
        report = stats.failure_report
        assert report.ok
        assert report.pool_rebuilds == 1
        assert report.retries == 1

    def test_timed_out_stage_is_killed_and_quarantined(self):
        policy = RetryPolicy(max_attempts=1, timeout=0.5,
                             sleep=lambda s: None)
        scheduler = PipelineScheduler(workers=2, retry=policy,
                                      strict=False)
        scheduler.add("slow", sleepy_stage, pool=True)
        scheduler.add("ok", lambda: "fine")
        stats = PipelineStats()
        started = time.perf_counter()
        results = scheduler.run(stats=stats)
        # The 30s stage was killed at its 0.5s budget, not awaited.
        assert time.perf_counter() - started < 15.0
        assert results["ok"] == "fine"
        failure = results["slow"]
        assert isinstance(failure, TaskFailure)
        assert failure.classification == TRANSIENT
        assert "timeout budget" in failure.error
        assert stats.failure_report.timeouts == 1
        assert stats.failure_report.pool_rebuilds == 1


class TestChaosByteIdentity:
    def test_chaos_suite_matches_undisturbed_sequential_run(
            self, monkeypatch, tmp_path):
        """The acceptance property: a 4-worker suite surviving worker
        kills and a torn shard write renders byte-identically to a
        sequential, undisturbed run."""
        with fresh_results():
            golden = run_suite(
                EstimatorConfig(cache=str(tmp_path / "golden")),
                benchmarks=SUBSET)
            golden_text = format_fig4([row_of(r) for r in golden])
        monkeypatch.setenv(PLAN_ENV,
                           "worker:kill@classify_stage#1;"
                           "worker:kill@cell_stage#2;"
                           "store:truncate_tail@*#1")
        monkeypatch.setenv(STATE_ENV, str(tmp_path / "state"))
        with fresh_results():
            stats = PipelineStats()
            chaos = run_suite(
                EstimatorConfig(cache=str(tmp_path / "chaos"),
                                workers=4),
                benchmarks=SUBSET, workers=4,
                pipeline_stats=stats, retry=FAST)
            chaos_text = format_fig4([row_of(r) for r in chaos])
        assert chaos_text == golden_text
        # The faults actually fired: recovery did real work.
        assert stats.failure_report.retries > 0
        assert stats.failure_report.pool_rebuilds > 0
        assert stats.failure_report.ok  # and nothing was lost


class TestStoreCrashRecovery:
    def test_torn_tail_of_a_killed_writer_is_dropped_and_repaired(
            self, monkeypatch, tmp_path):
        monkeypatch.setenv(PLAN_ENV, "store:truncate_tail@v1#1")
        writer = SolveStore(tmp_path)
        writer.put("k1", 41)  # injected torn write: half a line lands
        shards = list((tmp_path / "v1").glob("shard-*.jsonl"))
        assert len(shards) == 1
        text = shards[0].read_text()
        assert "\n" not in text  # genuinely torn, no complete line
        # A fresh handle drops the torn tail as corrupt ...
        reader = SolveStore(tmp_path)
        assert reader.get("k1") is None
        # ... and the recomputed entry is appended whole.
        reader.put("k1", 41)
        assert SolveStore(tmp_path).get("k1") == 41

    def test_close_is_idempotent(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put("k", 7)
        store.close()
        store.close()  # second close is a no-op, not a double-close
        assert SolveStore(tmp_path).get("k") == 7

    def test_del_survives_partial_initialisation(self):
        # __del__ may run on an instance whose __init__ never
        # completed (interpreter shutdown, failed construction).
        ghost = SolveStore.__new__(SolveStore)
        ghost.close()
        ghost.__del__()


class TestFaultPmfMemoBound:
    def test_memo_is_bounded_with_lru_eviction(self, monkeypatch):
        from repro.cache import CacheGeometry
        from repro.faults import FaultProbabilityModel
        from repro.reliability import (NoProtection,
                                       fault_pmf_cache_stats,
                                       reset_fault_pmf_cache)
        from repro.reliability import mechanism as mechanism_module

        monkeypatch.setattr(mechanism_module, "_FAULT_PMF_LIMIT", 4)
        reset_fault_pmf_cache()
        try:
            mechanism = NoProtection()
            geometry = CacheGeometry.from_size(1024, 4, 16)

            def pmf(pfail):
                return mechanism.fault_pmf(
                    FaultProbabilityModel(geometry, pfail))

            for exponent in range(1, 11):
                pmf(10.0 ** -exponent)
            stats = fault_pmf_cache_stats()
            assert stats.misses == 10
            assert stats.evicted == 6
            assert len(mechanism_module._FAULT_PMF_CACHE) == 4
            # LRU, not FIFO: a hit refreshes its entry, so the next
            # eviction takes the stalest *unused* key instead.
            pmf(10.0 ** -7)  # hit: oldest surviving entry, refreshed
            assert fault_pmf_cache_stats().hits == 1
            pmf(10.0 ** -11)  # evicts 1e-8, not the refreshed 1e-7
            pmf(10.0 ** -7)
            assert fault_pmf_cache_stats().hits == 2
            assert fault_pmf_cache_stats().evicted == 7
        finally:
            reset_fault_pmf_cache()

    def test_stats_summary_reports_evictions(self):
        from repro.pwcet import PWCETEstimator
        from repro.suite import load

        estimator = PWCETEstimator(load("fibcall"),
                                   EstimatorConfig(cache="off"),
                                   name="fibcall")
        assert "fault_pmf_evicted" in estimator.stats_summary()
