"""End-to-end soundness: the static bounds dominate fault injection.

The central claim of the paper's method is that for ANY chip (fault
map) and ANY structurally feasible execution, the execution time is at
most::

    WCET_ff + memory_latency * sum_s FMM[s][f_s]

where ``f_s`` is the number of faulty ways in set ``s``.  The pWCET at
probability ``p`` is then the quantile of that bound over the chip
population.  These tests replay sampled chips and paths on the
concrete simulator (with the mechanism's hardware behaviour) and check
domination — for all three mechanisms.
"""

import random

import pytest

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry, FaultMap
from repro.cfg import PathWalker
from repro.fmm import compute_fault_miss_map
from repro.ipet import TimingModel, compute_wcet
from repro.minic import (Call, Compute, Function, If, Loop, Program,
                         compile_program)
from repro.reliability import (MECHANISMS, NoProtection, ReliableWay,
                               SharedReliableBuffer)
from repro.sim import TraceExecutor

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)
TIMING = TimingModel()

#: Programs chosen to stress different locality regimes.
PROGRAMS = {
    "tiny_loop": Program([Function("main", [Loop(12, [Compute(9)])])],
                         name="tiny_loop"),
    "wide_loop": Program([Function("main", [Loop(6, [Compute(80)])])],
                         name="wide_loop"),
    "branchy": Program([Function("main", [
        Compute(5),
        Loop(8, [If([Compute(12)], [Compute(20)]), Compute(4)]),
    ])], name="branchy"),
    "calls": Program([
        Function("main", [Loop(5, [Call("leaf"), Compute(6)])]),
        Function("leaf", [Loop(3, [Compute(14)])]),
    ], name="calls"),
    "over_cache": Program([Function("main", [
        Loop(3, [Compute(160), If([Compute(90)])]),
    ])], name="over_cache"),
}


def deterministic_bound(wcet_ff: int, fmm, fault_map: FaultMap) -> int:
    """WCET bound for one concrete chip."""
    penalty_misses = sum(
        fmm.misses(set_index, min(fault_map.faulty_ways_in_set(set_index),
                                  fmm.max_fault_count))
        for set_index in range(fault_map.geometry.sets))
    return wcet_ff + TIMING.memory_cycles * penalty_misses


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("mechanism", MECHANISMS,
                         ids=[m.name for m in MECHANISMS])
def test_bound_dominates_fault_injection(program_name, mechanism):
    compiled = compile_program(PROGRAMS[program_name])
    analysis = CacheAnalysis(compiled.cfg, GEOMETRY)
    wcet_ff = compute_wcet(compiled.cfg, analysis.classification(),
                           TIMING).cycles
    fmm = compute_fault_miss_map(analysis, mechanism)
    walker = PathWalker(compiled.cfg, analysis.forest)
    rng = random.Random(hash((program_name, mechanism.name)) & 0xFFFF)

    reliable_ways = 1 if isinstance(mechanism, ReliableWay) else 0
    for trial in range(20):
        # Heavy fault rates to stress the bound far beyond realistic
        # pbf values (including fully faulty sets).
        pbf = rng.choice([0.05, 0.3, 0.7])
        fault_map = FaultMap.sample(GEOMETRY, pbf, rng,
                                    reliable_ways=reliable_ways)
        executor = TraceExecutor(GEOMETRY, TIMING, mechanism, fault_map)
        walk = walker.walk(rng, maximize_iterations=(trial % 2 == 0))
        outcome = executor.run(walk.addresses)
        bound = deterministic_bound(wcet_ff, fmm, fault_map)
        assert outcome.cycles <= bound, (
            f"{program_name}/{mechanism.name}: simulated {outcome.cycles} "
            f"cycles exceeds bound {bound} "
            f"(profile {fault_map.fault_profile()})")


@pytest.mark.parametrize("program_name", ["tiny_loop", "branchy"])
def test_whole_set_faulty_worst_case(program_name):
    """The adversarial case the paper motivates: entire sets faulty."""
    compiled = compile_program(PROGRAMS[program_name])
    analysis = CacheAnalysis(compiled.cfg, GEOMETRY)
    wcet_ff = compute_wcet(compiled.cfg, analysis.classification(),
                           TIMING).cycles
    walker = PathWalker(compiled.cfg, analysis.forest)
    for mechanism in (NoProtection(), SharedReliableBuffer()):
        fmm = compute_fault_miss_map(analysis, mechanism)
        for set_index in range(GEOMETRY.sets):
            fault_map = FaultMap.whole_set_faulty(GEOMETRY, set_index)
            executor = TraceExecutor(GEOMETRY, TIMING, mechanism,
                                     fault_map)
            walk = walker.walk(random.Random(set_index),
                               maximize_iterations=True)
            outcome = executor.run(walk.addresses)
            assert outcome.cycles <= deterministic_bound(
                wcet_ff, fmm, fault_map)


def test_srb_bound_tighter_than_none_for_full_sets():
    """For an entirely faulty set the SRB's FMM column must save the
    spatial-locality misses that the no-protection column pays."""
    compiled = compile_program(PROGRAMS["wide_loop"])
    analysis = CacheAnalysis(compiled.cfg, GEOMETRY)
    fmm_none = compute_fault_miss_map(analysis, NoProtection())
    fmm_srb = compute_fault_miss_map(analysis, SharedReliableBuffer())
    ways = GEOMETRY.ways
    improved = sum(
        fmm_srb.misses(s, ways) < fmm_none.misses(s, ways)
        for s in range(GEOMETRY.sets)
        if fmm_none.misses(s, ways) > 0)
    assert improved > 0


def test_exceedance_probability_calibrated_by_monte_carlo():
    """P(penalty > pWCET-quantile) estimated by Monte-Carlo must not
    exceed the target probability (within sampling noise).

    Uses an artificially large pfail so the tail is reachable with
    few samples.
    """
    from repro.pwcet import EstimatorConfig, PWCETEstimator
    compiled = compile_program(PROGRAMS["tiny_loop"])
    config = EstimatorConfig(pfail=2e-3)  # pbf ~ 0.226
    estimator = PWCETEstimator(compiled, config)
    estimate = estimator.estimate("none")
    target = 0.05
    threshold = estimate.pwcet(target)

    fmm = estimator.fault_miss_map("none")
    wcet_ff = estimator.fault_free_wcet()
    model = config.fault_model()
    rng = random.Random(99)
    exceed = 0
    samples = 4000
    for _ in range(samples):
        fault_map = FaultMap.sample(GEOMETRY, model.pbf, rng)
        if deterministic_bound(wcet_ff, fmm, fault_map) > threshold:
            exceed += 1
    observed = exceed / samples
    # The bound is conservative, so observed exceedance of the *bound*
    # at the quantile must be <= target plus noise (3 sigma).
    import math
    sigma = math.sqrt(target * (1 - target) / samples)
    assert observed <= target + 3 * sigma
