"""The incremental cell-granular DAG (PR 6).

Covers the plan pass (content-address probes, satisfied-from-store
completion, undemanded-task skipping), deterministic artifact-key
dispatch order, bit-identity of the cell-granular schedule against the
per-benchmark reference schedule, one-program-edit invalidation, and
the ``--only-cells`` sweep filter.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import fresh_results, run_benchmark, run_suite
from repro.pipeline import PipelineScheduler, PipelineStats
from repro.pwcet import EstimatorConfig
from repro.sweep import format_pareto_fronts, format_sweep_report, \
    format_sweep_table, geometry_grid, run_sweep

SUBSET = ("bs", "fibcall", "prime")
MECHANISMS = ("none", "srb", "rw")


def _slow_value(value):
    """Picklable pool task body (work stealing needs real pool tasks)."""
    time.sleep(0.05)
    return value


class TestPlanPass:
    def test_probe_hit_satisfies_task_and_skips_upstream(self):
        scheduler = PipelineScheduler(workers=1)
        ran = []
        scheduler.add("up", lambda: ran.append("up") or "U")
        scheduler.add("mid", lambda up: ran.append("mid") or up + "M",
                      deps=("up",), stage="cell", probe=lambda: "stored")
        scheduler.add("down", lambda mid: ran.append("down") or mid + "!",
                      deps=("mid",))
        stats = PipelineStats()
        results = scheduler.run(stats=stats)
        # The probed task never ran, its dependent saw the stored value
        # verbatim, and the now-undemanded upstream task was skipped.
        assert ran == ["down"]
        assert results["mid"] == "stored"
        assert results["down"] == "stored!"
        assert "up" not in results
        assert stats.from_store == {"cell": 1}
        assert stats.tasks == {"task": 1}

    def test_probe_miss_runs_the_whole_chain(self):
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("up", lambda: "U")
        scheduler.add("mid", lambda up: up + "M", deps=("up",),
                      stage="cell", probe=lambda: None)
        scheduler.add("down", lambda mid: mid + "!", deps=("mid",))
        stats = PipelineStats()
        results = scheduler.run(stats=stats)
        assert results["down"] == "UM!"
        assert stats.from_store == {}
        assert stats.tasks_run == 3

    def test_partial_hits_recompute_only_the_missed_branch(self):
        scheduler = PipelineScheduler(workers=1)
        ran = []
        scheduler.add("solve", lambda: ran.append("solve") or 10)
        scheduler.add("hit", lambda solve: ran.append("hit") or solve + 1,
                      deps=("solve",), stage="cell", probe=lambda: 99)
        scheduler.add("miss", lambda solve: ran.append("miss") or solve + 2,
                      deps=("solve",), stage="cell", probe=lambda: None)
        scheduler.add("sink", lambda a, b: (a, b), deps=("hit", "miss"))
        results = scheduler.run()
        # One cell missed, so the shared solve stage still runs — and
        # the hit cell's stored value is used as-is next to it.
        assert ran == ["solve", "miss"]
        assert results["sink"] == (99, 12)

    def test_plan_is_a_dry_run(self):
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("up", lambda: "U")
        scheduler.add("mid", lambda up: up, deps=("up",), stage="cell",
                      probe=lambda: "S")
        scheduler.add("down", lambda mid: mid + "!", deps=("mid",))
        plan = scheduler.plan()
        assert plan == {"from_store": ("mid",), "run": ("down",),
                        "skipped": ("up",)}
        # The task set was not consumed; run() applies the same plan.
        results = scheduler.run()
        assert results["down"] == "S!"

    def test_satisfied_sink_runs_nothing(self):
        scheduler = PipelineScheduler(workers=1)
        ran = []
        scheduler.add("up", lambda: ran.append("up") or "U")
        scheduler.add("sink", lambda up: ran.append("sink") or up,
                      deps=("up",), stage="cell", probe=lambda: "done")
        results = scheduler.run()
        assert ran == []
        assert results == {"sink": "done"}

    def test_work_stealing_preserves_results(self):
        scheduler = PipelineScheduler(workers=2)
        for index in range(6):
            scheduler.add(f"pool:{index}", _slow_value, args=(index,),
                          pool=True, stage="steal")
        stats = PipelineStats()
        results = scheduler.run(stats=stats)
        assert results == {f"pool:{index}": index for index in range(6)}
        assert stats.tasks == {"steal": 6}
        assert stats.stage_seconds["steal"] > 0


class TestDeterministicOrder:
    def test_order_key_ranks_ready_dispatch(self):
        scheduler = PipelineScheduler(workers=1)
        log = []
        scheduler.add("a", lambda: log.append("a"), order_key="zz")
        scheduler.add("b", lambda: log.append("b"), order_key="aa")
        scheduler.add("c", lambda: log.append("c"))  # "" sorts first
        scheduler.run()
        assert log == ["c", "b", "a"]

    @pytest.mark.parametrize("seed", ["0", "1"])
    def test_dispatch_order_is_hash_seed_independent(self, seed,
                                                     tmp_path):
        """The same DAG dispatches in the same order under any
        PYTHONHASHSEED — the regression satellite of ISSUE 6."""
        script = (
            "from repro.pipeline import PipelineScheduler, benchmark_dag\n"
            "from repro.pwcet import EstimatorConfig\n"
            "config = EstimatorConfig(cache='off')\n"
            "scheduler = PipelineScheduler(workers=1)\n"
            "for name in ('fibcall', 'bs'):\n"
            "    benchmark_dag(scheduler, name, config, 1e-9)\n"
            "scheduler.run(on_task=lambda key, *rest: print(key))\n")
        root = pathlib.Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = str(root / "src")
        run = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, cwd=root,
                             check=True)
        order = run.stdout.splitlines()
        assert len(order) == 12  # 2 x (classify + solve + 3 cells + result)
        expected = (tmp_path.parent / "dispatch-order.txt")
        # First seed records the order, the second must reproduce it
        # byte for byte (parametrised runs share tmp_path's parent).
        if expected.exists():
            assert expected.read_text().splitlines() == order
        else:
            expected.write_text("\n".join(order) + "\n")


class TestScheduleIdentity:
    """Satellite 3: the cell-granular schedule is bit-identical to the
    per-benchmark reference schedule, in every worker mode."""

    def _run(self, schedule, cache, workers):
        with fresh_results():
            stats = PipelineStats()
            results = run_suite(EstimatorConfig(cache=cache),
                                benchmarks=SUBSET, workers=workers,
                                pipeline_stats=stats, schedule=schedule)
        return results, stats

    @pytest.mark.parametrize("workers", [1, 4])
    def test_suite_matches_reference_schedule(self, tmp_path, workers):
        reference, ref_stats = self._run("benchmark",
                                         str(tmp_path / "ref"), workers)
        cellrun, cell_stats = self._run("cell",
                                        str(tmp_path / "cell"), workers)
        for before, after in zip(reference, cellrun):
            assert before.name == after.name
            assert before.wcet_fault_free == after.wcet_fault_free
            assert before.solver_stats == after.solver_stats
            for mechanism in MECHANISMS:
                assert before.pwcet(mechanism) == after.pwcet(mechanism)
                assert before.estimates[mechanism].fmm.rows == \
                    after.estimates[mechanism].fmm.rows
        assert ref_stats.totals() == cell_stats.totals()

    @pytest.mark.parametrize("kwargs", [{}, {"cell_workers": 4}],
                             ids=["sequential", "parallel"])
    def test_sweep_report_matches_reference_schedule(self, tmp_path,
                                                     kwargs):
        """The paper-facing numbers are bit-identical across schedules.

        The work-profile summary legitimately differs since the
        batched distribution kernel: the cell schedule's first pfail
        column prefills the axis, so the second column is served whole
        from the cell store instead of re-estimating against the solve
        store — asserted explicitly below.
        """
        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))

        def sweep(schedule, cache):
            return run_sweep(geometries, pfails=(1e-4, 1e-3),
                             benchmarks=("bs", "fibcall"),
                             config=EstimatorConfig(cache=cache),
                             schedule=schedule, **kwargs)

        reference = sweep("benchmark", str(tmp_path / "ref"))
        cellrun = sweep("cell", str(tmp_path / "cell"))
        assert cellrun.points == reference.points
        assert format_sweep_table(reference) == \
            format_sweep_table(cellrun)
        assert format_pareto_fronts(reference) == \
            format_pareto_fronts(cellrun)
        # 2 geometries x 2 benchmarks x 3 mechanisms x 1 sibling pfail.
        assert cellrun.solver_totals["dist_batched_rows"] == 12
        assert cellrun.solver_totals["cells_from_store"] == 12
        assert "dist_batched_rows" not in reference.solver_totals


class TestIncrementalInvalidation:
    def test_warm_rerun_satisfies_every_cell(self, tmp_path):
        config = EstimatorConfig(cache=str(tmp_path / "store"))
        with fresh_results():
            cold = PipelineStats()
            run_suite(config, benchmarks=SUBSET, pipeline_stats=cold)
        assert cold.cells_recomputed == 3 * len(SUBSET)
        assert cold.cells_from_store == 0
        with fresh_results():
            warm = PipelineStats()
            run_suite(config, benchmarks=SUBSET, pipeline_stats=warm)
        assert warm.cells_from_store == 3 * len(SUBSET)
        assert warm.cells_recomputed == 0
        assert warm.cells_total == cold.cells_total
        # Only the inline result sinks ran.
        assert warm.tasks == {"result": len(SUBSET)}

    def test_one_program_edit_recomputes_only_its_cells(self, tmp_path,
                                                        monkeypatch):
        """Editing one suite program invalidates that benchmark's cells
        by content address; every other benchmark stays from-store."""
        import repro.suite as suite
        from repro.minic import compile_program

        config = EstimatorConfig(cache=str(tmp_path / "store"))
        with fresh_results():
            run_suite(config, benchmarks=SUBSET)
        # Simulate the edit: "bs" now compiles to a different CFG (a
        # stand-in structure borrowed from a benchmark outside the
        # subset, so its digest is genuinely new to this store).
        edited = compile_program(suite.build("cnt"))
        assert edited.cfg.digest() != suite.load("bs").cfg.digest()
        monkeypatch.setitem(suite._COMPILED_CACHE, "bs", edited)
        with fresh_results():
            stats = PipelineStats()
            results = run_suite(config, benchmarks=SUBSET,
                                pipeline_stats=stats)
        assert stats.cells_recomputed == 3
        assert stats.cells_from_store == 3 * (len(SUBSET) - 1)
        # The edited benchmark re-ran its classify and solve stages;
        # nobody else did.
        assert stats.tasks == {"classify": 1, "solve": 1, "cell": 3,
                               "result": len(SUBSET)}
        assert [result.name for result in results] == list(SUBSET)

    def test_cold_results_carry_no_cell_counter(self, tmp_path):
        """`cells_from_store` appears in solver_stats only when cells
        were actually served, keeping cold runs schedule-identical."""
        config = EstimatorConfig(cache=str(tmp_path / "store"))
        with fresh_results():
            cold = run_benchmark("fibcall", config)
        assert "cells_from_store" not in cold.solver_stats
        with fresh_results():
            warm = run_benchmark("fibcall", config)
        assert warm.solver_stats["cells_from_store"] == 3
        assert warm.solver_stats["ilp_solved"] == 0


class TestOnlyCells:
    GEOMETRIES = geometry_grid(sizes=(512, 1024), ways=(2,), lines=(16,))

    def _sweep(self, cache, **kwargs):
        return run_sweep(self.GEOMETRIES, pfails=(1e-4, 1e-3),
                         benchmarks=("bs", "fibcall"),
                         config=EstimatorConfig(cache=cache), **kwargs)

    def test_selected_sections_byte_identical_to_full_run(self, tmp_path):
        full = self._sweep(str(tmp_path / "full"))
        only = self._sweep(str(tmp_path / "only"),
                           only_cells=(("srb", 1e-4),))
        selected = [point for point in full.points
                    if point.mechanism == "srb" and point.pfail == 1e-4]
        assert list(only.points) == selected
        full_sections = format_pareto_fronts(full).split("\n\n")
        only_sections = format_pareto_fronts(only).split("\n\n")
        header = "Pareto front — srb at pfail=0.0001"
        assert [s for s in only_sections if s.startswith(header)] == \
            [s for s in full_sections if s.startswith(header)]
        # The rw front (no candidates in the filtered run) is omitted
        # rather than rendered empty.
        assert len(only_sections) == 1

    def test_wildcard_pfail_keeps_every_column(self, tmp_path):
        only = self._sweep(str(tmp_path / "store"),
                           only_cells=(("rw", None),))
        assert {point.mechanism for point in only.points} == {"rw"}
        assert {point.pfail for point in only.points} == {1e-4, 1e-3}

    def test_filtered_run_does_not_poison_the_result_memo(self, tmp_path):
        cache = str(tmp_path / "store")
        with fresh_results():
            self._sweep(cache, only_cells=(("srb", 1e-4),))
            # A later full-estimate driver in the same process must
            # not be handed a subset-mechanism result from the memo.
            config = EstimatorConfig(
                cache=cache, geometry=self.GEOMETRIES[0], pfail=1e-4)
            result = run_benchmark("bs", config)
        assert set(result.estimates) == set(MECHANISMS)

    def test_unknown_mechanism_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            self._sweep(str(tmp_path / "store"),
                        only_cells=(("bogus", None),))

    def test_empty_selection_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no filter matches"):
            self._sweep(str(tmp_path / "store"),
                        only_cells=((None, 0.5),))

    def test_cli_only_cells_filters_the_report(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["sweep", "--sizes", "512", "--ways", "2",
                     "--lines", "16", "--pfails", "1e-4",
                     "--benchmarks", "fibcall",
                     "--only-cells", "mech=srb",
                     "--cache", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Pareto front — srb at pfail=0.0001" in out
        assert "Pareto front — rw" not in out

    def test_cli_only_cells_parsing(self):
        from repro.cli import _parse_only_cells
        assert _parse_only_cells(None) is None
        assert _parse_only_cells(["mech=srb,pfail=1e-4"]) == \
            (("srb", 0.0001),)
        assert _parse_only_cells(["pfail=1e-3", "mech=rw"]) == \
            ((None, 0.001), ("rw", None))
        for bad in (["bogus"], ["pfail=abc"], ["kind=x"], [""]):
            with pytest.raises(SystemExit):
                _parse_only_cells(bad)
