"""The concrete trace executor with mechanism hardware semantics."""

import random

import pytest

from repro.cache import CacheGeometry, FaultMap
from repro.errors import SimulationError
from repro.ipet import TimingModel
from repro.reliability import (NoProtection, ReliableWay,
                               SharedReliableBuffer)
from repro.sim import TraceExecutor

GEOMETRY = CacheGeometry(sets=4, ways=2, block_bytes=16)
TIMING = TimingModel()


def addresses_of_blocks(*blocks: int) -> list[int]:
    return [block * GEOMETRY.block_bytes for block in blocks]


class TestBasicExecution:
    def test_cycle_accounting(self):
        executor = TraceExecutor(GEOMETRY, TIMING, NoProtection())
        outcome = executor.run(addresses_of_blocks(0, 0, 1))
        assert outcome.fetches == 3
        assert outcome.hits == 1
        assert outcome.misses == 2
        assert outcome.cycles == 2 * TIMING.miss_cycles + TIMING.hit_cycles

    def test_cold_start_resets(self):
        executor = TraceExecutor(GEOMETRY, TIMING, NoProtection())
        executor.run(addresses_of_blocks(0))
        outcome = executor.run(addresses_of_blocks(0))  # cold again
        assert outcome.misses == 1

    def test_warm_continuation(self):
        executor = TraceExecutor(GEOMETRY, TIMING, NoProtection())
        executor.run(addresses_of_blocks(0))
        outcome = executor.run(addresses_of_blocks(0), cold_start=False)
        assert outcome.hits == 1

    def test_miss_ratio(self):
        executor = TraceExecutor(GEOMETRY, TIMING, NoProtection())
        outcome = executor.run(addresses_of_blocks(0, 0))
        assert outcome.miss_ratio == pytest.approx(0.5)


class TestFaultySets:
    def test_no_protection_fully_faulty_always_misses(self):
        fault_map = FaultMap.whole_set_faulty(GEOMETRY, 0)
        executor = TraceExecutor(GEOMETRY, TIMING, NoProtection(),
                                 fault_map)
        outcome = executor.run(addresses_of_blocks(0, 0, 0, 0))
        assert outcome.hits == 0

    def test_partial_faults_reduce_capacity(self):
        fault_map = FaultMap(GEOMETRY, [(0, 0)])  # set 0: one way left
        executor = TraceExecutor(GEOMETRY, TIMING, NoProtection(),
                                 fault_map)
        # Blocks 0 and 4 both map to set 0; they now thrash.
        outcome = executor.run(addresses_of_blocks(0, 4, 0, 4))
        assert outcome.hits == 0


class TestSRBSemantics:
    def test_srb_serves_fully_faulty_set(self):
        fault_map = FaultMap.whole_set_faulty(GEOMETRY, 0)
        executor = TraceExecutor(GEOMETRY, TIMING, SharedReliableBuffer(),
                                 fault_map)
        outcome = executor.run(addresses_of_blocks(0, 0, 0))
        assert outcome.hits == 2
        assert outcome.srb_hits == 2

    def test_srb_thrashes_across_blocks(self):
        fault_map = FaultMap.whole_set_faulty(GEOMETRY, 0)
        executor = TraceExecutor(GEOMETRY, TIMING, SharedReliableBuffer(),
                                 fault_map)
        # Blocks 0 and 4 share faulty set 0: SRB holds only one.
        outcome = executor.run(addresses_of_blocks(0, 4, 0, 4))
        assert outcome.hits == 0

    def test_srb_not_used_for_healthy_sets(self):
        fault_map = FaultMap.whole_set_faulty(GEOMETRY, 0)
        executor = TraceExecutor(GEOMETRY, TIMING, SharedReliableBuffer(),
                                 fault_map)
        outcome = executor.run(addresses_of_blocks(1, 1))
        assert outcome.srb_hits == 0
        assert outcome.hits == 1  # normal cache hit

    def test_srb_shared_between_faulty_sets(self):
        fault_map = (FaultMap.whole_set_faulty(GEOMETRY, 0)
                     .with_faults((1, way) for way in range(GEOMETRY.ways)))
        executor = TraceExecutor(GEOMETRY, TIMING, SharedReliableBuffer(),
                                 fault_map)
        # Alternate between the two faulty sets: the single buffer
        # cannot hold both blocks.
        outcome = executor.run(addresses_of_blocks(0, 1, 0, 1))
        assert outcome.hits == 0

    def test_within_line_spatial_hits_via_srb(self):
        fault_map = FaultMap.whole_set_faulty(GEOMETRY, 0)
        executor = TraceExecutor(GEOMETRY, TIMING, SharedReliableBuffer(),
                                 fault_map)
        base = 0  # set 0
        outcome = executor.run([base, base + 4, base + 8, base + 12])
        assert outcome.misses == 1
        assert outcome.srb_hits == 3


class TestRWSemantics:
    def test_rw_rejects_faulty_way_zero(self):
        fault_map = FaultMap(GEOMETRY, [(2, 0)])
        with pytest.raises(SimulationError, match="way 0"):
            TraceExecutor(GEOMETRY, TIMING, ReliableWay(), fault_map)

    def test_rw_accepts_sampled_maps(self, rng):
        fault_map = FaultMap.sample(GEOMETRY, 0.9, rng, reliable_ways=1)
        executor = TraceExecutor(GEOMETRY, TIMING, ReliableWay(),
                                 fault_map)
        outcome = executor.run(addresses_of_blocks(0, 0))
        assert outcome.hits >= 1  # at least one way always works

    def test_rw_degrades_to_direct_mapped(self, rng):
        """With all non-reliable ways faulty, each set keeps MRU-only
        behaviour — repeated single-block access still hits."""
        frames = [(s, w) for s in range(GEOMETRY.sets)
                  for w in range(1, GEOMETRY.ways)]
        executor = TraceExecutor(GEOMETRY, TIMING, ReliableWay(),
                                 FaultMap(GEOMETRY, frames))
        outcome = executor.run(addresses_of_blocks(3, 3, 3))
        assert outcome.hits == 2


class TestRandomPathExecution:
    def test_run_random_path(self, loop_program, rng):
        executor = TraceExecutor(
            CacheGeometry.from_size(1024, 4, 16), TIMING, NoProtection())
        outcome = executor.run_random_path(loop_program.cfg, rng)
        assert outcome.fetches > 0
        assert outcome.cycles >= outcome.fetches
