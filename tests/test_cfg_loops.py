"""Dominators and natural-loop detection."""

import pytest

from repro.cfg import CFG, compute_dominators, find_loops
from repro.errors import CFGStructureError


def simple_loop(bound: int | None = 5) -> CFG:
    """entry -> header <-> body; header -> exit."""
    cfg = CFG("simple_loop")
    cfg.new_block("entry")
    cfg.new_block("header", loop_bound=bound)
    cfg.new_block("body")
    cfg.new_block("exit")
    cfg.add_edge(0, 1)
    cfg.add_edge(1, 2)
    cfg.add_edge(2, 1)
    cfg.add_edge(1, 3)
    cfg.set_entry(0)
    cfg.set_exit(3)
    return cfg


def nested_loops_cfg() -> CFG:
    """Two-level nest: outer header 1, inner header 2."""
    cfg = CFG("nested")
    cfg.new_block("entry")                      # 0
    cfg.new_block("outer_head", loop_bound=4)   # 1
    cfg.new_block("inner_head", loop_bound=3)   # 2
    cfg.new_block("inner_body")                 # 3
    cfg.new_block("outer_latch")                # 4
    cfg.new_block("exit")                       # 5
    cfg.add_edge(0, 1)
    cfg.add_edge(1, 2)
    cfg.add_edge(2, 3)
    cfg.add_edge(3, 2)
    cfg.add_edge(2, 4)
    cfg.add_edge(4, 1)
    cfg.add_edge(1, 5)
    cfg.set_entry(0)
    cfg.set_exit(5)
    return cfg


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = simple_loop()
        dominators = compute_dominators(cfg)
        for block_id in cfg.block_ids():
            assert 0 in dominators[block_id]

    def test_header_dominates_body(self):
        dominators = compute_dominators(simple_loop())
        assert 1 in dominators[2]

    def test_branch_arms_do_not_dominate_join(self):
        cfg = CFG()
        for label in ("entry", "left", "right", "join"):
            cfg.new_block(label)
        cfg.add_edge(0, 1)
        cfg.add_edge(0, 2)
        cfg.add_edge(1, 3)
        cfg.add_edge(2, 3)
        cfg.set_entry(0)
        cfg.set_exit(3)
        dominators = compute_dominators(cfg)
        assert 1 not in dominators[3]
        assert 2 not in dominators[3]
        assert dominators[3] == {0, 3}


class TestLoopDetection:
    def test_single_loop_found(self):
        forest = find_loops(simple_loop())
        assert len(forest) == 1
        loop = forest.loop(1)
        assert loop.body == frozenset({1, 2})
        assert loop.back_edges == ((2, 1),)
        assert loop.bound == 5

    def test_entry_edges(self):
        cfg = simple_loop()
        forest = find_loops(cfg)
        assert forest.loop(1).entry_edges(cfg) == ((0, 1),)

    def test_missing_bound_rejected(self):
        with pytest.raises(CFGStructureError, match="loop bound"):
            find_loops(simple_loop(bound=None))

    def test_nesting_depths(self):
        forest = find_loops(nested_loops_cfg())
        assert forest.loop(1).depth == 1
        assert forest.loop(2).depth == 2
        assert forest.loop(2).parent == 1
        assert forest.loop(1).children == [2]

    def test_inner_body_subset_of_outer(self):
        forest = find_loops(nested_loops_cfg())
        assert forest.loop(2).body < forest.loop(1).body

    def test_loops_containing_innermost_first(self):
        forest = find_loops(nested_loops_cfg())
        chain = forest.loops_containing(3)
        assert [loop.header for loop in chain] == [2, 1]

    def test_is_back_edge(self):
        forest = find_loops(nested_loops_cfg())
        assert forest.is_back_edge((3, 2))
        assert forest.is_back_edge((4, 1))
        assert not forest.is_back_edge((0, 1))

    def test_acyclic_graph_has_no_loops(self):
        cfg = CFG()
        cfg.new_block("a")
        cfg.new_block("b")
        cfg.add_edge(0, 1)
        cfg.set_entry(0)
        cfg.set_exit(1)
        assert len(find_loops(cfg)) == 0

    def test_irreducible_rejected(self):
        # Two mutually reachable blocks, neither dominating the other.
        cfg = CFG("irreducible")
        cfg.new_block("entry")
        cfg.new_block("a")
        cfg.new_block("b")
        cfg.new_block("exit")
        cfg.add_edge(0, 1)
        cfg.add_edge(0, 2)
        cfg.add_edge(1, 2)
        cfg.add_edge(2, 1)
        cfg.add_edge(1, 3)
        cfg.set_entry(0)
        cfg.set_exit(3)
        with pytest.raises(CFGStructureError, match="irreducible"):
            find_loops(cfg)

    def test_self_loop(self):
        cfg = CFG("self")
        cfg.new_block("entry")
        cfg.new_block("spin", loop_bound=3)
        cfg.new_block("exit")
        cfg.add_edge(0, 1)
        cfg.add_edge(1, 1)
        cfg.add_edge(1, 2)
        cfg.set_entry(0)
        cfg.set_exit(2)
        forest = find_loops(cfg)
        assert forest.loop(1).body == frozenset({1})
