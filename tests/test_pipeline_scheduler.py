"""The pipeline DAG scheduler: ordering, validation, stats, artifacts.

The tentpole property is topological soundness: whatever the DAG
shape, a task only ever runs after every one of its dependencies —
property-tested over random DAGs.  The inline path is additionally
deterministic (submission order), which the bit-identity guarantees of
the suite/sweep drivers build on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PipelineError
from repro.pipeline import (CfgArtifact, ClassificationArtifact,
                            PipelineScheduler, PipelineStats)


def record(log, key):
    """A task body that logs its key and returns it."""
    def fn(*deps):
        log.append(key)
        return key
    return fn


class TestDagExecution:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_dags_respect_dependencies(self, data):
        """Execution order is a topological order of any random DAG.

        DAGs are generated acyclic by construction: task ``i`` may
        only depend on tasks ``j < i``, with a random subset chosen
        per task (including diamonds, chains, fan-in and fan-out).
        """
        size = data.draw(st.integers(min_value=1, max_value=12),
                         label="size")
        deps = {}
        for index in range(size):
            if index == 0:
                deps[index] = []
            else:
                deps[index] = data.draw(
                    st.lists(st.integers(min_value=0,
                                         max_value=index - 1),
                             unique=True, max_size=index),
                    label=f"deps[{index}]")
        # Insertion order is shuffled so readiness, not insertion,
        # must drive the topological order.
        insertion = data.draw(st.permutations(range(size)),
                              label="insertion")
        scheduler = PipelineScheduler(workers=1)
        log: list[str] = []
        for index in insertion:
            scheduler.add(f"t{index}", record(log, f"t{index}"),
                          deps=tuple(f"t{dep}" for dep in deps[index]))
        results = scheduler.run()
        assert set(results) == {f"t{index}" for index in range(size)}
        position = {key: rank for rank, key in enumerate(log)}
        for index in range(size):
            for dep in deps[index]:
                assert position[f"t{dep}"] < position[f"t{index}"]

    def test_inline_execution_is_submission_ordered(self):
        scheduler = PipelineScheduler(workers=1)
        log: list[str] = []
        scheduler.add("a", record(log, "a"))
        scheduler.add("b", record(log, "b"), deps=("a",))
        scheduler.add("c", record(log, "c"))
        scheduler.add("d", record(log, "d"), deps=("b", "c"))
        scheduler.run()
        # "b" unblocks immediately after "a" and outranks "c" by
        # submission index; "d" waits for both.
        assert log == ["a", "b", "c", "d"]

    def test_dependency_results_arrive_in_declared_order(self):
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("x", lambda: "X")
        scheduler.add("y", lambda: "Y")
        scheduler.add("joined", lambda *parts: "".join(parts),
                      args=("=",), deps=("y", "x"))
        assert scheduler.run()["joined"] == "=YX"

    def test_on_task_streams_completions(self):
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("a", lambda: 1)
        scheduler.add("b", lambda a: a + 1, deps=("a",))
        seen = []
        scheduler.run(on_task=lambda key, value, completed, total:
                      seen.append((key, value, completed, total)))
        assert seen == [("a", 1, 1, 2), ("b", 2, 2, 2)]

    def test_scheduler_is_reusable_after_run(self):
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("a", lambda: 1)
        assert scheduler.run() == {"a": 1}
        scheduler.add("a", lambda: 2)  # same key, next DAG
        assert scheduler.run() == {"a": 2}


class TestDagValidation:
    def test_duplicate_key_rejected(self):
        scheduler = PipelineScheduler()
        scheduler.add("a", lambda: 1)
        with pytest.raises(PipelineError, match="duplicate"):
            scheduler.add("a", lambda: 2)

    def test_unknown_dependency_rejected(self):
        scheduler = PipelineScheduler()
        scheduler.add("a", lambda: 1, deps=("ghost",))
        with pytest.raises(PipelineError, match="unknown task"):
            scheduler.run()

    def test_cycle_detected(self):
        scheduler = PipelineScheduler()
        scheduler.add("a", lambda b: 1, deps=("b",))
        scheduler.add("b", lambda a: 2, deps=("a",))
        with pytest.raises(PipelineError, match="deadlock"):
            scheduler.run()


class TestPipelineStats:
    def test_counters_sum_and_rates_are_recomputed(self):
        stats = PipelineStats()
        stats.merge_counters({"ilp_solved": 3, "store_hits": 1,
                              "store_hit_rate": 0.25})
        stats.merge_counters({"ilp_solved": 1, "store_hits": 3,
                              "store_hit_rate": 0.75})
        totals = stats.totals()
        assert totals["ilp_solved"] == 4
        assert totals["store_hits"] == 4
        # Rates never sum; the total is recomputed from the counters.
        assert totals["store_hit_rate"] == 0.5

    def test_task_counts_per_stage(self):
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("a", lambda: 1, stage="classify")
        scheduler.add("b", lambda: 2, stage="classify")
        scheduler.add("c", lambda: 3, stage="estimate")
        stats = PipelineStats()
        scheduler.run(stats=stats)
        assert stats.tasks == {"classify": 2, "estimate": 1}
        assert stats.tasks_run == 3
        assert stats.wall_seconds > 0.0

    def test_stats_scope_is_per_run(self):
        """Two runs through one scheduler never share a stats scope."""
        scheduler = PipelineScheduler(workers=1)
        scheduler.add("a", lambda: 1, stage="s")
        first = PipelineStats()
        scheduler.run(stats=first)
        scheduler.add("a", lambda: 1, stage="s")
        second = PipelineStats()
        scheduler.run(stats=second)
        assert first.tasks == {"s": 1}
        assert second.tasks == {"s": 1}


class TestArtifacts:
    def test_artifacts_carry_store_digest_keys(self):
        from repro.analysis import CacheAnalysis
        from repro.analysis.store import classification_key
        from repro.cache import CacheGeometry
        from repro.pipeline.stages import classification_artifact
        from repro.suite import load

        cfg = load("fibcall").cfg
        geometry = CacheGeometry.from_size(1024, 4, 16)
        analysis = CacheAnalysis(cfg, geometry, cache="off")
        artifact = classification_artifact(analysis, "fibcall",
                                           ("none", "srb", "rw"),
                                           carry_tables=True)
        assert isinstance(artifact, ClassificationArtifact)
        assert isinstance(artifact.cfg, CfgArtifact)
        # The artifact's keys ARE the persistent store's keys.
        assert artifact.cfg.key == cfg.digest()
        assert artifact.key == classification_key(cfg.digest(), geometry,
                                                  geometry.ways)
        for assoc, key in artifact.table_keys.items():
            assert key == classification_key(cfg.digest(), geometry,
                                             assoc)
        # Every degraded associativity travels, plus the SRB hit set.
        assert set(artifact.tables) == set(range(geometry.ways + 1))
        assert artifact.srb_hits is not None

    def test_preloaded_artifact_runs_zero_fixpoints(self):
        from repro.analysis import CacheAnalysis
        from repro.cache import CacheGeometry
        from repro.pipeline.stages import classification_artifact
        from repro.suite import load

        cfg = load("crc").cfg
        geometry = CacheGeometry.from_size(1024, 4, 16)
        producer = CacheAnalysis(cfg, geometry, cache="off")
        artifact = classification_artifact(producer, "crc",
                                           ("none", "srb", "rw"),
                                           carry_tables=True)
        consumer = CacheAnalysis(cfg, geometry, cache="off")
        consumer.preload(artifact.tables, artifact.srb_hits)
        for assoc in range(geometry.ways + 1):
            assert consumer.classification(assoc).count_by_chmc() == \
                producer.classification(assoc).count_by_chmc()
        assert consumer.srb_always_hits() == producer.srb_always_hits()
        assert consumer.stats.fixpoints_run == 0
        assert consumer.stats.tables_built == 0

    def test_preload_skips_malformed_tables(self):
        from repro.analysis import CacheAnalysis
        from repro.cache import CacheGeometry
        from repro.suite import load

        cfg = load("fibcall").cfg
        geometry = CacheGeometry.from_size(1024, 4, 16)
        analysis = CacheAnalysis(cfg, geometry, cache="off")
        analysis.preload({4: {"blocks": [[0, [99]]]}}, None)
        # The junk table is ignored; classification recomputes.
        table = analysis.classification(4)
        assert analysis.stats.tables_built == 1
        assert table.count_by_chmc()
