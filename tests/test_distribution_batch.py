"""The batched multi-pfail distribution kernel (PR 7).

Property-tests the batched engine bit-for-bit against the scalar
oracle over random FMMs × pfail grids × mechanisms, the power-grouping
strategy within tolerance, the degenerate shapes (all-zero penalty
sets, single-pfail batch, one-set cache, empty batch), engine
selection, the fault-pmf memo, the sparse cell-store encoding, and
the pipeline's pfail-axis prefill.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CacheGeometry
from repro.errors import DistributionError
from repro.experiments.runner import (fresh_results, run_benchmark,
                                      run_suite)
from repro.faults import FaultProbabilityModel
from repro.fmm import FaultMissMap
from repro.pipeline.scheduler import PipelineStats
from repro.pwcet import EstimatorConfig
from repro.pwcet.batch import (ENGINE_ENV, penalty_distribution_scalar,
                               penalty_distributions, selected_engine)
from repro.reliability import (fault_pmf_cache_stats, mechanism_by_name,
                               reset_fault_pmf_cache)

SUBSET = ("bs", "fibcall")
MECHANISM_NAMES = ("none", "srb", "rw")

#: The quantile every comparison reads (the paper's target).
TARGET = 1e-15


@st.composite
def fmm_cases(draw):
    """A random (FMM, mechanism, pfail grid) kernel input."""
    sets = draw(st.sampled_from((1, 2, 4, 8)))
    ways = draw(st.sampled_from((2, 4)))
    geometry = CacheGeometry(sets=sets, ways=ways, block_bytes=16)
    rows = []
    for _ in range(sets):
        increments = draw(st.lists(st.integers(0, 60), min_size=ways,
                                   max_size=ways))
        row = [0]
        for increment in increments:
            row.append(row[-1] + increment)
        rows.append(tuple(row))
    mechanism_name = draw(st.sampled_from(MECHANISM_NAMES))
    fmm = FaultMissMap(geometry=geometry, rows=tuple(rows),
                       mechanism_name=mechanism_name)
    pfails = draw(st.lists(
        st.sampled_from((1e-7, 1e-5, 1e-4, 1e-3, 1e-2, 0.1)),
        min_size=1, max_size=5, unique=True))
    return fmm, mechanism_name, tuple(pfails)


def _scalar_rows(fmm, mechanism, models, sets):
    return [penalty_distribution_scalar(fmm, mechanism, model, sets)
            for model in models]


class TestBatchedOracleIdentity:
    """Satellite 3: batched == scalar, bit for bit."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=fmm_cases())
    def test_batched_matches_scalar_bitwise(self, case):
        fmm, mechanism_name, pfails = case
        mechanism = mechanism_by_name(mechanism_name)
        sets = fmm.geometry.sets
        models = [FaultProbabilityModel(geometry=fmm.geometry,
                                        pfail=pfail) for pfail in pfails]
        batched = penalty_distributions(fmm, mechanism, models, sets,
                                        engine="batched")
        scalar = _scalar_rows(fmm, mechanism, models, sets)
        assert len(batched) == len(scalar) == len(models)
        for batch_row, scalar_row in zip(batched, scalar):
            assert np.array_equal(batch_row.pmf, scalar_row.pmf)
            assert np.array_equal(batch_row.ccdf(), scalar_row.ccdf())
            assert batch_row.quantile_exceedance(TARGET) == \
                scalar_row.quantile_exceedance(TARGET)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=fmm_cases())
    def test_power_grouping_within_tolerance(self, case):
        """Repeated squaring reorders float adds — tolerance, not bits."""
        fmm, mechanism_name, pfails = case
        mechanism = mechanism_by_name(mechanism_name)
        sets = fmm.geometry.sets
        models = [FaultProbabilityModel(geometry=fmm.geometry,
                                        pfail=pfail) for pfail in pfails]
        power = penalty_distributions(fmm, mechanism, models, sets,
                                      engine="power")
        scalar = _scalar_rows(fmm, mechanism, models, sets)
        for power_row, scalar_row in zip(power, scalar):
            assert len(power_row.pmf) == len(scalar_row.pmf)
            assert np.allclose(power_row.pmf, scalar_row.pmf,
                               rtol=1e-9, atol=0.0)
            assert np.allclose(power_row.ccdf(), scalar_row.ccdf(),
                               rtol=1e-9, atol=1e-300)


class TestDegenerateShapes:
    GEOMETRY = CacheGeometry(sets=4, ways=2, block_bytes=16)

    def _models(self, *pfails):
        return [FaultProbabilityModel(geometry=self.GEOMETRY, pfail=p)
                for p in pfails]

    def test_all_zero_penalty_sets_collapse_to_point_mass(self):
        fmm = FaultMissMap(geometry=self.GEOMETRY,
                           rows=((0, 0, 0),) * 4, mechanism_name="none")
        mechanism = mechanism_by_name("none")
        models = self._models(1e-4, 1e-3)
        rows = penalty_distributions(fmm, mechanism, models, 4)
        scalar = _scalar_rows(fmm, mechanism, models, 4)
        for batch_row, scalar_row in zip(rows, scalar):
            assert np.array_equal(batch_row.pmf, scalar_row.pmf)
            assert batch_row.pmf.tolist() == [1.0]

    def test_single_pfail_batch_matches_scalar(self):
        fmm = FaultMissMap(geometry=self.GEOMETRY,
                           rows=((0, 3, 7), (0, 0, 2), (0, 1, 1),
                                 (0, 5, 9)),
                           mechanism_name="rw")
        mechanism = mechanism_by_name("rw")
        models = self._models(1e-4)
        [row] = penalty_distributions(fmm, mechanism, models, 4)
        [scalar] = _scalar_rows(fmm, mechanism, models, 4)
        assert np.array_equal(row.pmf, scalar.pmf)

    def test_one_set_cache(self):
        geometry = CacheGeometry(sets=1, ways=2, block_bytes=16)
        fmm = FaultMissMap(geometry=geometry, rows=((0, 4, 11),),
                           mechanism_name="srb")
        mechanism = mechanism_by_name("srb")
        models = [FaultProbabilityModel(geometry=geometry, pfail=p)
                  for p in (1e-5, 1e-3)]
        rows = penalty_distributions(fmm, mechanism, models, 1)
        scalar = _scalar_rows(fmm, mechanism, models, 1)
        for batch_row, scalar_row in zip(rows, scalar):
            assert np.array_equal(batch_row.pmf, scalar_row.pmf)

    def test_empty_batch_returns_nothing(self):
        fmm = FaultMissMap(geometry=self.GEOMETRY,
                           rows=((0, 1, 2),) * 4, mechanism_name="none")
        assert penalty_distributions(fmm, mechanism_by_name("none"),
                                     (), 4) == []


class TestEngineSelection:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert selected_engine() == "batched"

    def test_empty_environment_means_unset(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "  ")
        assert selected_engine() == "batched"

    def test_environment_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        assert selected_engine() == "scalar"

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        assert selected_engine("power") == "power"

    def test_unknown_engine_raises(self):
        with pytest.raises(DistributionError):
            selected_engine("fft")


class TestFaultPmfMemo:
    """Satellite 1: fault_pmf memoised per (mechanism, geometry,
    pfail), with live hit counters."""

    GEOMETRY = CacheGeometry(sets=4, ways=2, block_bytes=16)

    def test_hits_and_misses_are_counted(self):
        reset_fault_pmf_cache()
        mechanism = mechanism_by_name("srb")
        model = FaultProbabilityModel(geometry=self.GEOMETRY, pfail=1e-4)
        first = mechanism.fault_pmf(model)
        second = mechanism.fault_pmf(model)
        stats = fault_pmf_cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert first == second
        # A distinct pfail is a distinct memo entry.
        mechanism.fault_pmf(
            FaultProbabilityModel(geometry=self.GEOMETRY, pfail=1e-3))
        assert fault_pmf_cache_stats().misses == 2
        reset_fault_pmf_cache()
        zeroed = fault_pmf_cache_stats()
        assert (zeroed.hits, zeroed.misses) == (0, 0)

    def test_stats_summary_exposes_memo_counters(self):
        from repro.pwcet import PWCETEstimator
        from repro.suite import load

        reset_fault_pmf_cache()
        estimator = PWCETEstimator(load("fibcall"), EstimatorConfig(),
                                   name="fibcall")
        estimator.estimate_all()
        summary = estimator.stats_summary()
        assert summary["fault_pmf_misses"] > 0
        assert "fault_pmf_hits" in summary


class TestSparseCellEncoding:
    """Schema v2: the persisted pmf is (width, packed support, packed
    values) — base64 of the raw little-endian bytes."""

    def _cell_value(self):
        from repro.pipeline.cellstore import encode_cell

        config = EstimatorConfig()
        with fresh_results():
            result = run_benchmark("fibcall", config)
        estimate = result.estimates["srb"]
        return config, estimate, encode_cell(estimate)

    def test_roundtrip_is_bitwise(self):
        from repro.pipeline.cellstore import _packed, decode_cell

        config, estimate, value = self._cell_value()
        pmf = estimate.penalty_misses.pmf
        support = np.flatnonzero(pmf)
        assert value["width"] == len(pmf)
        assert value["support"] == _packed(support, "<i8")
        decoded = decode_cell(value, name="fibcall", mechanism="srb",
                              config=config, pfail=config.pfail)
        assert decoded is not None
        assert np.array_equal(decoded.penalty_misses.pmf, pmf)
        assert decoded.pwcet(TARGET) == estimate.pwcet(TARGET)

    def test_malformed_entries_degrade_to_none(self):
        from repro.pipeline.cellstore import _packed, decode_cell

        config, estimate, value = self._cell_value()
        support = np.flatnonzero(estimate.penalty_misses.pmf)
        corruptions = [
            {**value, "width": 1},                        # out of range
            {**value, "support": _packed(support[::-1], "<i8")},
            {**value, "pmf": value["pmf"][:-8]},          # ragged
            {**value, "support": _packed(support - 1, "<i8")},
            {**value, "support": "not base64!"},
            {**value, "pmf": None},
        ]
        for corrupt in corruptions:
            assert decode_cell(corrupt, name="fibcall", mechanism="srb",
                               config=config,
                               pfail=config.pfail) is None


class TestPfailAxisPrefill:
    """Tentpole wiring: one cell stage computes its mechanism's whole
    pfail axis and prefills the cell store's content addresses."""

    def test_prefilled_rows_are_bitwise_unbatched_cells(self, tmp_path):
        config = EstimatorConfig(cache=str(tmp_path / "store"))
        sibling_pfail = 5e-4
        axis = (config.pfail, sibling_pfail)
        batch = {name: axis for name in MECHANISM_NAMES}
        with fresh_results():
            stats = PipelineStats()
            run_suite(config, benchmarks=SUBSET, pipeline_stats=stats,
                      batch_pfails=batch)
        assert stats.cells_batched == 3 * len(SUBSET)
        assert stats.cells_recomputed == 3 * len(SUBSET)
        # The sibling pfail is served whole from the store...
        sibling = replace(config, pfail=sibling_pfail)
        with fresh_results():
            warm_stats = PipelineStats()
            warm = run_suite(sibling, benchmarks=SUBSET,
                             pipeline_stats=warm_stats)
        assert warm_stats.cells_from_store == 3 * len(SUBSET)
        assert warm_stats.cells_recomputed == 0
        assert warm_stats.cells_batched == 0
        # ...and every served estimate is bitwise what an unbatched
        # cold run computes.
        cold_config = EstimatorConfig(cache=str(tmp_path / "cold"),
                                      pfail=sibling_pfail)
        with fresh_results():
            cold = run_suite(cold_config, benchmarks=SUBSET)
        for warm_result, cold_result in zip(warm, cold):
            assert warm_result.name == cold_result.name
            for mechanism in MECHANISM_NAMES:
                assert np.array_equal(
                    warm_result.estimates[mechanism].penalty_misses.pmf,
                    cold_result.estimates[mechanism].penalty_misses.pmf)
                assert warm_result.pwcet(mechanism) == \
                    cold_result.pwcet(mechanism)

    def test_rows_already_stored_leave_the_batch(self, tmp_path):
        """Only store-missing siblings are recomputed on a rerun."""
        config = EstimatorConfig(cache=str(tmp_path / "store"))
        batch = {name: (config.pfail, 5e-4) for name in MECHANISM_NAMES}
        with fresh_results():
            run_suite(config, benchmarks=SUBSET, batch_pfails=batch)
        edited = replace(config, pfail=2e-3)
        batch = {name: (2e-3, config.pfail, 5e-4)
                 for name in MECHANISM_NAMES}
        with fresh_results():
            stats = PipelineStats()
            run_suite(edited, benchmarks=SUBSET, pipeline_stats=stats,
                      batch_pfails=batch)
        # The 5e-4 and default-pfail rows are already persisted: each
        # cell batches nothing beyond its own new row.
        assert stats.cells_batched == 0
        assert stats.cells_recomputed == 3 * len(SUBSET)

    def test_scalar_engine_suite_is_identical(self, tmp_path,
                                              monkeypatch):
        """CI's byte-identity assertion, in miniature."""
        with fresh_results():
            default = run_suite(
                EstimatorConfig(cache=str(tmp_path / "a")),
                benchmarks=SUBSET)
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        with fresh_results():
            scalar = run_suite(
                EstimatorConfig(cache=str(tmp_path / "b")),
                benchmarks=SUBSET)
        for default_result, scalar_result in zip(default, scalar):
            for mechanism in MECHANISM_NAMES:
                assert np.array_equal(
                    default_result.estimates[mechanism]
                    .penalty_misses.pmf,
                    scalar_result.estimates[mechanism]
                    .penalty_misses.pmf)
                assert default_result.pwcet(mechanism) == \
                    scalar_result.pwcet(mechanism)
