"""Fault Miss Map: structure, computation, and soundness."""

import random

import pytest

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry, FaultMap, LRUCache
from repro.cfg import PathWalker
from repro.errors import ConfigurationError
from repro.fmm import FaultMissMap, compute_fault_miss_map
from repro.reliability import (NoProtection, ReliableWay,
                               SharedReliableBuffer)

GEOMETRY = CacheGeometry(sets=4, ways=2, block_bytes=16)
PAPER_GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


class TestDataStructure:
    def test_row_validation(self):
        fmm = FaultMissMap(GEOMETRY, rows=((0, 1, 2),) * 4)
        assert fmm.misses(0, 2) == 2
        assert fmm.max_fault_count == 2

    def test_first_column_must_be_zero(self):
        with pytest.raises(ConfigurationError):
            FaultMissMap(GEOMETRY, rows=((1, 1, 2),) * 4)

    def test_monotonicity_enforced(self):
        with pytest.raises(ConfigurationError, match="monotone"):
            FaultMissMap(GEOMETRY, rows=((0, 5, 2),) * 4)

    def test_row_count_checked(self):
        with pytest.raises(ConfigurationError):
            FaultMissMap(GEOMETRY, rows=((0, 1),) * 3)

    def test_out_of_range_queries(self):
        fmm = FaultMissMap(GEOMETRY, rows=((0, 1, 2),) * 4)
        with pytest.raises(ConfigurationError):
            fmm.misses(9, 1)
        with pytest.raises(ConfigurationError):
            fmm.misses(0, 3)

    def test_total_worst_misses(self):
        fmm = FaultMissMap(GEOMETRY, rows=((0, 1, 2), (0, 0, 0),
                                           (0, 2, 4), (0, 1, 1)))
        assert fmm.total_worst_misses() == 7

    def test_format_table(self):
        fmm = FaultMissMap(GEOMETRY, rows=((0, 1, 2),) * 4)
        text = fmm.format_table()
        assert "1 faulty" in text and "2 faulty" in text


class TestComputation:
    def test_straight_line_fmm(self, straight_line_program):
        """Straight-line code: a faulty set only loses its spatial
        hits, once per line it hosts — and only in the all-faulty
        column (partial faults keep the MRU line alive)."""
        analysis = CacheAnalysis(straight_line_program.cfg, PAPER_GEOMETRY)
        fmm = compute_fault_miss_map(analysis, NoProtection())
        for set_index in range(PAPER_GEOMETRY.sets):
            for fault_count in range(1, PAPER_GEOMETRY.ways):
                assert fmm.misses(set_index, fault_count) == 0
        assert fmm.total_worst_misses() > 0

    def test_rw_has_no_all_faulty_column(self, loop_program):
        analysis = CacheAnalysis(loop_program.cfg, PAPER_GEOMETRY)
        fmm = compute_fault_miss_map(analysis, ReliableWay())
        assert fmm.max_fault_count == PAPER_GEOMETRY.ways - 1

    def test_srb_column_bounded_by_none(self, loop_program):
        """The SRB can only remove misses from the all-faulty column."""
        analysis = CacheAnalysis(loop_program.cfg, PAPER_GEOMETRY)
        fmm_none = compute_fault_miss_map(analysis, NoProtection())
        fmm_srb = compute_fault_miss_map(analysis, SharedReliableBuffer())
        ways = PAPER_GEOMETRY.ways
        for set_index in range(PAPER_GEOMETRY.sets):
            assert (fmm_srb.misses(set_index, ways)
                    <= fmm_none.misses(set_index, ways))
            for fault_count in range(ways):
                assert (fmm_srb.misses(set_index, fault_count)
                        == fmm_none.misses(set_index, fault_count))

    def test_rows_monotone(self, call_program):
        analysis = CacheAnalysis(call_program.cfg, PAPER_GEOMETRY)
        fmm = compute_fault_miss_map(analysis, NoProtection())
        for set_index in range(PAPER_GEOMETRY.sets):
            row = fmm.row(set_index)
            assert list(row) == sorted(row)

    def test_relaxed_at_least_exact(self, loop_program):
        analysis = CacheAnalysis(loop_program.cfg, PAPER_GEOMETRY)
        exact = compute_fault_miss_map(analysis, NoProtection())
        relaxed = compute_fault_miss_map(analysis, NoProtection(),
                                         relaxed=True)
        for set_index in range(PAPER_GEOMETRY.sets):
            for fault_count in range(1, PAPER_GEOMETRY.ways + 1):
                assert (relaxed.misses(set_index, fault_count)
                        >= exact.misses(set_index, fault_count))


class TestSoundness:
    """FMM entries bound the misses observed with real fault maps."""

    @pytest.mark.parametrize("mechanism", [NoProtection(),
                                           SharedReliableBuffer()])
    def test_fmm_bounds_fault_induced_misses(self, loop_program,
                                             mechanism):
        from repro.ipet import TimingModel
        from repro.sim import TraceExecutor
        geometry = PAPER_GEOMETRY
        timing = TimingModel()
        analysis = CacheAnalysis(loop_program.cfg, geometry)
        fmm = compute_fault_miss_map(analysis, mechanism)
        walker = PathWalker(loop_program.cfg, analysis.forest)
        rng = random.Random(13)
        for trial in range(25):
            # One faulty set with a random number of faulty ways.
            set_index = rng.randrange(geometry.sets)
            lowest_way = 1 if mechanism.name == "rw" else 0
            count_range = fmm.max_fault_count
            fault_count = rng.randint(1, count_range)
            fault_map = FaultMap(geometry, [
                (set_index, way)
                for way in range(geometry.ways - fault_count,
                                 geometry.ways)])
            walk = walker.walk(rng, maximize_iterations=(trial % 2 == 0))

            baseline = TraceExecutor(geometry, timing, mechanism)
            clean = baseline.run(walk.addresses)
            faulty_executor = TraceExecutor(geometry, timing, mechanism,
                                            fault_map)
            faulty = faulty_executor.run(walk.addresses)
            induced = faulty.misses - clean.misses
            assert induced <= fmm.misses(set_index, fault_count), (
                f"set {set_index} with {fault_count} faults induced "
                f"{induced} misses > FMM bound "
                f"{fmm.misses(set_index, fault_count)}")

    def test_multi_set_additivity_bound(self, call_program):
        """With faults in several sets, the sum of FMM entries bounds
        the total induced misses (the convolution's independence)."""
        from repro.ipet import TimingModel
        from repro.sim import TraceExecutor
        geometry = PAPER_GEOMETRY
        timing = TimingModel()
        mechanism = NoProtection()
        analysis = CacheAnalysis(call_program.cfg, geometry)
        fmm = compute_fault_miss_map(analysis, mechanism)
        walker = PathWalker(call_program.cfg, analysis.forest)
        rng = random.Random(17)
        for trial in range(15):
            fault_map = FaultMap.sample(geometry, 0.2, rng)
            walk = walker.walk(rng, maximize_iterations=True)
            clean = TraceExecutor(geometry, timing,
                                  mechanism).run(walk.addresses)
            faulty = TraceExecutor(geometry, timing, mechanism,
                                   fault_map).run(walk.addresses)
            induced = faulty.misses - clean.misses
            bound = sum(fmm.misses(s, fault_map.faulty_ways_in_set(s))
                        for s in range(geometry.sets))
            assert induced <= bound
