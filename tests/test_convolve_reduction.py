"""Size-ordered convolution reduction vs. the naive left fold.

``DiscreteDistribution.convolve_all`` folds in support-size order (off
a heap) instead of arrival order.  Convolution is commutative and
associative, so the result is the same distribution; these property
tests pin that the reduction is *exactly* the left fold's result on
dyadic PMFs (where every intermediate float is exact, so any
evaluation order must agree bit for bit), and equal to within float
round-off — with identical supports and identical deep-tail
quantiles — on arbitrary PMFs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pwcet.distribution import DiscreteDistribution


def _left_fold(distributions):
    """The historical reference reduction, in arrival order."""
    result = None
    for distribution in distributions:
        result = (distribution if result is None
                  else result.convolve(distribution))
    if result is None:
        return DiscreteDistribution.point_mass(0)
    return result


@st.composite
def dyadic_distributions(draw):
    """Sub-probability PMFs whose entries are multiples of 1/64.

    Dyadic probabilities with mass <= 1 keep every product and sum in
    an up-to-8-way convolution exactly representable in binary
    floating point (numerators stay below 2**48), so *any* evaluation
    order must produce bit-identical arrays.
    """
    size = draw(st.integers(1, 5))
    weights = draw(st.lists(st.integers(0, 12), min_size=size,
                            max_size=size).filter(lambda w: sum(w) > 0))
    pmf = np.array(weights, dtype=np.float64) / 64.0
    return DiscreteDistribution(pmf, normalized=False)


@st.composite
def float_distributions(draw):
    """Arbitrary small positive PMFs (not necessarily normalised)."""
    size = draw(st.integers(1, 6))
    values = draw(st.lists(
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False,
                  exclude_min=False),
        min_size=size, max_size=size).filter(lambda v: sum(v) > 0))
    return DiscreteDistribution(np.array(values), normalized=False)


class TestHeapReductionMatchesFold:
    @given(st.lists(dyadic_distributions(), min_size=0, max_size=8))
    @settings(max_examples=200)
    def test_exact_on_dyadic_pmfs(self, distributions):
        heap_result = DiscreteDistribution.convolve_all(distributions)
        fold_result = _left_fold(distributions)
        assert np.array_equal(heap_result.pmf, fold_result.pmf)

    @given(st.lists(float_distributions(), min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_support_and_tail_on_float_pmfs(self, distributions):
        heap_result = DiscreteDistribution.convolve_all(distributions)
        fold_result = _left_fold(distributions)
        assert heap_result.support_max == fold_result.support_max
        assert np.allclose(heap_result.pmf, fold_result.pmf,
                           rtol=1e-9, atol=1e-300)

    @given(st.lists(dyadic_distributions(), min_size=1, max_size=8),
           st.integers(2, 14))
    @settings(max_examples=100)
    def test_quantiles_match_fold(self, distributions, exponent):
        # Normalise the convolution to a proper distribution first.
        combined = DiscreteDistribution.convolve_all(distributions)
        mass = combined.total_mass
        heap_result = DiscreteDistribution(combined.pmf / mass)
        folded = _left_fold(distributions)
        fold_result = DiscreteDistribution(folded.pmf / mass)
        probability = 10.0 ** -exponent
        assert (heap_result.quantile_exceedance(probability)
                == fold_result.quantile_exceedance(probability))

    def test_empty_input_is_point_mass_zero(self):
        assert (DiscreteDistribution.convolve_all([])
                == DiscreteDistribution.point_mass(0))

    def test_size_order_is_observable(self):
        # A deterministic case where arrival order differs from size
        # order: the result must still match the fold exactly (dyadic).
        big = DiscreteDistribution(np.array([0.25, 0.25, 0.25, 0.25]))
        tiny = DiscreteDistribution(np.array([0.5, 0.5]))
        assert np.array_equal(
            DiscreteDistribution.convolve_all([big, tiny, big]).pmf,
            _left_fold([big, tiny, big]).pmf)
