"""Property-based FMM soundness over random structured programs.

Stronger than the fixture-based tests of ``test_fmm.py``: hypothesis
generates the programs, the fault placements and the paths.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry, FaultMap
from repro.cfg import PathWalker
from repro.fmm import compute_fault_miss_map
from repro.ipet import TimingModel, compute_wcet
from repro.minic import compile_program
from repro.reliability import (NoProtection, ReliableWay,
                               SharedReliableBuffer)
from repro.reliability.refined_srb import RefinedSharedReliableBuffer
from repro.sim import TraceExecutor
from tests.strategies import programs

GEOMETRY = CacheGeometry(sets=8, ways=2, block_bytes=16)
TIMING = TimingModel()


def _check_program(program, mechanism, seed: int,
                   single_full_set: bool) -> None:
    compiled = compile_program(program)
    analysis = CacheAnalysis(compiled.cfg, GEOMETRY)
    wcet_ff = compute_wcet(compiled.cfg, analysis.classification(),
                           TIMING).cycles
    fmm = compute_fault_miss_map(analysis, mechanism)
    walker = PathWalker(compiled.cfg, analysis.forest)
    rng = random.Random(seed)
    for trial in range(6):
        if single_full_set:
            # Event A of the refined analysis: one full set at most.
            full = rng.randrange(GEOMETRY.sets)
            frames = [(full, way) for way in range(GEOMETRY.ways)]
            frames += [(s, GEOMETRY.ways - 1)
                       for s in range(GEOMETRY.sets)
                       if s != full and rng.random() < 0.4]
            fault_map = FaultMap(GEOMETRY, frames)
        else:
            reliable = 1 if isinstance(mechanism, ReliableWay) else 0
            fault_map = FaultMap.sample(GEOMETRY, rng.choice([0.2, 0.6]),
                                        rng, reliable_ways=reliable)
        walk = walker.walk(rng, maximize_iterations=(trial == 0))
        outcome = TraceExecutor(GEOMETRY, TIMING, mechanism,
                                fault_map).run(walk.addresses)
        bound = wcet_ff + TIMING.memory_cycles * sum(
            fmm.misses(s, min(fault_map.faulty_ways_in_set(s),
                              fmm.max_fault_count))
            for s in range(GEOMETRY.sets))
        assert outcome.cycles <= bound, (
            f"{mechanism.name}: {outcome.cycles} > {bound} "
            f"profile={fault_map.fault_profile()}")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_no_protection_bound(program):
    _check_program(program, NoProtection(), seed=1, single_full_set=False)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_srb_bound(program):
    _check_program(program, SharedReliableBuffer(), seed=2,
                   single_full_set=False)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_rw_bound(program):
    _check_program(program, ReliableWay(), seed=3, single_full_set=False)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_refined_srb_bound_under_event_a(program):
    _check_program(program, RefinedSharedReliableBuffer(), seed=4,
                   single_full_set=True)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_mechanism_fmm_ordering(program):
    """Column-wise: refined SRB <= SRB <= none; RW equals none on the
    shared columns (same degraded-cache analysis)."""
    compiled = compile_program(program)
    analysis = CacheAnalysis(compiled.cfg, GEOMETRY)
    none = compute_fault_miss_map(analysis, NoProtection())
    srb = compute_fault_miss_map(analysis, SharedReliableBuffer())
    refined = compute_fault_miss_map(analysis,
                                     RefinedSharedReliableBuffer())
    rw = compute_fault_miss_map(analysis, ReliableWay())
    ways = GEOMETRY.ways
    for set_index in range(GEOMETRY.sets):
        assert (refined.misses(set_index, ways)
                <= srb.misses(set_index, ways)
                <= none.misses(set_index, ways))
        for fault_count in range(ways):
            assert (rw.misses(set_index, fault_count)
                    == none.misses(set_index, fault_count))
