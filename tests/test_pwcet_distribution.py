"""Discrete distributions: construction, convolution, tail queries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DistributionError
from repro.pwcet import DiscreteDistribution


@st.composite
def distributions(draw, max_support=12):
    """Random normalised distributions with small integer support."""
    size = draw(st.integers(1, max_support))
    raw = draw(st.lists(st.floats(0.0, 1.0), min_size=size, max_size=size))
    total = sum(raw)
    if total == 0:
        raw[0] = 1.0
        total = 1.0
    return DiscreteDistribution(np.array(raw) / total)


class TestConstruction:
    def test_point_mass(self):
        d = DiscreteDistribution.point_mass(3)
        assert d.probability_of(3) == 1.0
        assert d.support_max == 3
        assert d.mean() == 3.0

    def test_from_points(self):
        d = DiscreteDistribution.from_points({0: 0.75, 3: 0.25})
        assert d.probability_of(0) == 0.75
        assert d.probability_of(1) == 0.0
        assert d.support_max == 3

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(np.array([]))
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_points({})

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(np.array([0.5, -0.1, 0.6]))

    def test_rejects_unnormalised(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(np.array([0.5, 0.1]))

    def test_unnormalised_allowed_when_flagged(self):
        d = DiscreteDistribution(np.array([0.5, 0.1]), normalized=False)
        assert d.total_mass == pytest.approx(0.6)

    def test_rejects_negative_support(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_points({-1: 1.0})


class TestConvolution:
    def test_known_convolution(self):
        a = DiscreteDistribution.from_points({0: 0.5, 1: 0.5})
        b = DiscreteDistribution.from_points({0: 0.5, 2: 0.5})
        c = a.convolve(b)
        assert c.probability_of(0) == pytest.approx(0.25)
        assert c.probability_of(1) == pytest.approx(0.25)
        assert c.probability_of(2) == pytest.approx(0.25)
        assert c.probability_of(3) == pytest.approx(0.25)

    def test_point_mass_is_identity(self):
        a = DiscreteDistribution.from_points({1: 0.3, 4: 0.7})
        identity = DiscreteDistribution.point_mass(0)
        assert np.allclose(a.convolve(identity).pmf[:a.support_max + 1],
                           a.pmf)

    def test_point_mass_shifts(self):
        a = DiscreteDistribution.from_points({1: 1.0})
        shifted = a.convolve(DiscreteDistribution.point_mass(2))
        assert shifted.probability_of(3) == pytest.approx(1.0)

    @given(distributions(), distributions())
    def test_mass_preserved(self, a, b):
        assert a.convolve(b).total_mass == pytest.approx(
            a.total_mass * b.total_mass, rel=1e-9)

    @given(distributions(), distributions())
    def test_commutative(self, a, b):
        assert np.allclose(a.convolve(b).pmf, b.convolve(a).pmf)

    @given(distributions(), distributions())
    def test_mean_additive(self, a, b):
        assert a.convolve(b).mean() == pytest.approx(a.mean() + b.mean(),
                                                     abs=1e-9)

    @given(st.lists(distributions(), max_size=4))
    def test_convolve_all(self, parts):
        combined = DiscreteDistribution.convolve_all(parts)
        expected_mean = sum(p.mean() for p in parts)
        assert combined.mean() == pytest.approx(expected_mean, abs=1e-8)

    def test_dense_path_matches_sparse_path(self):
        """Both convolution strategies must agree."""
        rng = np.random.default_rng(5)
        dense_pmf = rng.random(200)
        dense_pmf /= dense_pmf.sum()
        dense = DiscreteDistribution(dense_pmf)
        sparse = DiscreteDistribution.from_points({0: 0.9, 150: 0.1})
        via_method = dense.convolve(sparse)
        expected = np.convolve(dense.pmf, sparse.pmf)
        assert np.allclose(via_method.pmf, expected)


class TestScaleShift:
    def test_scale_values(self):
        d = DiscreteDistribution.from_points({1: 0.5, 2: 0.5})
        scaled = d.scale_values(100)
        assert scaled.probability_of(100) == 0.5
        assert scaled.probability_of(200) == 0.5
        assert scaled.mean() == pytest.approx(d.mean() * 100)

    def test_shift(self):
        d = DiscreteDistribution.from_points({0: 0.5, 1: 0.5})
        shifted = d.shift(10)
        assert shifted.probability_of(10) == 0.5
        assert shifted.probability_of(11) == 0.5

    def test_invalid_factor(self):
        d = DiscreteDistribution.point_mass(1)
        with pytest.raises(DistributionError):
            d.scale_values(0)
        with pytest.raises(DistributionError):
            d.shift(-1)


class TestTailQueries:
    def test_ccdf_definition(self):
        d = DiscreteDistribution.from_points({0: 0.5, 1: 0.3, 2: 0.2})
        ccdf = d.ccdf()
        assert ccdf[0] == pytest.approx(0.5)
        assert ccdf[1] == pytest.approx(0.2)
        assert ccdf[2] == pytest.approx(0.0)

    @given(distributions())
    def test_ccdf_non_increasing(self, d):
        ccdf = d.ccdf()
        assert np.all(np.diff(ccdf) <= 1e-15)

    def test_quantile_exceedance(self):
        d = DiscreteDistribution.from_points({0: 0.9, 10: 0.0999,
                                              100: 1e-4 - 1e-8,
                                              1000: 1e-8})
        assert d.quantile_exceedance(0.5) == 0
        assert d.quantile_exceedance(0.05) == 10
        assert d.quantile_exceedance(1e-5) == 100
        assert d.quantile_exceedance(1e-9) == 1000

    def test_quantile_semantics(self):
        """P(X > quantile(p)) <= p, and the quantile is minimal."""
        d = DiscreteDistribution.from_points(
            {0: 0.6, 3: 0.3, 7: 0.09, 12: 0.01})
        for p in (0.5, 0.2, 0.05, 0.005):
            q = d.quantile_exceedance(p)
            ccdf = d.ccdf()
            assert ccdf[q] <= p
            if q > 0:
                assert ccdf[q - 1] > p

    def test_quantile_rejects_bad_probability(self):
        d = DiscreteDistribution.point_mass(0)
        with pytest.raises(DistributionError):
            d.quantile_exceedance(0.0)
        with pytest.raises(DistributionError):
            d.quantile_exceedance(1.0)

    def test_deep_tail_accuracy(self):
        """Quantiles at 1e-15 must be exact despite float addition."""
        parts = [DiscreteDistribution.from_points({0: 1 - 1e-5, 7: 1e-5})
                 for _ in range(6)]
        combined = DiscreteDistribution.convolve_all(parts)
        # P(X >= 21) = P(at least 3 of 6 events) ~ C(6,3)*1e-15 = 2e-14
        assert combined.quantile_exceedance(1e-13) == 14
        assert combined.quantile_exceedance(1e-14) == 21
        assert combined.quantile_exceedance(1e-19) == 28

    def test_equality(self):
        a = DiscreteDistribution.from_points({0: 0.5, 1: 0.5})
        b = DiscreteDistribution.from_points({0: 0.5, 1: 0.5})
        assert a == b
        assert a != DiscreteDistribution.point_mass(0)
