"""Tests of the MIPS-like ISA model and the memory layout."""

import pytest

from repro.errors import ConfigurationError
from repro.isa import (INSTRUCTION_SIZE, FunctionImage, Instruction,
                       InstructionKind, MemoryLayout)
from repro.isa.instruction import MNEMONICS_BY_KIND, kind_of_mnemonic
from repro.isa.layout import DEFAULT_TEXT_BASE


class TestInstruction:
    def test_kind_derived_from_mnemonic(self):
        assert Instruction(0, "addu").kind is InstructionKind.SEQUENTIAL
        assert Instruction(0, "beq").kind is InstructionKind.BRANCH
        assert Instruction(0, "j").kind is InstructionKind.JUMP
        assert Instruction(0, "jal").kind is InstructionKind.CALL
        assert Instruction(0, "jr").kind is InstructionKind.RETURN

    def test_misaligned_address_rejected(self):
        with pytest.raises(ConfigurationError, match="aligned"):
            Instruction(2, "addu")

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            Instruction(-4, "addu")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mnemonic"):
            Instruction(0, "vaddps")

    def test_with_address_relocates(self):
        original = Instruction(8, "lw", "t0,0(fp)")
        moved = original.with_address(0x400008)
        assert moved.address == 0x400008
        assert moved.mnemonic == original.mnemonic
        assert moved.operands == original.operands

    def test_control_transfer_property(self):
        assert not Instruction(0, "addu").is_control_transfer
        assert Instruction(0, "bne").is_control_transfer

    def test_str_contains_address_and_mnemonic(self):
        text = str(Instruction(0x400000, "jal", target="helper"))
        assert "0x00400000" in text
        assert "jal" in text
        assert "helper" in text

    def test_every_mnemonic_maps_back_to_its_kind(self):
        for kind, mnemonics in MNEMONICS_BY_KIND.items():
            for mnemonic in mnemonics:
                assert kind_of_mnemonic(mnemonic) is kind


class TestFunctionImage:
    def test_end_address(self):
        image = FunctionImage("f", 0x400000, 64)
        assert image.end_address == 0x400040

    def test_rejects_misaligned_base(self):
        with pytest.raises(ConfigurationError):
            FunctionImage("f", 0x400002, 64)

    @pytest.mark.parametrize("size", [0, -4, 3])
    def test_rejects_bad_size(self, size):
        with pytest.raises(ConfigurationError):
            FunctionImage("f", 0x400000, size)


class TestMemoryLayout:
    def test_places_functions_contiguously(self):
        layout = MemoryLayout()
        first = layout.place("a", 40)
        second = layout.place("b", 16)
        assert first.base_address == DEFAULT_TEXT_BASE
        assert second.base_address == first.end_address
        assert layout.total_code_bytes == 56

    def test_alignment_pads_between_functions(self):
        layout = MemoryLayout(alignment=16)
        layout.place("a", 20)
        second = layout.place("b", 8)
        assert second.base_address % 16 == 0
        assert second.base_address == DEFAULT_TEXT_BASE + 32

    def test_duplicate_function_rejected(self):
        layout = MemoryLayout()
        layout.place("a", 8)
        with pytest.raises(ConfigurationError, match="placed twice"):
            layout.place("a", 8)

    def test_image_lookup(self):
        layout = MemoryLayout()
        layout.place("a", 8)
        assert layout.image_of("a").size_bytes == 8
        with pytest.raises(ConfigurationError):
            layout.image_of("missing")

    def test_images_in_order(self):
        layout = MemoryLayout()
        for name in ("x", "y", "z"):
            layout.place(name, INSTRUCTION_SIZE)
        assert [image.name for image in layout.images] == ["x", "y", "z"]

    def test_invalid_text_base(self):
        with pytest.raises(ConfigurationError):
            MemoryLayout(text_base=3)

    def test_invalid_alignment(self):
        with pytest.raises(ConfigurationError):
            MemoryLayout(alignment=2)
