"""Reliability mechanisms and the SRB must-analysis."""

import pytest

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError
from repro.faults import FaultProbabilityModel
from repro.minic import (Call, Compute, Function, Loop, Program,
                         compile_program)
from repro.reliability import (MECHANISMS, NoProtection, ReliableWay,
                               SharedReliableBuffer, mechanism_by_name,
                               srb_always_hit_references)

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)
MODEL = FaultProbabilityModel(geometry=GEOMETRY, pfail=1e-4)


class TestRegistry:
    def test_three_mechanisms(self):
        assert [m.name for m in MECHANISMS] == ["none", "srb", "rw"]

    def test_lookup_by_name(self):
        assert isinstance(mechanism_by_name("rw"), ReliableWay)
        assert isinstance(mechanism_by_name("srb"), SharedReliableBuffer)
        assert isinstance(mechanism_by_name("none"), NoProtection)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            mechanism_by_name("ecc")


class TestFaultCounts:
    def test_no_protection_covers_all(self):
        assert NoProtection().fault_counts(4) == (0, 1, 2, 3, 4)

    def test_rw_excludes_all_faulty(self):
        assert ReliableWay().fault_counts(4) == (0, 1, 2, 3)

    def test_srb_covers_all(self):
        assert SharedReliableBuffer().fault_counts(4) == (0, 1, 2, 3, 4)

    def test_pmfs_sum_to_one(self):
        for mechanism in MECHANISMS:
            pmf = mechanism.fault_pmf(MODEL)
            assert sum(pmf.values()) == pytest.approx(1.0)
            assert set(pmf) == set(mechanism.fault_counts(GEOMETRY.ways))

    def test_srb_flag(self):
        assert SharedReliableBuffer().uses_srb
        assert not NoProtection().uses_srb
        assert not ReliableWay().uses_srb

    def test_rw_pmf_matches_equation_3(self):
        pmf = ReliableWay().fault_pmf(MODEL)
        for w, probability in pmf.items():
            assert probability == pytest.approx(MODEL.pwf_reliable_way(w))


class TestSRBAnalysis:
    def test_straight_line_spatial_hits(self, straight_line_program):
        """Within a line, every fetch after the first is an SRB hit."""
        hits = srb_always_hit_references(straight_line_program.cfg,
                                         GEOMETRY)
        cfg = straight_line_program.cfg
        for block in cfg.blocks.values():
            for index, instruction in enumerate(block.instructions):
                key = (block.block_id, index)
                crosses_line = (index == 0 or
                                instruction.address // 16
                                != block.instructions[index - 1].address
                                // 16)
                if not crosses_line:
                    assert key in hits

    def test_paper_example_pattern(self):
        """The paper's a1 a2 b1 b2 a1 a2 example (§III-B2).

        Modelled as a loop whose body spans two cache lines in
        different sets: the second fetch of each line is an SRB hit,
        the first fetch of line A on re-entry is NOT (the SRB may have
        been reloaded by line B in between).
        """
        # 8 instructions = exactly 2 lines; loop repeats them.
        program = Program([Function("main", [Loop(3, [Compute(1)])])],
                          name="ab")
        compiled = compile_program(program)
        hits = srb_always_hit_references(compiled.cfg, GEOMETRY)
        cfg = compiled.cfg
        for block in cfg.blocks.values():
            for index in range(1, len(block.instructions)):
                line = block.instructions[index].address // 16
                previous_line = block.instructions[index - 1].address // 16
                key = (block.block_id, index)
                if line == previous_line:
                    # Same line as the immediately preceding fetch:
                    # guaranteed SRB hit (spatial locality).
                    assert key in hits
                else:
                    # Crossing into a new line within a block: the SRB
                    # held the previous line, so this fetch misses.
                    assert key not in hits

    def test_loop_header_reentry_not_hit(self):
        """Across iterations the SRB forgets (conservatively)."""
        program = Program([Function("main", [Loop(5, [Compute(12)])])],
                          name="wide_loop")
        compiled = compile_program(program)
        hits = srb_always_hit_references(compiled.cfg, GEOMETRY)
        cfg = compiled.cfg
        headers = [block for block in cfg.blocks.values()
                   if block.loop_bound is not None]
        [header] = headers
        # The header's first instruction follows either the init block
        # or the latch; those end in different lines, so no SRB hit.
        assert (header.block_id, 0) not in hits

    def test_srb_hits_subset_of_must_hits(self, call_program):
        """An SRB hit is a fortiori a must-hit of the real cache."""
        from repro.analysis import CacheAnalysis, Chmc
        hits = srb_always_hit_references(call_program.cfg, GEOMETRY)
        analysis = CacheAnalysis(call_program.cfg, GEOMETRY)
        table = analysis.classification()
        for block_id, index in hits:
            assert table.of(block_id, index).chmc is Chmc.ALWAYS_HIT
