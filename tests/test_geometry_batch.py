"""The stacked geometry-batch kernel vs the per-geometry oracles.

The stacked engine (:mod:`repro.analysis.geometry_batch`) must be
byte-identical to running one :class:`AgeVectorEngine` per geometry —
recorded ages, verdicts at every associativity and CHMC tables — which
in turn is property-tested against the dict oracle.  These are the
tests that license making ``batch`` the default engine and wiring the
sweep's geometry axis through it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import AgeVectorEngine, CacheAnalysis
from repro.analysis.geometry_batch import (GroupSrbHits,
                                           StackedAgeVectorEngine,
                                           grouped_analysis)
from repro.analysis.references import all_references
from repro.cache import CacheGeometry
from repro.errors import AnalysisError
from repro.minic import compile_program
from repro.pipeline.stages import SUITE_MECHANISMS, required_classifications
from repro.suite import load
from repro.sweep.grid import geometry_grid
from tests.strategies import programs

_suppress = [HealthCheck.too_slow]

#: A deliberately heterogeneous line-size group: different set counts
#: AND different way counts stacked into one state.
SMALL_GROUP = (
    CacheGeometry(sets=4, ways=2, block_bytes=16),
    CacheGeometry(sets=2, ways=4, block_bytes=16),
    CacheGeometry(sets=8, ways=2, block_bytes=16),
)


def _groups(geometries):
    groups: dict[int, list] = {}
    for geometry in geometries:
        groups.setdefault(geometry.block_bytes, []).append(geometry)
    return [tuple(group) for group in groups.values()]


def assert_stack_matches_solo(cfg, group):
    """Stacked ages and verdicts == one AgeVectorEngine per geometry."""
    references = {geometry: all_references(cfg, geometry)
                  for geometry in group}
    stack = StackedAgeVectorEngine(cfg, group, references)
    for position, geometry in enumerate(group):
        view = stack.geometry_slice(position)
        solo = AgeVectorEngine(cfg, geometry, references[geometry])
        for block_id in references[geometry]:
            assert np.array_equal(view.must_ages()[block_id],
                                  solo.must_ages()[block_id])
            assert np.array_equal(view.may_ages()[block_id],
                                  solo.may_ages()[block_id])
            for assoc in range(1, geometry.ways + 1):
                assert np.array_equal(
                    view.guaranteed_hits(block_id, assoc),
                    solo.guaranteed_hits(block_id, assoc))
                assert np.array_equal(
                    view.possibly_cached(block_id, assoc),
                    solo.possibly_cached(block_id, assoc))
    assert stack.fixpoints_run == 2


def assert_tables_identical(cfg, group):
    """grouped_analysis tables == per-geometry vector and dict tables."""
    references = {geometry: all_references(cfg, geometry)
                  for geometry in group}
    stack = StackedAgeVectorEngine(cfg, group, references)
    for position, geometry in enumerate(group):
        batch = CacheAnalysis(cfg, geometry, cache="off", engine="batch",
                              references=references[geometry],
                              vector_engine=stack.geometry_slice(position))
        vector = CacheAnalysis(cfg, geometry, cache="off", engine="vector")
        oracle = CacheAnalysis(cfg, geometry, cache="off", engine="dict")
        for assoc in range(geometry.ways, -1, -1):
            expected = oracle.classification(assoc)
            for via in (batch, vector):
                table = via.classification(assoc)
                for block_id in cfg.block_ids():
                    assert table.of_block(block_id) \
                        == expected.of_block(block_id)


class TestStackedEngineEquivalence:
    """Property tests: stacked == per-geometry at every layer."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=_suppress)
    @given(program=programs())
    def test_random_cfgs_small_group(self, program):
        compiled = compile_program(program)
        assert_stack_matches_solo(compiled.cfg, SMALL_GROUP)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=_suppress)
    @given(program=programs())
    def test_random_cfgs_tables(self, program):
        compiled = compile_program(program)
        assert_tables_identical(compiled.cfg, SMALL_GROUP[:2])

    @pytest.mark.parametrize("name", ("bs", "crc", "matmult"))
    def test_default_grid_geometries(self, name):
        """All 16 default grid geometries, stacked per line size."""
        cfg = load(name).cfg
        for group in _groups(geometry_grid()):
            assert_stack_matches_solo(cfg, group)

    def test_single_geometry_stack_matches_plain_engine(self):
        cfg = load("fibcall").cfg
        geometry = SMALL_GROUP[0]
        references = {geometry: all_references(cfg, geometry)}
        stack = StackedAgeVectorEngine(cfg, (geometry,), references)
        solo = AgeVectorEngine(cfg, geometry, references[geometry])
        view = stack.geometry_slice(0)
        for block_id in references[geometry]:
            assert np.array_equal(view.must_ages()[block_id],
                                  solo.must_ages()[block_id])
            assert np.array_equal(view.may_ages()[block_id],
                                  solo.may_ages()[block_id])

    def test_mixed_line_sizes_rejected(self):
        cfg = load("fibcall").cfg
        bad = (CacheGeometry(sets=4, ways=2, block_bytes=16),
               CacheGeometry(sets=4, ways=2, block_bytes=32))
        with pytest.raises(AnalysisError):
            StackedAgeVectorEngine(
                cfg, bad, {g: all_references(cfg, g) for g in bad})

    def test_duplicate_geometries_rejected(self):
        cfg = load("fibcall").cfg
        geometry = SMALL_GROUP[0]
        with pytest.raises(AnalysisError):
            StackedAgeVectorEngine(
                cfg, (geometry, geometry),
                {geometry: all_references(cfg, geometry)})

    def test_empty_group_rejected(self):
        with pytest.raises(AnalysisError):
            StackedAgeVectorEngine(load("fibcall").cfg, (), {})


class TestGroupedAnalysis:
    """The classify-stage entry point: shared stats, store prefill."""

    def test_one_fixpoint_pair_plus_srb_per_group(self):
        cfg = load("crc").cfg
        analysis = grouped_analysis(cfg, SMALL_GROUP, SUITE_MECHANISMS,
                                    cache="off")
        # 2 stacked (Must+May) + 1 shared SRB for the whole group.
        assert analysis.stats.fixpoints_run == 3
        assert analysis.stats.classify_batched_rows == len(SMALL_GROUP) - 1
        assert analysis.stats.geometry_groups == 1

    def test_vector_engine_runs_per_geometry_orchestration(self):
        """Same orchestration under the oracle: counters except
        fixpoints identical (the engine knob selects only the kernel)."""
        cfg = load("bs").cfg
        batched = grouped_analysis(cfg, SMALL_GROUP, SUITE_MECHANISMS,
                                   cache="off")
        vector = grouped_analysis(cfg, SMALL_GROUP, SUITE_MECHANISMS,
                                  cache="off", engine="vector")
        batch_dict = batched.stats.as_dict()
        vector_dict = vector.stats.as_dict()
        assert batch_dict.pop("fixpoints_run") \
            < vector_dict.pop("fixpoints_run")
        assert batch_dict == vector_dict

    def test_group_prefills_sibling_store_entries(self, tmp_path):
        """Sibling geometries' tables land under their own keys: a
        later per-geometry analysis is served entirely from the store."""
        cfg = load("fibcall").cfg
        grouped_analysis(cfg, SMALL_GROUP, SUITE_MECHANISMS,
                         cache=str(tmp_path))
        for geometry in SMALL_GROUP:
            warm = CacheAnalysis(cfg, geometry, cache=str(tmp_path))
            assocs, needs_srb = required_classifications(
                SUITE_MECHANISMS, geometry.ways)
            for assoc in assocs:
                warm.classification(assoc)
            if needs_srb:
                warm.srb_always_hits()
            assert warm.stats.fixpoints_run == 0
            assert warm.stats.classify_store_misses == 0
            assert warm.stats.classify_store_hits > 0

    def test_group_srb_hits_match_per_geometry(self):
        cfg = load("crc").cfg
        from repro.analysis.classify import AnalysisStats

        stats = AnalysisStats()
        shared = GroupSrbHits(cfg, 16, stats)()
        solo = CacheAnalysis(cfg, SMALL_GROUP[0], cache="off",
                             engine="vector")
        assert frozenset(shared) == solo.srb_always_hits()
        assert stats.fixpoints_run == 1
