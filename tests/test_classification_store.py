"""The persistent classification store: identity, recovery, warm runs.

Mirrors ``tests/test_solve_store.py`` for the analysis-side store: a
warm run must decode exactly the tables a cold run computed (running
**zero** fixpoints), and anything unreadable on disk must degrade to
recomputation, never to a wrong classification.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import CacheAnalysis, Chmc, Classification
from repro.analysis.chmc import ALWAYS_HIT, ALWAYS_MISS, GLOBAL_SCOPE
from repro.analysis.store import (CLASSIFY_SCHEMA_VERSION,
                                  ClassificationStore, classification_key,
                                  decode_table, encode_table)
from repro.cache import CacheGeometry
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.suite import load

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)
MECHANISMS = ("none", "srb", "rw")


def _shards(store: ClassificationStore):
    return sorted(store._shard_dir.glob("shard-*.jsonl"))


class TestTableCodec:
    def test_round_trip_preserves_every_classification(self):
        table = {
            0: (ALWAYS_HIT, ALWAYS_MISS),
            3: (Classification(chmc=Chmc.FIRST_MISS, scope=GLOBAL_SCOPE),
                Classification(chmc=Chmc.FIRST_MISS, scope=7)),
            5: (),
        }
        assert decode_table(encode_table(table)) == table

    def test_malformed_values_decode_to_none(self):
        assert decode_table(None) is None
        assert decode_table({"blocks": [[0, [99]]]}) is None
        assert decode_table({"blocks": [[0, [[2, 7]]]]}) is None
        assert decode_table({"wrong": []}) is None

    def test_key_separates_every_dimension(self):
        base = classification_key("cfg", GEOMETRY, 4)
        assert base == classification_key("cfg", GEOMETRY, 4)
        assert base != classification_key("other", GEOMETRY, 4)
        assert base != classification_key("cfg", GEOMETRY, 3)
        assert base != classification_key("cfg", GEOMETRY, 4, kind="srb")
        small = CacheGeometry(sets=4, ways=2, block_bytes=16)
        assert base != classification_key("cfg", small, 2)


class TestRoundTrip:
    def test_entries_survive_reopen(self, tmp_path):
        store = ClassificationStore(tmp_path)
        key = classification_key("cfg", GEOMETRY, 2)
        value = encode_table({0: (ALWAYS_HIT,)})
        store.put(key, value)
        store.close()
        assert ClassificationStore(tmp_path).get(key) == value

    def test_duplicate_put_is_idempotent(self, tmp_path):
        store = ClassificationStore(tmp_path)
        key = classification_key("cfg", GEOMETRY, 2)
        store.put(key, {"blocks": []})
        store.put(key, {"blocks": []})
        store.close()
        shard = _shards(store)[0]
        assert len(shard.read_text().splitlines()) == 1

    def test_entries_live_under_versioned_directory(self, tmp_path):
        store = ClassificationStore(tmp_path)
        store.put(classification_key("cfg", GEOMETRY, 1), {"blocks": []})
        assert (tmp_path / f"classify-v{CLASSIFY_SCHEMA_VERSION}").is_dir()

    def test_coexists_with_solve_store(self, tmp_path):
        """Both stores share one root without clobbering each other."""
        from repro.solve.store import SolveStore, solve_key
        solve = SolveStore(tmp_path)
        solve.put(solve_key("ctx", [("x", 1.0)], False), 41)
        classify = ClassificationStore(tmp_path)
        key = classification_key("cfg", GEOMETRY, 4)
        classify.put(key, {"blocks": []})
        assert SolveStore(tmp_path).get(
            solve_key("ctx", [("x", 1.0)], False)) == 41
        assert ClassificationStore(tmp_path).get(key) == {"blocks": []}


class TestCorruptionRecovery:
    def _populated(self, tmp_path):
        store = ClassificationStore(tmp_path)
        key = classification_key("cfg", GEOMETRY, 2)
        store.put(key, encode_table({0: (ALWAYS_MISS,)}))
        store.close()
        return store, key

    def test_truncated_tail_is_skipped(self, tmp_path):
        store, key = self._populated(tmp_path)
        with open(_shards(store)[0], "a") as handle:
            handle.write('{"t":"classify","k":"abc","v":{"blo')
        fresh = ClassificationStore(tmp_path)
        assert fresh.get(key) == encode_table({0: (ALWAYS_MISS,)})
        assert fresh.corrupt_skipped == 1

    def test_garbage_bytes_are_skipped(self, tmp_path):
        store, key = self._populated(tmp_path)
        with open(_shards(store)[0], "ab") as handle:
            handle.write(b"\x00\xffgarbage\n{]\n")
        fresh = ClassificationStore(tmp_path)
        assert fresh.get(key) is not None
        assert fresh.corrupt_skipped >= 1

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        store, key = self._populated(tmp_path)
        shard = _shards(store)[0]
        entry = json.loads(shard.read_text().splitlines()[0])
        entry["v"] = {"blocks": [[0, [0]]]}  # tamper, keep checksum
        with open(shard, "a") as handle:
            handle.write(json.dumps(entry) + "\n")
        fresh = ClassificationStore(tmp_path)
        assert fresh.get(key) == encode_table({0: (ALWAYS_MISS,)})
        assert fresh.corrupt_skipped == 1

    def test_foreign_kind_is_skipped(self, tmp_path):
        """A solve entry in the classify directory is rejected."""
        store, key = self._populated(tmp_path)
        from repro.solve.store import _checksum
        with open(_shards(store)[0], "a") as handle:
            handle.write(json.dumps({"t": "solve", "k": "0" * 64, "v": 5,
                                     "c": _checksum("solve", "0" * 64,
                                                    "5")}) + "\n")
        fresh = ClassificationStore(tmp_path)
        assert fresh.get("0" * 64) is None
        assert fresh.corrupt_skipped == 1

    def test_malformed_entry_degrades_to_recomputation(self, tmp_path):
        """A valid line whose *payload* no longer decodes must only
        cost a recomputation, never a wrong table."""
        from repro.solve.store import _checksum
        cfg = load("fibcall").cfg
        cache = str(tmp_path)
        cold = CacheAnalysis(cfg, GEOMETRY, cache=cache)
        expected = cold.classification(4).count_by_chmc()
        cold.store.close()
        # Overwrite every entry with structurally valid garbage (the
        # line parses and checksums, but the table payload is junk).
        for shard in _shards(cold.store):
            lines = []
            for line in shard.read_text().splitlines():
                entry = json.loads(line)
                entry["v"] = {"blocks": [[0, [99]]]}
                entry["c"] = _checksum("classify", entry["k"],
                                       json.dumps(entry["v"],
                                                  sort_keys=True,
                                                  separators=(",", ":")))
                lines.append(json.dumps(entry, sort_keys=True,
                                        separators=(",", ":")))
            shard.write_text("\n".join(lines) + "\n")
        fresh = CacheAnalysis(cfg, GEOMETRY, cache=cache)
        # Force a fresh handle so the tampered shard is actually read.
        fresh._store = ClassificationStore(tmp_path)
        assert fresh.classification(4).count_by_chmc() == expected
        assert fresh.stats.fixpoints_run > 0  # recomputed, not decoded
        fresh._store.close()
        # The recompute must also *repair* the store: its corrected
        # entry is appended and wins on load (last occurrence), so the
        # next run is warm again instead of recomputing forever.
        repaired = CacheAnalysis(cfg, GEOMETRY, cache=cache)
        repaired._store = ClassificationStore(tmp_path)
        assert repaired.classification(4).count_by_chmc() == expected
        assert repaired.stats.fixpoints_run == 0


class TestResolution:
    def test_off_disables(self):
        assert ClassificationStore.resolve("off") is None

    def test_shares_root_with_solve_store(self, tmp_path):
        from repro.solve.store import SolveStore
        classify = ClassificationStore.resolve(str(tmp_path))
        solve = SolveStore.resolve(str(tmp_path))
        assert classify is not None
        assert classify.root == solve.root

    def test_handles_are_memoised(self, tmp_path):
        first = ClassificationStore.resolve(str(tmp_path))
        second = ClassificationStore.resolve(str(tmp_path))
        assert first is second


class TestWarmAnalysis:
    """The tentpole property: a warm analysis runs zero fixpoints."""

    def _classify_all(self, cfg, cache):
        analysis = CacheAnalysis(cfg, GEOMETRY, cache=cache)
        tables = {assoc: analysis.classification(assoc).count_by_chmc()
                  for assoc in range(GEOMETRY.ways, -1, -1)}
        srb = analysis.srb_always_hits()
        return tables, srb, analysis.stats

    @pytest.mark.parametrize("name", ("crc", "ud"))
    def test_warm_analysis_runs_zero_fixpoints(self, tmp_path, name):
        cache = str(tmp_path / "store")
        cfg = load(name).cfg
        cold_tables, cold_srb, cold_stats = self._classify_all(cfg, cache)
        assert cold_stats.fixpoints_run > 0
        assert cold_stats.classify_store_writes > 0
        warm_tables, warm_srb, warm_stats = self._classify_all(cfg, cache)
        assert warm_tables == cold_tables
        assert warm_srb == cold_srb
        assert warm_stats.fixpoints_run == 0
        assert warm_stats.tables_built == 0
        assert warm_stats.classify_store_hits > 0

    def test_tables_are_bit_identical_after_round_trip(self, tmp_path):
        cache = str(tmp_path / "store")
        cfg = load("crc").cfg
        cold = CacheAnalysis(cfg, GEOMETRY, cache=cache)
        warm = CacheAnalysis(cfg, GEOMETRY, cache=cache)
        for assoc in range(GEOMETRY.ways + 1):
            for (ref_c, cls_c), (ref_w, cls_w) in zip(
                    cold.classification(assoc).items(),
                    warm.classification(assoc).items()):
                assert ref_c == ref_w
                assert cls_c == cls_w

    def test_engines_share_store_entries(self, tmp_path):
        """Keys are engine-independent: results are identical by
        contract, so a dict-engine run warms the vector engine too."""
        cache = str(tmp_path / "store")
        cfg = load("fibcall").cfg
        oracle = CacheAnalysis(cfg, GEOMETRY, cache=cache, engine="dict")
        oracle.classification(4)
        vector = CacheAnalysis(cfg, GEOMETRY, cache=cache, engine="vector")
        vector.classification(4)
        assert vector.stats.fixpoints_run == 0
        assert vector.stats.classify_store_hits == 1

    def test_cache_off_disables_persistence(self):
        cfg = load("fibcall").cfg
        first = CacheAnalysis(cfg, GEOMETRY, cache="off")
        first.classification(4)
        second = CacheAnalysis(cfg, GEOMETRY, cache="off")
        second.classification(4)
        assert second.stats.fixpoints_run > 0
        assert second.store is None


class TestWarmEstimator:
    """End to end: warm estimations run zero fixpoints *and* zero
    backend ILPs, with identical pWCETs."""

    def test_estimator_warm_rerun(self, tmp_path):
        cache = str(tmp_path / "store")

        def estimate_all():
            estimator = PWCETEstimator(load("crc"),
                                       EstimatorConfig(cache=cache),
                                       name="crc")
            values = {mechanism: estimator.estimate(mechanism).pwcet()
                      for mechanism in MECHANISMS}
            return values, estimator.stats_summary()

        cold_values, cold_stats = estimate_all()
        assert cold_stats["fixpoints_run"] > 0
        assert cold_stats["ilp_solved"] > 0
        warm_values, warm_stats = estimate_all()
        assert warm_values == cold_values
        assert warm_stats["fixpoints_run"] == 0
        assert warm_stats["ilp_solved"] == 0
        assert warm_stats["classify_store_hits"] > 0
