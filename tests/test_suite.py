"""The 25-benchmark suite: availability, structure, metadata."""

import pytest

from repro.errors import ConfigurationError
from repro.suite import (EVALUATED_BENCHMARKS, BenchmarkInfo, build, info,
                         load)


class TestRegistry:
    def test_exactly_25_benchmarks(self):
        assert len(EVALUATED_BENCHMARKS) == 25
        assert len(set(EVALUATED_BENCHMARKS)) == 25

    def test_paper_named_benchmarks_present(self):
        """The benchmarks the paper mentions by name must exist."""
        for name in ("adpcm", "matmult", "ud", "fft"):
            assert name in EVALUATED_BENCHMARKS

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build("dhrystone")

    def test_build_memoised(self):
        assert build("bs") is build("bs")

    def test_load_memoised(self):
        assert load("bs") is load("bs")


@pytest.mark.parametrize("name", EVALUATED_BENCHMARKS)
class TestEveryBenchmark:
    def test_builds_and_compiles(self, name):
        compiled = load(name)
        compiled.cfg.validate()
        assert compiled.name == name

    def test_has_loops_with_bounds(self, name):
        from repro.cfg import find_loops
        compiled = load(name)
        forest = find_loops(compiled.cfg)
        assert len(forest) >= 1
        for loop in forest.loops.values():
            assert loop.bound >= 1

    def test_info_metadata(self, name):
        metadata = info(name)
        assert isinstance(metadata, BenchmarkInfo)
        assert metadata.code_bytes > 0
        assert metadata.description  # first docstring line

    def test_instruction_addresses_unique_per_context(self, name):
        compiled = load(name)
        seen: dict[tuple, set] = {}
        for block in compiled.cfg.blocks.values():
            bucket = seen.setdefault(block.context, set())
            for address in block.addresses:
                assert address not in bucket
                bucket.add(address)


class TestSuiteShape:
    def test_footprint_spread(self):
        """The suite must span small kernels and over-cache programs."""
        sizes = {name: info(name).code_bytes
                 for name in EVALUATED_BENCHMARKS}
        assert min(sizes.values()) < 512       # tiny kernels exist
        assert max(sizes.values()) > 4096      # cache-busting code exists

    def test_nsichneu_is_the_biggest(self):
        sizes = {name: info(name).code_bytes
                 for name in EVALUATED_BENCHMARKS}
        assert max(sizes, key=sizes.__getitem__) == "nsichneu"
