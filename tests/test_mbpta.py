"""EVT fitting and the measurement-based estimator."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import EstimationError
from repro.mbpta import (MBPTAEstimator, fit_block_maxima,
                         fit_peaks_over_threshold)
from repro.pwcet import EstimatorConfig


class TestBlockMaxima:
    def test_fit_recovers_gumbel_quantiles(self):
        """Samples from a Gumbel: the fitted quantile must be close to
        the analytic one."""
        rng = np.random.default_rng(1)
        samples = stats.gumbel_r.rvs(loc=1000, scale=25, size=6000,
                                     random_state=rng)
        fit = fit_block_maxima(samples, block_size=50)
        target = 1e-6
        estimate = fit.quantile(target)
        exact = stats.gumbel_r.ppf(1 - target, loc=1000, scale=25)
        assert estimate == pytest.approx(exact, rel=0.15)

    def test_needs_enough_samples(self):
        with pytest.raises(EstimationError):
            fit_block_maxima(np.arange(30), block_size=50)

    def test_degenerate_sample(self):
        fit = fit_block_maxima(np.full(200, 1234.0), block_size=20)
        assert fit.quantile(1e-9) == pytest.approx(1234.0, abs=1.0)

    def test_quantile_validates_probability(self):
        fit = fit_block_maxima(np.arange(200.0), block_size=20)
        with pytest.raises(EstimationError):
            fit.quantile(0.0)

    def test_quantile_monotone(self):
        rng = np.random.default_rng(3)
        samples = stats.gumbel_r.rvs(loc=0, scale=1, size=2000,
                                     random_state=rng)
        fit = fit_block_maxima(samples, block_size=40)
        quantiles = [fit.quantile(p) for p in (1e-3, 1e-6, 1e-9)]
        assert quantiles == sorted(quantiles)


class TestPOT:
    def test_fit_recovers_exponential_tail(self):
        """Exponential data: GPD shape ~ 0, quantiles analytic."""
        rng = np.random.default_rng(2)
        samples = rng.exponential(scale=50.0, size=8000) + 500
        fit = fit_peaks_over_threshold(samples, threshold_quantile=0.9)
        assert abs(fit.shape) < 0.15
        target = 1e-5
        estimate = fit.quantile(target)
        exact = 500 + stats.expon.ppf(1 - target, scale=50.0)
        assert estimate == pytest.approx(exact, rel=0.2)

    def test_needs_enough_samples(self):
        with pytest.raises(EstimationError):
            fit_peaks_over_threshold(np.arange(20.0))

    def test_threshold_quantile_validated(self):
        with pytest.raises(EstimationError):
            fit_peaks_over_threshold(np.arange(1000.0),
                                     threshold_quantile=0.2)

    def test_body_queries_return_threshold(self):
        fit = fit_peaks_over_threshold(np.arange(1000.0))
        assert fit.quantile(0.5) == fit.threshold


class TestMBPTAEstimator:
    @pytest.fixture(scope="class")
    def result(self, loop_program):
        estimator = MBPTAEstimator(loop_program.cfg, EstimatorConfig(),
                                   name="loop_program")
        return estimator.estimate("none", 1e-9, n_samples=400, seed=7)

    def test_result_fields(self, result):
        assert result.mechanism_name == "none"
        assert result.method == "block-maxima"
        assert result.n_samples == 400

    def test_pwcet_at_least_observed_max(self, result):
        assert result.pwcet >= result.samples_max

    def test_summary_readable(self, result):
        text = result.summary()
        assert "loop_program" in text and "pWCET" in text

    def test_pot_method(self, loop_program):
        estimator = MBPTAEstimator(loop_program.cfg, EstimatorConfig())
        result = estimator.estimate("none", 1e-9, n_samples=300,
                                    method="pot", seed=8)
        assert result.method == "pot"
        assert result.pwcet >= result.samples_max

    def test_unknown_method(self, loop_program):
        estimator = MBPTAEstimator(loop_program.cfg, EstimatorConfig())
        with pytest.raises(EstimationError):
            estimator.estimate("none", 1e-9, n_samples=300,
                               method="bootstrap")

    def test_deterministic_per_seed(self, loop_program):
        estimator = MBPTAEstimator(loop_program.cfg, EstimatorConfig())
        first = estimator.estimate("rw", 1e-9, n_samples=200, seed=5)
        second = estimator.estimate("rw", 1e-9, n_samples=200, seed=5)
        assert first.pwcet == second.pwcet
