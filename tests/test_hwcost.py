"""The hardware cost model and the pWCET/cost trade-off."""

import pytest

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError
from repro.hwcost import CellTechnology, MechanismCostModel, tradeoff_points
from repro.hwcost.model import CELL_TECHNOLOGIES
from repro.hwcost.tradeoff import format_tradeoff
from repro.reliability import (NoProtection, ReliableWay,
                               SharedReliableBuffer)

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


class TestCellTechnology:
    def test_presets(self):
        assert CELL_TECHNOLOGIES["8T"].hardened_area_factor < \
            CELL_TECHNOLOGIES["schmitt-trigger-10T"].hardened_area_factor

    def test_rejects_shrinking_cells(self):
        with pytest.raises(ConfigurationError):
            CellTechnology("magic", hardened_area_factor=0.5)

    def test_rejects_non_positive_leakage(self):
        with pytest.raises(ConfigurationError):
            CellTechnology("magic", hardened_leakage_factor=0.0)


class TestCostModel:
    @pytest.fixture()
    def model(self):
        return MechanismCostModel(GEOMETRY)

    def test_baseline_counts(self, model):
        # data: 16*4*128 bits; tags: 16*4*(32-4-4+1); lru: 16*5
        data = 16 * 4 * 128
        tags = 16 * 4 * (32 - 4 - 4 + 1)
        lru = 16 * 5  # ceil(log2(4!)) = 5
        assert model.baseline_cells() == data + tags + lru

    def test_no_protection_is_free(self, model):
        cost = model.cost_of(NoProtection())
        assert cost.overhead_cell_equivalents == 0.0
        assert cost.area_overhead_ratio == 0.0

    def test_srb_cheaper_than_rw(self, model):
        """The paper's core cost argument (§III-A2)."""
        srb = model.cost_of(SharedReliableBuffer())
        rw = model.cost_of(ReliableWay())
        assert 0 < srb.overhead_cell_equivalents
        assert srb.overhead_cell_equivalents < rw.overhead_cell_equivalents

    def test_rw_overhead_scales_with_sets(self):
        small = MechanismCostModel(CacheGeometry(sets=8, ways=4,
                                                 block_bytes=16))
        large = MechanismCostModel(CacheGeometry(sets=32, ways=4,
                                                 block_bytes=16))
        assert (large.cost_of(ReliableWay()).overhead_cell_equivalents
                > small.cost_of(ReliableWay()).overhead_cell_equivalents)

    def test_srb_overhead_independent_of_sets(self):
        small = MechanismCostModel(CacheGeometry(sets=8, ways=4,
                                                 block_bytes=16))
        large = MechanismCostModel(CacheGeometry(sets=32, ways=4,
                                                 block_bytes=16))
        assert (large.cost_of(SharedReliableBuffer())
                .overhead_cell_equivalents
                == small.cost_of(SharedReliableBuffer())
                .overhead_cell_equivalents)

    def test_cheaper_cells_cheaper_overhead(self):
        expensive = MechanismCostModel(
            GEOMETRY, technology=CELL_TECHNOLOGIES["schmitt-trigger-10T"])
        cheap = MechanismCostModel(GEOMETRY,
                                   technology=CELL_TECHNOLOGIES["8T"])
        assert (cheap.cost_of(ReliableWay()).overhead_cell_equivalents
                < expensive.cost_of(ReliableWay())
                .overhead_cell_equivalents)

    def test_leakage_grows_with_hardening(self, model):
        none = model.cost_of(NoProtection())
        rw = model.cost_of(ReliableWay())
        assert rw.leakage_equivalents > none.leakage_equivalents


class TestTradeoff:
    @pytest.fixture(scope="class")
    def points(self):
        return tradeoff_points(("fibcall", "ud"))

    def test_three_points_per_benchmark(self, points):
        assert len(points) == 6

    def test_baseline_gain_zero(self, points):
        for point in points:
            if point.mechanism == "none":
                assert point.gain == 0.0
                assert point.area_overhead == 0.0

    def test_srb_better_gain_per_area(self, points):
        """The SRB's selling point: more gain per silicon."""
        by_key = {(p.benchmark, p.mechanism): p for p in points}
        for benchmark in ("fibcall", "ud"):
            srb = by_key[(benchmark, "srb")]
            rw = by_key[(benchmark, "rw")]
            assert srb.gain_per_area_point > rw.gain_per_area_point

    def test_format(self, points):
        text = format_tradeoff(points)
        assert "gain/area" in text
        assert "fibcall" in text
