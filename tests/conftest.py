"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.cache import CacheGeometry
from repro.ipet import TimingModel
from repro.minic import (Call, Compute, Function, If, Loop, Program,
                         compile_program)


@pytest.fixture(scope="session", autouse=True)
def _isolated_solve_cache(tmp_path_factory):
    """Point the persistent solve cache at a per-session directory.

    Keeps the tier-1 suite hermetic: runs never read entries written
    by earlier sessions (planner-stats assertions stay deterministic)
    and never pollute the user's real cache, while the store codepath
    itself remains exercised end to end.  Tests that need an explicit
    store location still win via ``EstimatorConfig(cache=...)``.
    """
    from repro.solve.store import CACHE_ENV, LEGACY_CACHE_ENV, REMOTE_ENV

    saved = {name: os.environ.get(name)
             for name in (CACHE_ENV, LEGACY_CACHE_ENV, REMOTE_ENV)}
    os.environ[CACHE_ENV] = str(tmp_path_factory.mktemp("solvecache"))
    # A remote store inherited from the invoking shell would make
    # every store resolve() reach over the network; the suite must be
    # hermetic (individual remote tests opt back in explicitly).
    os.environ.pop(LEGACY_CACHE_ENV, None)
    os.environ.pop(REMOTE_ENV, None)
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


@pytest.fixture(scope="session")
def paper_geometry() -> CacheGeometry:
    """The paper's 1 KB, 4-way, 16 B-line configuration."""
    return CacheGeometry.from_size(1024, 4, 16)


@pytest.fixture(scope="session")
def small_geometry() -> CacheGeometry:
    """A 4-set, 2-way cache: small enough to reason about by hand."""
    return CacheGeometry(sets=4, ways=2, block_bytes=16)


@pytest.fixture(scope="session")
def timing() -> TimingModel:
    return TimingModel()


@pytest.fixture(scope="session")
def loop_program():
    """One loop with a branch: the workhorse small program."""
    program = Program([Function("main", [
        Compute(6),
        Loop(10, [Compute(4), If([Compute(3)], [Compute(2)])]),
        Compute(2),
    ])], name="loop_program")
    return compile_program(program)


@pytest.fixture(scope="session")
def call_program():
    """Nested loops across a function call (tests virtual inlining)."""
    program = Program([
        Function("main", [
            Compute(4),
            Loop(6, [Compute(3), Call("helper"), Compute(2)]),
        ]),
        Function("helper", [Loop(4, [Compute(5)])]),
    ], name="call_program")
    return compile_program(program)


@pytest.fixture(scope="session")
def straight_line_program():
    """No loops at all: every fetch happens at most once."""
    program = Program([Function("main", [Compute(40)])],
                      name="straight_line")
    return compile_program(program)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(20160325)
