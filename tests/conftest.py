"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheGeometry
from repro.ipet import TimingModel
from repro.minic import (Call, Compute, Function, If, Loop, Program,
                         compile_program)


@pytest.fixture(scope="session")
def paper_geometry() -> CacheGeometry:
    """The paper's 1 KB, 4-way, 16 B-line configuration."""
    return CacheGeometry.from_size(1024, 4, 16)


@pytest.fixture(scope="session")
def small_geometry() -> CacheGeometry:
    """A 4-set, 2-way cache: small enough to reason about by hand."""
    return CacheGeometry(sets=4, ways=2, block_bytes=16)


@pytest.fixture(scope="session")
def timing() -> TimingModel:
    return TimingModel()


@pytest.fixture(scope="session")
def loop_program():
    """One loop with a branch: the workhorse small program."""
    program = Program([Function("main", [
        Compute(6),
        Loop(10, [Compute(4), If([Compute(3)], [Compute(2)])]),
        Compute(2),
    ])], name="loop_program")
    return compile_program(program)


@pytest.fixture(scope="session")
def call_program():
    """Nested loops across a function call (tests virtual inlining)."""
    program = Program([
        Function("main", [
            Compute(4),
            Loop(6, [Compute(3), Call("helper"), Compute(2)]),
        ]),
        Function("helper", [Loop(4, [Compute(5)])]),
    ], name="call_program")
    return compile_program(program)


@pytest.fixture(scope="session")
def straight_line_program():
    """No loops at all: every fetch happens at most once."""
    program = Program([Function("main", [Compute(40)])],
                      name="straight_line")
    return compile_program(program)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(20160325)
