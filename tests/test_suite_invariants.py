"""Suite-wide invariants: every benchmark, every mechanism.

These parametrised checks sweep the complete evaluation matrix (25
benchmarks x 4 mechanisms) for the structural properties the paper's
method guarantees — complementary to the golden test, which pins the
numbers themselves.
"""

import pytest

from repro.experiments import run_benchmark
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.suite import EVALUATED_BENCHMARKS, load


@pytest.mark.parametrize("name", EVALUATED_BENCHMARKS)
class TestOrderingInvariants:
    def test_mechanism_dominance(self, name):
        result = run_benchmark(name)
        assert (result.wcet_fault_free <= result.pwcet("rw")
                <= result.pwcet("srb") <= result.pwcet("none"))

    def test_curve_wide_dominance(self, name):
        result = run_benchmark(name)
        curves = {mechanism: estimate.exceedance_curve()
                  for mechanism, estimate in result.estimates.items()}
        for probability in (1e-3, 1e-7, 1e-11, 1e-15):
            assert (curves["rw"].pwcet(probability)
                    <= curves["srb"].pwcet(probability)
                    <= curves["none"].pwcet(probability))

    def test_curves_start_at_fault_free(self, name):
        result = run_benchmark(name)
        for estimate in result.estimates.values():
            assert (estimate.exceedance_curve().values[0]
                    == result.wcet_fault_free)

    def test_penalty_mass_preserved(self, name):
        result = run_benchmark(name)
        for estimate in result.estimates.values():
            assert abs(estimate.penalty_misses.total_mass - 1.0) < 1e-9


@pytest.mark.parametrize("name", EVALUATED_BENCHMARKS)
class TestFMMInvariants:
    def test_rw_columns_match_none(self, name):
        """RW changes the probability law, not the per-column FMM."""
        result = run_benchmark(name)
        fmm_none = result.estimates["none"].fmm
        fmm_rw = result.estimates["rw"].fmm
        for set_index in range(fmm_rw.geometry.sets):
            for fault_count in range(fmm_rw.max_fault_count + 1):
                assert (fmm_rw.misses(set_index, fault_count)
                        == fmm_none.misses(set_index, fault_count))

    def test_srb_improves_only_last_column(self, name):
        result = run_benchmark(name)
        fmm_none = result.estimates["none"].fmm
        fmm_srb = result.estimates["srb"].fmm
        ways = fmm_none.geometry.ways
        for set_index in range(fmm_none.geometry.sets):
            for fault_count in range(ways):
                assert (fmm_srb.misses(set_index, fault_count)
                        == fmm_none.misses(set_index, fault_count))
            assert (fmm_srb.misses(set_index, ways)
                    <= fmm_none.misses(set_index, ways))


def test_refined_srb_dominates_srb_suite_wide():
    """srb+ <= srb at its certified levels, across the whole suite."""
    config = EstimatorConfig()
    probability = 1e-9
    for name in EVALUATED_BENCHMARKS:
        estimator = PWCETEstimator(load(name), config, name=name)
        refined = estimator.estimate("srb+").pwcet(probability)
        base = estimator.estimate("srb").pwcet(probability)
        rw = estimator.estimate("rw").pwcet(probability)
        assert rw <= refined <= base, name
