"""The refined SRB analysis (future work of paper §III-B2/§VI)."""

import random

import pytest

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry, FaultMap
from repro.cfg import PathWalker
from repro.errors import EstimationError
from repro.fmm import compute_fault_miss_map
from repro.ipet import TimingModel
from repro.minic import Compute, Function, Loop, Program, compile_program
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.reliability import SharedReliableBuffer, mechanism_by_name
from repro.reliability.refined_srb import (RefinedSharedReliableBuffer,
                                           excluded_probability,
                                           refined_srb_always_hit_references)
from repro.sim import TraceExecutor

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


@pytest.fixture(scope="module")
def single_block_loop():
    """A loop whose body keeps exactly one line per set alive."""
    program = Program([Function("main", [Loop(20, [Compute(30)])])],
                      name="single_block_loop")
    return compile_program(program)


class TestRegistry:
    def test_lookup(self):
        mechanism = mechanism_by_name("srb+")
        assert isinstance(mechanism, RefinedSharedReliableBuffer)
        assert isinstance(mechanism, SharedReliableBuffer)

    def test_same_hardware_distribution(self):
        """srb+ changes the analysis, not the fault distribution."""
        from repro.faults import FaultProbabilityModel
        model = FaultProbabilityModel(geometry=GEOMETRY, pfail=1e-4)
        base = SharedReliableBuffer().fault_pmf(model)
        refined = RefinedSharedReliableBuffer().fault_pmf(model)
        assert base == refined


class TestExcludedProbability:
    def test_value_at_paper_parameters(self):
        from repro.faults import FaultProbabilityModel
        model = FaultProbabilityModel(geometry=GEOMETRY, pfail=1e-4)
        p_not_a = excluded_probability(model, 16)
        # ~ C(16,2) * pwf(4)^2 at these parameters.
        q = model.pwf(4)
        assert p_not_a == pytest.approx(120 * q * q, rel=0.01)

    def test_zero_when_no_faults(self):
        from repro.faults import FaultProbabilityModel
        model = FaultProbabilityModel(geometry=GEOMETRY, pfail=0.0)
        assert excluded_probability(model, 16) == 0.0


class TestPerSetMustAnalysis:
    def test_loop_block_protected_across_iterations(self,
                                                    single_block_loop):
        """Unlike the shared SRB, the private view keeps a loop's only
        line per set alive across iterations."""
        cfg = single_block_loop.cfg
        protected_any = False
        for set_index in range(GEOMETRY.sets):
            protected = refined_srb_always_hit_references(cfg, GEOMETRY,
                                                          set_index)
            from repro.reliability import srb_always_hit_references
            shared = srb_always_hit_references(cfg, GEOMETRY)
            shared_in_set = {
                key for key in shared
                for block in [cfg.block(key[0])]
                if GEOMETRY.set_of(block.instructions[key[1]].address)
                == set_index}
            assert shared_in_set <= protected
            if len(protected) > len(shared_in_set):
                protected_any = True
        assert protected_any

    def test_refined_superset_of_shared(self, call_program):
        from repro.reliability import srb_always_hit_references
        shared = srb_always_hit_references(call_program.cfg, GEOMETRY)
        refined_union = set()
        for set_index in range(GEOMETRY.sets):
            refined_union |= refined_srb_always_hit_references(
                call_program.cfg, GEOMETRY, set_index)
        assert shared <= refined_union


class TestFMM:
    def test_refined_column_at_most_base(self, loop_program):
        analysis = CacheAnalysis(loop_program.cfg, GEOMETRY)
        base = compute_fault_miss_map(analysis, SharedReliableBuffer())
        refined = compute_fault_miss_map(analysis,
                                         RefinedSharedReliableBuffer())
        for set_index in range(GEOMETRY.sets):
            for fault_count in range(GEOMETRY.ways + 1):
                assert (refined.misses(set_index, fault_count)
                        <= base.misses(set_index, fault_count))


class TestEstimator:
    def test_sandwiched_between_rw_and_srb(self):
        from repro.suite import load
        estimator = PWCETEstimator(load("ud"), EstimatorConfig())
        probability = 1e-9
        rw = estimator.estimate("rw").pwcet(probability)
        refined = estimator.estimate("srb+").pwcet(probability)
        srb = estimator.estimate("srb").pwcet(probability)
        assert rw <= refined <= srb

    def test_refuses_targets_below_correction(self, loop_program):
        estimator = PWCETEstimator(loop_program, EstimatorConfig())
        estimate = estimator.estimate("srb+")
        assert estimate.exceedance_correction > 0
        with pytest.raises(EstimationError, match="excluded mass"):
            estimate.pwcet(1e-15)
        assert estimate.pwcet(1e-9) > 0

    def test_curve_lifted_by_correction(self, loop_program):
        estimator = PWCETEstimator(loop_program, EstimatorConfig())
        refined_curve = estimator.estimate("srb+").exceedance_curve()
        correction = estimator.estimate("srb+").exceedance_correction
        # The curve never reports an exceedance below the correction.
        assert float(refined_curve.probabilities[-1]) >= correction


class TestSoundnessUnderEventA:
    def test_bound_holds_with_at_most_one_faulty_set(self,
                                                     single_block_loop):
        """Condition of the refinement: at most one set entirely
        faulty.  Simulated time must respect the refined bound."""
        timing = TimingModel()
        mechanism = RefinedSharedReliableBuffer()
        analysis = CacheAnalysis(single_block_loop.cfg, GEOMETRY)
        from repro.ipet import compute_wcet
        wcet_ff = compute_wcet(single_block_loop.cfg,
                               analysis.classification(), timing).cycles
        fmm = compute_fault_miss_map(analysis, mechanism)
        walker = PathWalker(single_block_loop.cfg, analysis.forest)
        rng = random.Random(23)
        for trial in range(30):
            # One fully faulty set + random partial faults elsewhere.
            full_set = rng.randrange(GEOMETRY.sets)
            frames = [(full_set, way) for way in range(GEOMETRY.ways)]
            for set_index in range(GEOMETRY.sets):
                if set_index == full_set:
                    continue
                for way in range(GEOMETRY.ways):
                    if rng.random() < 0.3 and way > 0:
                        frames.append((set_index, way))
            fault_map = FaultMap(GEOMETRY, frames)
            # Keep event A: no second fully faulty set by construction
            # (way 0 untouched outside full_set).
            walk = walker.walk(rng, maximize_iterations=(trial % 2 == 0))
            outcome = TraceExecutor(GEOMETRY, timing, mechanism,
                                    fault_map).run(walk.addresses)
            bound = wcet_ff + timing.memory_cycles * sum(
                fmm.misses(s, fault_map.faulty_ways_in_set(s))
                for s in range(GEOMETRY.sets))
            assert outcome.cycles <= bound
