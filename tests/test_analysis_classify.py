"""Classification facade: priorities, degraded tables, persistence."""

import pytest

from repro.analysis import CacheAnalysis, Chmc, Classification, GLOBAL_SCOPE
from repro.analysis.persistence import PersistenceAnalysis
from repro.cache import CacheGeometry
from repro.errors import AnalysisError
from repro.minic import Compute, Function, Loop, Program, compile_program

GEOMETRY = CacheGeometry(sets=16, ways=4, block_bytes=16)


@pytest.fixture(scope="module")
def tiny_loop():
    """A loop whose footprint fits one way of every set."""
    program = Program([Function("main", [Loop(8, [Compute(10)])])],
                      name="tiny_loop")
    return compile_program(program)


class TestClassificationBasics:
    def test_straight_line_spatial_pattern(self, straight_line_program):
        """In straight-line code the first fetch of each line misses
        and the following fetches of the same line always hit."""
        analysis = CacheAnalysis(straight_line_program.cfg, GEOMETRY)
        table = analysis.classification()
        for reference, classification in table.items():
            line_offset = reference.address % GEOMETRY.block_bytes
            if line_offset == 0:
                assert classification.chmc in (Chmc.ALWAYS_MISS,
                                               Chmc.FIRST_MISS)
            else:
                assert classification.chmc is Chmc.ALWAYS_HIT

    def test_tiny_loop_is_fully_persistent_or_hit(self, tiny_loop):
        analysis = CacheAnalysis(tiny_loop.cfg, GEOMETRY)
        table = analysis.classification()
        histogram = table.count_by_chmc()
        assert histogram.get("not-classified", 0) == 0
        assert histogram.get("always-miss", 0) == 0

    def test_assoc_zero_all_miss(self, tiny_loop):
        analysis = CacheAnalysis(tiny_loop.cfg, GEOMETRY)
        table = analysis.classification(0)
        for _reference, classification in table.items():
            assert classification.chmc is Chmc.ALWAYS_MISS

    def test_assoc_out_of_range(self, tiny_loop):
        analysis = CacheAnalysis(tiny_loop.cfg, GEOMETRY)
        with pytest.raises(AnalysisError):
            analysis.classification(5)
        with pytest.raises(AnalysisError):
            analysis.classification(-1)

    def test_tables_memoised(self, tiny_loop):
        analysis = CacheAnalysis(tiny_loop.cfg, GEOMETRY)
        assert analysis.classification(2) is analysis.classification(2)

    def test_degradation_is_monotone(self, loop_program):
        """Lowering associativity never improves a classification."""
        rank = {Chmc.ALWAYS_HIT: 0, Chmc.FIRST_MISS: 1,
                Chmc.NOT_CLASSIFIED: 2, Chmc.ALWAYS_MISS: 2}
        analysis = CacheAnalysis(loop_program.cfg, GEOMETRY)
        tables = [analysis.classification(assoc)
                  for assoc in range(GEOMETRY.ways + 1)]
        for assoc in range(GEOMETRY.ways):
            lower, higher = tables[assoc], tables[assoc + 1]
            for block_id in loop_program.cfg.block_ids():
                for weak, strong in zip(lower.of_block(block_id),
                                        higher.of_block(block_id)):
                    assert rank[weak.chmc] >= rank[strong.chmc]


class TestClassificationDataclass:
    def test_first_miss_requires_scope(self):
        with pytest.raises(ValueError):
            Classification(chmc=Chmc.FIRST_MISS)
        with pytest.raises(ValueError):
            Classification(chmc=Chmc.ALWAYS_HIT, scope=3)

    def test_counts_full_misses(self):
        assert Classification(Chmc.ALWAYS_MISS).counts_full_misses
        assert Classification(Chmc.NOT_CLASSIFIED).counts_full_misses
        assert not Classification(Chmc.ALWAYS_HIT).counts_full_misses
        assert not Classification(Chmc.FIRST_MISS,
                                  scope=GLOBAL_SCOPE).counts_full_misses

    def test_str(self):
        assert "global" in str(Classification(Chmc.FIRST_MISS,
                                              scope=GLOBAL_SCOPE))
        assert str(Classification(Chmc.ALWAYS_HIT)) == "always-hit"


class TestPersistence:
    def test_global_scope_for_small_program(self, tiny_loop):
        analysis = PersistenceAnalysis(tiny_loop.cfg, GEOMETRY)
        for set_index in range(GEOMETRY.sets):
            assert analysis.global_conflicts(set_index) <= GEOMETRY.ways

    def test_scope_outermost_first(self):
        """A block accessed in a nested loop that fits everywhere gets
        the outermost (cheapest) persistence scope."""
        program = Program([Function("main", [
            Loop(4, [Compute(2), Loop(3, [Compute(3)])]),
        ])], name="nest")
        compiled = compile_program(program)
        analysis = CacheAnalysis(compiled.cfg, GEOMETRY)
        table = analysis.classification()
        scopes = {classification.scope
                  for _reference, classification in table.items()
                  if classification.chmc is Chmc.FIRST_MISS}
        # Program fits in the cache: everything global-persistent.
        assert scopes <= {GLOBAL_SCOPE}

    def test_conflict_counts_grow_with_scope(self):
        program = Program([Function("main", [
            Compute(40),
            Loop(4, [Compute(8)]),
        ])], name="grow")
        compiled = compile_program(program)
        analysis = PersistenceAnalysis(compiled.cfg, GEOMETRY)
        forest = analysis.forest
        [header] = forest.headers()
        for set_index in range(GEOMETRY.sets):
            assert (analysis.loop_conflicts(header, set_index)
                    <= analysis.global_conflicts(set_index))

    def test_zero_assoc_no_scope(self, tiny_loop):
        analysis = PersistenceAnalysis(tiny_loop.cfg, GEOMETRY)
        from repro.analysis.references import all_references
        references = all_references(tiny_loop.cfg, GEOMETRY)
        any_reference = next(refs[0] for refs in references.values()
                             if refs)
        assert analysis.scope_of(any_reference, 0) is None
