"""The deterministic chaos harness: plan grammar, ordinals, hooks.

A malformed ``REPRO_FAULT_PLAN`` must fail loudly (a typo'd chaos CI
job would otherwise green-light an untested recovery path), ordinal
counters must be exact — ``#1`` fires once, locally or globally via
``REPRO_FAULT_STATE`` — and each hook must raise the documented fault
class so the resilience layer classifies it correctly.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError, SolverError
from repro.testing import faultinject
from repro.testing.faultinject import (PLAN_ENV, STATE_ENV, fire,
                                       parse_plan, solve_hook,
                                       worker_hook)


@pytest.fixture(autouse=True)
def _clean_harness(monkeypatch):
    """Each test starts with no plan, no state dir, zeroed counters."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    faultinject._PLAN_MEMO = None
    faultinject._LOCAL_COUNTS.clear()
    yield
    faultinject._PLAN_MEMO = None
    faultinject._LOCAL_COUNTS.clear()


class TestGrammar:
    def test_full_example_plan_parses(self):
        clauses = parse_plan("worker:kill@cell_stage#2;"
                             "store:truncate_tail@cells-v2;"
                             "solve:delay=0.5@ipet:prime")
        assert [(c.site, c.action, c.target, c.ordinal, c.value)
                for c in clauses] == [
            ("worker", "kill", "cell_stage", 2, None),
            ("store", "truncate_tail", "cells-v2", None, None),
            ("solve", "delay", "ipet:prime", None, 0.5)]
        # Clause indices key the ordinal counters.
        assert [c.index for c in clauses] == [0, 1, 2]

    def test_empty_plan_is_no_clauses(self):
        assert parse_plan("") == ()
        assert parse_plan(" ; ; ") == ()

    @pytest.mark.parametrize("plan", [
        "nonsense",
        "worker@kill",               # no action
        "ghost:kill@stage",          # unknown site
        "worker:explode@stage",      # unknown action for the site
        "store:kill@v1",             # action of another site
        "worker:delay@stage",        # delay without =<seconds>
        "worker:delay=x@stage",      # unparsable value
        "worker:kill@stage#0",       # ordinals are 1-based
        "worker:kill",               # no target
    ])
    def test_malformed_plans_fail_loudly(self, plan):
        with pytest.raises(ConfigurationError):
            parse_plan(plan)

    def test_active_plan_tracks_env_changes(self, monkeypatch):
        assert faultinject.active_plan() == ()
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc")
        (clause,) = faultinject.active_plan()
        assert (clause.site, clause.action) == ("solve", "fail")
        monkeypatch.setenv(PLAN_ENV, "worker:raise@stage")
        (clause,) = faultinject.active_plan()
        assert clause.site == "worker"


class TestOrdinals:
    def test_no_ordinal_fires_every_time(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc")
        assert fire("solve", "ipet:crc") is not None
        assert fire("solve", "ipet:crc") is not None

    def test_ordinal_arms_exactly_the_nth_match(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc#2")
        assert fire("solve", "ipet:crc") is None
        assert fire("solve", "ipet:crc") is not None
        assert fire("solve", "ipet:crc") is None

    def test_wildcard_target_matches_anything(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@*")
        assert fire("solve", "whatever") is not None
        assert fire("solve", "something-else") is not None

    def test_non_matching_calls_do_not_advance(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc#1")
        assert fire("solve", "ipet:prime") is None  # other target
        assert fire("worker", "ipet:crc") is None   # other site
        assert fire("solve", "ipet:crc") is not None

    def test_actions_filter_guards_the_counter(self, monkeypatch):
        """An append hook must not consume a read-side clause's
        ordinal: the two store hooks share site/target but declare
        disjoint supported actions."""
        monkeypatch.setenv(PLAN_ENV, "store:read_error@v1#1")
        assert fire("store", "v1", actions=("truncate_tail",)) is None
        # The read hook still sees invocation #1.
        assert fire("store", "v1", actions=("read_error",)) is not None

    def test_state_dir_counts_across_simulated_processes(
            self, monkeypatch, tmp_path):
        """With ``REPRO_FAULT_STATE`` the counter lives in a file, so
        clearing the per-process dict (what a fork gives a worker)
        does not reset it."""
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc#3")
        monkeypatch.setenv(STATE_ENV, str(tmp_path))
        assert fire("solve", "ipet:crc") is None
        faultinject._LOCAL_COUNTS.clear()  # a forked child's view
        assert fire("solve", "ipet:crc") is None
        faultinject._LOCAL_COUNTS.clear()
        assert fire("solve", "ipet:crc") is not None
        # One byte per invocation: the count is the file size.
        assert os.path.getsize(tmp_path / "clause-0.count") == 3


class TestHooks:
    def test_worker_raise_is_a_transient_error(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "worker:raise@cell_stage")
        with pytest.raises(ConnectionError, match="injected"):
            worker_hook("cell_stage")
        worker_hook("classify_stage")  # other stages untouched

    def test_solve_fail_is_a_permanent_error(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "solve:fail@ipet:crc")
        with pytest.raises(SolverError, match="injected"):
            solve_hook("ipet:crc")
        solve_hook("ipet:prime")

    def test_delay_sleeps_for_the_value(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faultinject.time, "sleep", naps.append)
        monkeypatch.setenv(PLAN_ENV, "solve:delay=0.25@ipet:crc")
        solve_hook("ipet:crc")
        assert naps == [0.25]

    def test_unarmed_hooks_are_free_of_side_effects(self):
        worker_hook("cell_stage")
        solve_hook("ipet:crc")
        faultinject.net_client_hook("v1")
        assert faultinject.net_server_hook("v1") is None


class TestNetSite:
    def test_all_four_net_actions_parse(self):
        clauses = parse_plan("net:drop@v1#1;net:delay=0.5@*;"
                             "net:short_read@classify-v1;"
                             "net:corrupt@cells-v2#3")
        assert [(c.action, c.target, c.ordinal, c.value)
                for c in clauses] == [
            ("drop", "v1", 1, None), ("delay", "*", None, 0.5),
            ("short_read", "classify-v1", None, None),
            ("corrupt", "cells-v2", 3, None)]

    def test_drop_raises_a_transient_connection_error(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "net:drop@v1")
        with pytest.raises(ConnectionError, match="injected network"):
            faultinject.net_client_hook("v1")
        faultinject.net_client_hook("classify-v1")  # other dirs fine

    def test_delay_sleeps_client_side(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faultinject.time, "sleep", naps.append)
        monkeypatch.setenv(PLAN_ENV, "net:delay=0.125@v1")
        faultinject.net_client_hook("v1")
        assert naps == [0.125]

    def test_server_actions_do_not_fire_client_side(self, monkeypatch):
        """One clause, one invocation stream: a server-side action's
        ordinal must never be consumed by the client hook (and vice
        versa), or a chaos plan would fire on the wrong wire end."""
        monkeypatch.setenv(PLAN_ENV, "net:corrupt@v1#1")
        faultinject.net_client_hook("v1")  # no-op, counter untouched
        clause = faultinject.net_server_hook("v1")
        assert clause is not None and clause.action == "corrupt"

    def test_client_actions_do_not_fire_server_side(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "net:drop@v1#1")
        assert faultinject.net_server_hook("v1") is None
        with pytest.raises(ConnectionError):
            faultinject.net_client_hook("v1")
