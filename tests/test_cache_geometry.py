"""Cache geometry: address decomposition and configuration checks."""

import pytest
from hypothesis import given, strategies as st

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError


class TestConstruction:
    def test_paper_configuration(self):
        geometry = CacheGeometry.from_size(1024, 4, 16)
        assert geometry.sets == 16
        assert geometry.ways == 4
        assert geometry.block_bytes == 16
        assert geometry.total_bytes == 1024
        assert geometry.block_bits == 128  # the paper's K

    def test_from_size_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry.from_size(1024, 3, 16)

    @pytest.mark.parametrize("sets,ways,block", [
        (0, 4, 16), (3, 4, 16), (16, 0, 16), (16, 4, 0), (16, 4, 12),
    ])
    def test_rejects_bad_parameters(self, sets, ways, block):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sets=sets, ways=ways, block_bytes=block)

    def test_str_mentions_sizes(self):
        text = str(CacheGeometry.from_size(1024, 4, 16))
        assert "1024B" in text and "16 sets" in text


class TestAddressMath:
    def test_known_decomposition(self):
        geometry = CacheGeometry(sets=16, ways=4, block_bytes=16)
        address = 0x0040_0134
        assert geometry.block_of(address) == address // 16
        assert geometry.set_of(address) == (address // 16) % 16
        assert geometry.tag_of(address) == address // 16 // 16

    def test_same_block_same_set(self):
        geometry = CacheGeometry(sets=16, ways=4, block_bytes=16)
        base = 0x400120
        for offset in range(16):
            assert geometry.block_of(base + offset) == geometry.block_of(base)

    @given(st.integers(0, 2 ** 32 - 1))
    def test_block_base_roundtrip(self, address):
        geometry = CacheGeometry(sets=16, ways=4, block_bytes=16)
        block = geometry.block_of(address)
        base = geometry.block_base_address(block)
        assert base <= address < base + geometry.block_bytes

    @given(st.integers(0, 2 ** 32 - 1))
    def test_set_consistency(self, address):
        geometry = CacheGeometry(sets=8, ways=2, block_bytes=32)
        assert (geometry.set_of(address)
                == geometry.set_of_block(geometry.block_of(address)))

    @given(st.integers(0, 2 ** 32 - 1))
    def test_set_in_range(self, address):
        geometry = CacheGeometry(sets=8, ways=2, block_bytes=32)
        assert 0 <= geometry.set_of(address) < geometry.sets

    def test_block_bits_matches_bytes(self):
        for block_bytes in (16, 32, 64):
            geometry = CacheGeometry(sets=4, ways=1,
                                     block_bytes=block_bytes)
            assert geometry.block_bits == block_bytes * 8
