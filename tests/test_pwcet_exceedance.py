"""Exceedance curves: step-function semantics and construction."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.pwcet import DiscreteDistribution, ExceedanceCurve


def curve() -> ExceedanceCurve:
    return ExceedanceCurve(values=np.array([100, 200, 500]),
                           probabilities=np.array([0.5, 1e-3, 0.0]))


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(DistributionError):
            ExceedanceCurve(values=np.array([1, 2]),
                            probabilities=np.array([0.5]))

    def test_values_must_increase(self):
        with pytest.raises(DistributionError):
            ExceedanceCurve(values=np.array([2, 1]),
                            probabilities=np.array([0.5, 0.1]))

    def test_probabilities_must_decrease(self):
        with pytest.raises(DistributionError):
            ExceedanceCurve(values=np.array([1, 2]),
                            probabilities=np.array([0.1, 0.5]))

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            ExceedanceCurve(values=np.array([]),
                            probabilities=np.array([]))


class TestQueries:
    def test_pwcet_picks_smallest_adequate(self):
        assert curve().pwcet(0.6) == 100
        assert curve().pwcet(0.5) == 100
        assert curve().pwcet(0.4) == 200
        assert curve().pwcet(1e-3) == 200
        assert curve().pwcet(1e-9) == 500

    def test_pwcet_bad_probability(self):
        with pytest.raises(DistributionError):
            curve().pwcet(0.0)

    def test_exceedance_at(self):
        c = curve()
        assert c.exceedance_at(50) == 1.0
        assert c.exceedance_at(100) == 0.5
        assert c.exceedance_at(150) == 0.5
        assert c.exceedance_at(200) == 1e-3
        assert c.exceedance_at(10_000) == 0.0

    def test_rows(self):
        rows = curve().rows()
        assert rows[0] == (100, 0.5)
        assert len(rows) == 3


class TestFromPenaltyDistribution:
    def test_lifting_to_cycles(self):
        penalty = DiscreteDistribution.from_points({0: 0.9, 3: 0.1})
        c = ExceedanceCurve.from_penalty_distribution(
            penalty, wcet_fault_free=1000, memory_cycles=100)
        assert c.values[0] == 1000
        assert c.values[-1] == 1300
        assert c.exceedance_at(1000) == pytest.approx(0.1)
        assert c.exceedance_at(1300) == 0.0

    def test_curve_starts_at_fault_free(self):
        penalty = DiscreteDistribution.from_points({2: 1.0})
        c = ExceedanceCurve.from_penalty_distribution(
            penalty, wcet_fault_free=500, memory_cycles=100)
        assert c.values[0] == 500
        assert c.exceedance_at(500) == pytest.approx(1.0)

    def test_matches_distribution_quantile(self):
        penalty = DiscreteDistribution.from_points(
            {0: 0.99, 5: 0.00999, 50: 1e-5 - 1e-9, 500: 1e-9})
        c = ExceedanceCurve.from_penalty_distribution(
            penalty, wcet_fault_free=1000, memory_cycles=100)
        for probability in (0.5, 1e-3, 1e-6, 1e-12):
            expected = 1000 + 100 * penalty.quantile_exceedance(probability)
            assert c.pwcet(probability) == expected
