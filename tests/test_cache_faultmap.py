"""Fault maps: construction, queries, sampling."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.cache import CacheGeometry, FaultMap
from repro.errors import ConfigurationError

GEOMETRY = CacheGeometry(sets=4, ways=2, block_bytes=16)


class TestConstruction:
    def test_fault_free_is_empty(self):
        assert len(FaultMap.fault_free(GEOMETRY)) == 0

    def test_out_of_range_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMap(GEOMETRY, [(4, 0)])
        with pytest.raises(ConfigurationError):
            FaultMap(GEOMETRY, [(0, 2)])

    def test_duplicate_frames_collapse(self):
        fault_map = FaultMap(GEOMETRY, [(1, 0), (1, 0)])
        assert len(fault_map) == 1

    def test_whole_set_faulty(self):
        fault_map = FaultMap.whole_set_faulty(GEOMETRY, 3)
        assert fault_map.faulty_ways_in_set(3) == GEOMETRY.ways
        assert fault_map.working_ways_in_set(3) == 0
        assert fault_map.faulty_ways_in_set(0) == 0

    def test_with_faults_extends(self):
        base = FaultMap(GEOMETRY, [(0, 0)])
        extended = base.with_faults([(1, 1)])
        assert extended.is_faulty(0, 0)
        assert extended.is_faulty(1, 1)
        assert not base.is_faulty(1, 1)  # original untouched

    def test_fault_profile(self):
        fault_map = FaultMap(GEOMETRY, [(0, 0), (0, 1), (2, 1)])
        assert fault_map.fault_profile() == (2, 0, 1, 0)

    def test_equality_and_hash(self):
        a = FaultMap(GEOMETRY, [(0, 1)])
        b = FaultMap(GEOMETRY, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultMap(GEOMETRY, [(1, 1)])


class TestSampling:
    def test_zero_probability_is_fault_free(self):
        rng = random.Random(1)
        fault_map = FaultMap.sample(GEOMETRY, 0.0, rng)
        assert len(fault_map) == 0

    def test_probability_one_disables_everything(self):
        rng = random.Random(1)
        fault_map = FaultMap.sample(GEOMETRY, 1.0, rng)
        assert len(fault_map) == GEOMETRY.sets * GEOMETRY.ways

    def test_reliable_ways_never_fail(self):
        rng = random.Random(7)
        for _ in range(20):
            fault_map = FaultMap.sample(GEOMETRY, 0.9, rng,
                                        reliable_ways=1)
            for set_index in range(GEOMETRY.sets):
                assert not fault_map.is_faulty(set_index, 0)
                assert fault_map.working_ways_in_set(set_index) >= 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMap.sample(GEOMETRY, 1.5, random.Random(0))

    def test_invalid_reliable_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMap.sample(GEOMETRY, 0.5, random.Random(0),
                            reliable_ways=3)

    @given(st.integers(0, 2 ** 31))
    def test_sampling_is_deterministic_per_seed(self, seed):
        first = FaultMap.sample(GEOMETRY, 0.3, random.Random(seed))
        second = FaultMap.sample(GEOMETRY, 0.3, random.Random(seed))
        assert first == second

    def test_statistical_rate(self):
        """With pbf = 0.25 the expected faulty count is ways*sets/4."""
        rng = random.Random(42)
        total = sum(
            len(FaultMap.sample(GEOMETRY, 0.25, rng)) for _ in range(400))
        expected = 400 * GEOMETRY.sets * GEOMETRY.ways * 0.25
        assert abs(total - expected) < 0.15 * expected
