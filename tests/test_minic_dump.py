"""The objdump-style listing and set-pressure report."""

import pytest

from repro.cache import CacheGeometry
from repro.minic.dump import dump_program, set_pressure_report

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


class TestDumpProgram:
    def test_lists_every_instruction(self, loop_program):
        text = dump_program(loop_program)
        assert text.count(":  ") >= loop_program.functions[
            "main"].cfg.instruction_count()

    def test_function_headers_present(self, call_program):
        text = dump_program(call_program)
        assert "<main>:" in text
        assert "<helper>:" in text

    def test_loop_bound_annotated(self, loop_program):
        text = dump_program(loop_program)
        assert "loop header, bound 11" in text

    def test_geometry_annotations(self, loop_program):
        text = dump_program(loop_program, GEOMETRY)
        assert "# line" in text and "set" in text

    def test_addresses_formatted_hex(self, straight_line_program):
        text = dump_program(straight_line_program)
        base = straight_line_program.layout.images[0].base_address
        assert f"{base:08x}" in text

    def test_call_targets_shown(self, call_program):
        text = dump_program(call_program)
        assert "jal" in text and "<helper>" in text


class TestSetPressure:
    def test_counts_match_distinct_blocks(self, loop_program):
        text = set_pressure_report(loop_program, GEOMETRY)
        total = sum(
            int(line.split("blocks")[0].split(":")[1])
            for line in text.splitlines() if "blocks" in line)
        assert total == len({
            GEOMETRY.block_of(address)
            for address in loop_program.cfg.distinct_addresses()})

    def test_every_set_listed(self, loop_program):
        text = set_pressure_report(loop_program, GEOMETRY)
        assert text.count("set ") >= GEOMETRY.sets

    def test_big_benchmark_pressure_exceeds_ways(self):
        """nsichneu's conflict profile is what makes it category 1."""
        from repro.suite import load
        compiled = load("nsichneu")
        text = set_pressure_report(compiled, GEOMETRY)
        counts = [int(line.split("blocks")[0].split(":")[1])
                  for line in text.splitlines() if "blocks" in line]
        assert min(counts) > GEOMETRY.ways
