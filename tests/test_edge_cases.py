"""Edge cases and defensive branches across the library."""

import numpy as np
import pytest

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry
from repro.errors import (CFGStructureError, ConfigurationError,
                          DistributionError, SimulationError)
from repro.minic import (Compute, Function, If, Loop, Program,
                         compile_program)
from repro.pwcet import (DiscreteDistribution, EstimatorConfig,
                         PWCETEstimator)


class TestDegeneratePrograms:
    def test_zero_iteration_loop(self):
        """A loop that may run zero times still has a bounded WCET."""
        program = Program([Function("main",
                                    [Loop(0, [Compute(5)]), Compute(2)])])
        compiled = compile_program(program)
        estimator = PWCETEstimator(compiled, EstimatorConfig())
        assert estimator.fault_free_wcet() > 0
        # The worst case can still execute the header test once.
        estimate = estimator.estimate("none")
        assert estimate.pwcet() >= estimator.fault_free_wcet()

    def test_single_statement_program(self):
        program = Program([Function("main", [Compute(1)])])
        compiled = compile_program(program)
        estimator = PWCETEstimator(compiled, EstimatorConfig())
        # 10 instructions (prologue 4 + 1 + epilogue 5), 3 lines.
        assert estimator.fault_free_wcet() == 10 + 3 * 100

    def test_deeply_nested_ifs(self):
        statement = Compute(2)
        body = [statement]
        for _ in range(12):
            body = [If(body, [Compute(1)])]
        program = Program([Function("main", body)])
        compiled = compile_program(program)
        compiled.cfg.validate()
        estimator = PWCETEstimator(compiled, EstimatorConfig())
        assert estimator.estimate("rw").pwcet() >= \
            estimator.fault_free_wcet()

    def test_loop_nest_depth_five(self):
        body = [Compute(3)]
        for bound in (2, 2, 2, 2, 2):
            body = [Loop(bound, body)]
        program = Program([Function("main", body)])
        compiled = compile_program(program)
        from repro.cfg import find_loops
        forest = find_loops(compiled.cfg)
        assert max(loop.depth for loop in forest.loops.values()) == 5


class TestTinyCaches:
    def test_one_set_one_way(self):
        geometry = CacheGeometry(sets=1, ways=1, block_bytes=16)
        program = Program([Function("main", [Loop(4, [Compute(6)])])])
        compiled = compile_program(program)
        analysis = CacheAnalysis(compiled.cfg, geometry)
        table = analysis.classification()
        histogram = table.count_by_chmc()
        assert sum(histogram.values()) == compiled.cfg.instruction_count()

    def test_single_set_estimator(self):
        geometry = CacheGeometry(sets=1, ways=4, block_bytes=16)
        config = EstimatorConfig(geometry=geometry)
        program = Program([Function("main", [Loop(4, [Compute(6)])])])
        estimator = PWCETEstimator(compile_program(program), config)
        none = estimator.estimate("none").pwcet()
        rw = estimator.estimate("rw").pwcet()
        assert estimator.fault_free_wcet() <= rw <= none


class TestDistributionEdges:
    def test_point_mass_quantiles(self):
        d = DiscreteDistribution.point_mass(5)
        assert d.quantile_exceedance(1e-15) == 5
        assert d.quantile_exceedance(0.999) == 5

    def test_all_mass_at_zero(self):
        d = DiscreteDistribution.point_mass(0)
        assert d.quantile_exceedance(1e-15) == 0
        assert d.ccdf()[0] == 0.0

    def test_convolve_all_empty(self):
        combined = DiscreteDistribution.convolve_all([])
        assert combined.probability_of(0) == 1.0

    def test_pmf_not_mutable_through_property(self):
        d = DiscreteDistribution.point_mass(1)
        pmf = d.pmf
        with_copy = np.array(pmf)
        assert np.array_equal(pmf, with_copy)

    def test_tiny_probability_points_survive(self):
        d = DiscreteDistribution.from_points({0: 1.0 - 1e-300, 7: 1e-300},
                                             normalized=False)
        assert d.probability_of(7) == 1e-300


class TestExtremePfail:
    def test_pfail_one_everything_faulty(self):
        config = EstimatorConfig(pfail=1.0)
        program = Program([Function("main", [Loop(4, [Compute(6)])])])
        estimator = PWCETEstimator(compile_program(program), config)
        model = estimator.fault_model
        assert model.pbf == 1.0
        # With certainty every set is fully faulty: the no-protection
        # pWCET equals the deterministic all-faulty bound at any p.
        estimate = estimator.estimate("none")
        assert (estimate.pwcet(0.5) == estimate.pwcet(1e-12))

    def test_rw_immune_to_pfail_one(self):
        """With a hardened way, even pbf = 1 keeps one way per set."""
        config = EstimatorConfig(pfail=1.0)
        program = Program([Function("main", [Compute(30)])])
        estimator = PWCETEstimator(compile_program(program), config)
        # Straight-line code only needs spatial locality: RW keeps it.
        assert (estimator.estimate("rw").pwcet(0.5)
                == estimator.fault_free_wcet())


class TestGeometryEdges:
    def test_ways_exceeding_blocks_is_fine(self):
        geometry = CacheGeometry(sets=2, ways=16, block_bytes=16)
        assert geometry.total_bytes == 512

    def test_large_block_size(self):
        geometry = CacheGeometry(sets=4, ways=2, block_bytes=128)
        assert geometry.block_bits == 1024
        assert geometry.offset_bits == 7
