"""The fault probability model: equations (1), (2) and (3)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError
from repro.faults import FaultProbabilityModel

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)

pfails = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def model(pfail: float) -> FaultProbabilityModel:
    return FaultProbabilityModel(geometry=GEOMETRY, pfail=pfail)


class TestEquation1:
    def test_paper_value(self):
        """pbf for pfail=1e-4 and K=128 bits (the paper's setup)."""
        pbf = model(1e-4).pbf
        assert pbf == pytest.approx(1 - (1 - 1e-4) ** 128, rel=1e-12)
        assert 0.012 < pbf < 0.013

    def test_extremes(self):
        assert model(0.0).pbf == 0.0
        assert model(1.0).pbf == 1.0

    def test_precision_at_tiny_pfail(self):
        """The roadmap's 45nm value (6.1e-13) must not underflow."""
        pbf = model(6.1e-13).pbf
        assert pbf == pytest.approx(128 * 6.1e-13, rel=1e-3)

    @given(pfails)
    def test_pbf_is_probability(self, pfail):
        assert 0.0 <= model(pfail).pbf <= 1.0

    def test_pbf_monotone_in_pfail(self):
        values = [model(p).pbf for p in (1e-6, 1e-5, 1e-4, 1e-3)]
        assert values == sorted(values)

    def test_invalid_pfail_rejected(self):
        with pytest.raises(ConfigurationError):
            model(1.5)
        with pytest.raises(ConfigurationError):
            model(-0.1)


class TestEquation2:
    @given(pfails)
    def test_pwf_sums_to_one(self, pfail):
        total = sum(model(pfail).pwf(w) for w in range(GEOMETRY.ways + 1))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_out_of_range_is_zero(self):
        assert model(1e-4).pwf(-1) == 0.0
        assert model(1e-4).pwf(5) == 0.0

    def test_known_binomial_values(self):
        m = model(1e-4)
        pbf = m.pbf
        assert m.pwf(0) == pytest.approx((1 - pbf) ** 4)
        assert m.pwf(4) == pytest.approx(pbf ** 4)
        assert m.pwf(1) == pytest.approx(4 * pbf * (1 - pbf) ** 3)

    def test_all_faulty_probability_helper(self):
        m = model(1e-4)
        assert m.probability_set_all_faulty() == pytest.approx(m.pwf(4))

    def test_expected_faulty_ways(self):
        m = model(1e-4)
        expectation = sum(w * m.pwf(w) for w in range(5))
        assert m.expected_faulty_ways_per_set() == pytest.approx(
            expectation, rel=1e-9)


class TestEquation3:
    @given(pfails)
    def test_rw_pwf_sums_to_one(self, pfail):
        total = sum(model(pfail).pwf_reliable_way(w)
                    for w in range(GEOMETRY.ways))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_rw_excludes_all_faulty(self):
        assert model(1e-4).pwf_reliable_way(4) == 0.0

    def test_rw_is_binomial_over_w_minus_1(self):
        m = model(1e-4)
        pbf = m.pbf
        assert m.pwf_reliable_way(3) == pytest.approx(pbf ** 3)
        assert m.pwf_reliable_way(0) == pytest.approx((1 - pbf) ** 3)

    def test_rw_zero_faults_more_likely(self):
        """Masking one way makes 'no effective faults' more likely."""
        m = model(1e-3)
        assert m.pwf_reliable_way(0) > m.pwf(0)

    def test_vector_shapes(self):
        m = model(1e-4)
        assert len(m.pwf_vector()) == 5
        assert len(m.pwf_vector(reliable_way=True)) == 4
        assert sum(m.pwf_vector()) == pytest.approx(1.0)
