"""Concrete LRU simulator: reference semantics and LRU properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheGeometry, FaultMap, LRUCache, LRUSet
from repro.errors import SimulationError
from tests.strategies import block_traces


class TestLRUSet:
    def test_miss_then_hit(self):
        lru = LRUSet(capacity=2)
        assert not lru.lookup(7)
        assert lru.lookup(7)

    def test_eviction_order_is_lru(self):
        lru = LRUSet(capacity=2)
        lru.lookup(1)
        lru.lookup(2)
        lru.lookup(1)      # order now [1, 2]
        lru.lookup(3)      # evicts 2
        assert lru.contains(1)
        assert not lru.contains(2)
        assert lru.contains(3)

    def test_zero_capacity_never_hits(self):
        lru = LRUSet(capacity=0)
        for _ in range(3):
            assert not lru.lookup(5)
        assert lru.contents == ()

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            LRUSet(capacity=-1)

    def test_age_of(self):
        lru = LRUSet(capacity=4)
        lru.lookup(1)
        lru.lookup(2)
        assert lru.age_of(2) == 0
        assert lru.age_of(1) == 1
        assert lru.age_of(9) is None

    def test_flush(self):
        lru = LRUSet(capacity=2)
        lru.lookup(1)
        lru.flush()
        assert lru.contents == ()

    @given(block_traces())
    def test_stack_property(self, trace):
        """A hit in a W-way LRU implies a hit in any larger LRU."""
        small, large = LRUSet(2), LRUSet(4)
        for block in trace:
            hit_small = small.lookup(block)
            hit_large = large.lookup(block)
            assert not (hit_small and not hit_large)

    @given(block_traces())
    def test_contents_bounded_by_capacity(self, trace):
        lru = LRUSet(3)
        for block in trace:
            lru.lookup(block)
            assert len(lru.contents) <= 3
            assert len(set(lru.contents)) == len(lru.contents)


class TestLRUCache:
    @pytest.fixture()
    def geometry(self):
        return CacheGeometry(sets=4, ways=2, block_bytes=16)

    def test_counts_hits_and_misses(self, geometry):
        cache = LRUCache(geometry)
        cache.access(0)
        cache.access(0)
        cache.access(4)  # same set as 0 (4 % 4 == 0)
        assert cache.hits == 1
        assert cache.misses == 2

    def test_access_address_maps_to_block(self, geometry):
        cache = LRUCache(geometry)
        assert not cache.access_address(0x100)
        assert cache.access_address(0x10F)  # same 16-byte line
        assert not cache.access_address(0x110)  # next line

    def test_run_trace_accumulates(self, geometry):
        cache = LRUCache(geometry)
        hits, misses = cache.run_trace([0, 1, 0, 1, 2])
        assert hits == 2
        assert misses == 3

    def test_faulty_set_capacity_reduced(self, geometry):
        fault_map = FaultMap(geometry, [(0, 0)])
        cache = LRUCache(geometry, fault_map)
        assert cache.set_state(0).capacity == 1
        assert cache.set_state(1).capacity == 2

    def test_fully_faulty_set_never_hits(self, geometry):
        fault_map = FaultMap.whole_set_faulty(geometry, 2)
        cache = LRUCache(geometry, fault_map)
        block_in_set_2 = 2
        for _ in range(4):
            assert not cache.access(block_in_set_2)

    def test_geometry_mismatch_rejected(self, geometry):
        other = CacheGeometry(sets=8, ways=2, block_bytes=16)
        with pytest.raises(SimulationError):
            LRUCache(geometry, FaultMap.fault_free(other))

    def test_flush_resets_contents_and_stats(self, geometry):
        cache = LRUCache(geometry)
        cache.access(0)
        cache.flush()
        assert cache.misses == 0
        assert not cache.contains_address(0)

    @settings(max_examples=50)
    @given(block_traces(max_block=30, max_length=120))
    def test_set_independence(self, trace):
        """Filtering a trace to one set leaves its behaviour unchanged."""
        geometry = CacheGeometry(sets=4, ways=2, block_bytes=16)
        full = LRUCache(geometry)
        full_results = {}
        for position, block in enumerate(trace):
            full_results[position] = full.access(block)
        for set_index in range(geometry.sets):
            isolated = LRUCache(geometry)
            for position, block in enumerate(trace):
                if geometry.set_of_block(block) != set_index:
                    continue
                assert isolated.access(block) == full_results[position]

    @settings(max_examples=30)
    @given(block_traces(max_block=30, max_length=100))
    def test_whole_cache_stack_property(self, trace):
        geometry_small = CacheGeometry(sets=4, ways=1, block_bytes=16)
        geometry_large = CacheGeometry(sets=4, ways=4, block_bytes=16)
        small, large = LRUCache(geometry_small), LRUCache(geometry_large)
        for block in trace:
            hit_small = small.access(block)
            hit_large = large.access(block)
            assert not (hit_small and not hit_large)
