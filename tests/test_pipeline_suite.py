"""Suite and sweep execution through the unified pipeline.

Covers the re-routed drivers: per-run stats scoping (the historical
double-reset footgun), bit-identity of the pooled DAG against the
sequential path, and the sweep's N-worker determinism.
"""

from __future__ import annotations

from repro.experiments.runner import (fresh_results, reset_cache,
                                      run_benchmark, run_suite,
                                      solver_totals)
from repro.pipeline import PipelineStats
from repro.pwcet import EstimatorConfig
from repro.sweep import format_sweep_report, geometry_grid, run_sweep

SUBSET = ("fibcall", "bs", "prime")


def _config(tmp_path=None, **kwargs):
    cache = "off" if tmp_path is None else str(tmp_path / "store")
    return EstimatorConfig(cache=cache, **kwargs)


class TestStatsScoping:
    """The double-reset footgun: re-entering ``run_suite`` must not
    zero (or double-count) a previous run's numbers."""

    def test_reentered_suite_reports_zero_new_work(self):
        with fresh_results():
            config = _config()
            first_stats = PipelineStats()
            first = run_suite(config, benchmarks=SUBSET,
                              pipeline_stats=first_stats)
            # classify + solve + 3 cells + result per benchmark.
            assert first_stats.tasks_run == 6 * len(SUBSET)
            assert first_stats.counters["ilp_solved"] > 0

            second_stats = PipelineStats()
            second = run_suite(config, benchmarks=SUBSET,
                               pipeline_stats=second_stats)
            # Memo-served: the second *run* did no pipeline work ...
            assert second_stats.tasks_run == 0
            assert second_stats.counters == {}
            # ... and the first run's scope was not disturbed.
            assert first_stats.counters["ilp_solved"] > 0
            assert [r.name for r in second] == [r.name for r in first]

    def test_result_stats_survive_reset_cache(self):
        with fresh_results():
            config = _config()
            result = run_benchmark("fibcall", config)
            snapshot = dict(result.solver_stats)
            assert snapshot["ilp_solved"] > 0
            reset_cache()
            rerun = run_benchmark("fibcall", config)
            # The old result's stats are an immutable snapshot of its
            # own pipeline run — a later reset/rerun cannot zero them.
            assert result.solver_stats == snapshot
            assert rerun.solver_stats == snapshot  # same cold work
            assert rerun.pwcet("srb") == result.pwcet("srb")

    def test_totals_of_one_run_match_per_result_stats(self):
        with fresh_results():
            config = _config()
            stats = PipelineStats()
            results = run_suite(config, benchmarks=SUBSET,
                                pipeline_stats=stats)
            assert stats.totals() == solver_totals(results)


class TestPipelinedSuiteIdentity:
    def test_pooled_dag_matches_sequential(self):
        with fresh_results():
            sequential = run_suite(_config(), benchmarks=SUBSET)
        with fresh_results():
            pooled = run_suite(_config(workers=2), benchmarks=SUBSET,
                               workers=2)
        for a, b in zip(sequential, pooled):
            assert a.name == b.name
            assert a.wcet_fault_free == b.wcet_fault_free
            for mechanism in ("none", "srb", "rw"):
                assert a.pwcet(mechanism) == b.pwcet(mechanism)
            assert a.solver_stats == b.solver_stats


class TestSweepDeterminism:
    """ISSUE acceptance: ``run_sweep(cell_workers=N)`` byte-identical
    to sequential for N in {1, 4}."""

    def test_sweep_reports_byte_identical_for_1_and_4_workers(
            self, tmp_path):
        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))
        kwargs = dict(pfails=(1e-4, 1e-3), benchmarks=("fibcall",),
                      probability=1e-15)
        reports = {}
        for workers in (1, 4):
            result = run_sweep(
                geometries,
                config=EstimatorConfig(
                    cache=str(tmp_path / f"w{workers}")),
                cell_workers=workers, **kwargs)
            reports[workers] = format_sweep_report(result)
        assert reports[1] == reports[4]
