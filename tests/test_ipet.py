"""IPET: the ILP layer, the flow model, and WCET computation."""

import pytest

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry
from repro.cfg import CFG, find_loops
from repro.errors import SolverError
from repro.ipet import (FlowModel, LinearProgram, TimingModel, compute_wcet,
                        enumerate_paths)
from repro.ipet.paths import max_path_cost
from repro.minic import Compute, Function, If, Loop, Program, compile_program

GEOMETRY = CacheGeometry(sets=16, ways=4, block_bytes=16)


class TestLinearProgram:
    def test_simple_maximization(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=5)
        y = lp.add_variable("y", upper=7)
        lp.add_le({x: 1.0, y: 1.0}, 10.0)
        solution = lp.maximize({x: 2.0, y: 3.0})
        assert solution.rounded_objective() == 2 * 3 + 3 * 7

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_eq({x: 1.0}, 4.0)
        assert lp.maximize({x: 1.0}).rounded_objective() == 4

    def test_minimize(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lower=2.0)
        assert lp.minimize({x: 1.0}).rounded_objective() == 2

    def test_integrality(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_le({x: 2.0}, 5.0)  # x <= 2.5
        assert lp.maximize({x: 1.0}).rounded_objective() == 2
        relaxed = lp.maximize({x: 1.0}, relaxed=True)
        assert relaxed.objective == pytest.approx(2.5)

    def test_relaxation_upper_bounds_ilp(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_le({x: 3.0, y: 2.0}, 7.0)
        exact = lp.maximize({x: 2.0, y: 1.0}).objective
        relaxed = lp.maximize({x: 2.0, y: 1.0}, relaxed=True).objective
        assert relaxed >= exact - 1e-9

    def test_infeasible_raises(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_le({x: 1.0}, -1.0)
        with pytest.raises(SolverError, match="infeasible"):
            lp.maximize({x: 1.0})

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError):
            lp.add_le({5: 1.0}, 0.0)

    def test_empty_constraint_rejected(self):
        lp = LinearProgram()
        with pytest.raises(SolverError):
            lp.add_le({}, 0.0)

    def test_bad_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(SolverError):
            lp.add_variable("x", lower=3.0, upper=1.0)


class TestPathEnumeration:
    def test_diamond_has_two_paths(self):
        cfg = CFG()
        for label in ("entry", "a", "b", "exit"):
            cfg.new_block(label)
        cfg.add_edge(0, 1)
        cfg.add_edge(0, 2)
        cfg.add_edge(1, 3)
        cfg.add_edge(2, 3)
        cfg.set_entry(0)
        cfg.set_exit(3)
        assert len(list(enumerate_paths(cfg))) == 2

    def test_loop_path_count(self):
        """A loop with bound B and a branchless body has B paths
        (0 .. B-1 body iterations)."""
        program = Program([Function("main", [Loop(4, [Compute(2)])])])
        compiled = compile_program(program)
        paths = list(enumerate_paths(compiled.cfg))
        assert len(paths) == 5  # 0..4 iterations

    def test_branch_in_loop_path_count(self):
        program = Program([Function("main",
                                    [Loop(3, [If([Compute(1)],
                                                 [Compute(1)])])])])
        compiled = compile_program(program)
        # sum over k iterations of 2^k branch choices: 1+2+4+8 = 15
        assert len(list(enumerate_paths(compiled.cfg))) == 15

    def test_max_paths_cap(self):
        program = Program([Function("main",
                                    [Loop(30, [If([Compute(1)],
                                                  [Compute(1)])])])])
        compiled = compile_program(program)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="feasible paths"):
            list(enumerate_paths(compiled.cfg, max_paths=100))


class TestWCETAgainstOracle:
    """ILP maximum == exhaustive path maximum for block-cost objectives."""

    @pytest.mark.parametrize("body", [
        [Compute(5)],
        [Loop(4, [Compute(3)])],
        [If([Compute(8)], [Compute(2)])],
        [Loop(3, [If([Compute(6)], [Compute(1)])]), Compute(2)],
        [Loop(2, [Loop(3, [Compute(2)])])],
    ])
    def test_constant_cost_objective_matches(self, body):
        program = Program([Function("main", body)])
        compiled = compile_program(program)
        forest = find_loops(compiled.cfg)
        # Cost = instruction count per block (a valid linear objective).
        costs = {block_id: float(block.instruction_count)
                 for block_id, block in compiled.cfg.blocks.items()}
        oracle = max_path_cost(compiled.cfg, costs, forest)

        model = FlowModel(compiled.cfg, forest)
        objective: dict[int, float] = {}
        for block_id, cost in costs.items():
            for variable, weight in model.block_count_coefficients(
                    block_id, cost).items():
                objective[variable] = objective.get(variable, 0) + weight
        solution = model.program.maximize(objective)
        assert solution.rounded_objective() == int(oracle)


class TestComputeWCET:
    def test_straight_line_wcet_exact(self, straight_line_program, timing):
        """Straight-line code: the WCET is directly computable."""
        analysis = CacheAnalysis(straight_line_program.cfg, GEOMETRY)
        table = analysis.classification()
        result = compute_wcet(straight_line_program.cfg, table, timing)
        fetches = straight_line_program.cfg.instruction_count()
        lines = {address // 16 for address in
                 straight_line_program.cfg.distinct_addresses()}
        expected = (fetches * timing.hit_cycles
                    + len(lines) * timing.memory_cycles)
        assert result.cycles == expected

    def test_wcet_dominates_simulation(self, loop_program, timing, rng):
        from repro.cache import LRUCache
        from repro.cfg import PathWalker
        analysis = CacheAnalysis(loop_program.cfg, GEOMETRY)
        result = compute_wcet(loop_program.cfg, analysis.classification(),
                              timing)
        walker = PathWalker(loop_program.cfg)
        for index in range(30):
            walk = walker.walk(rng, maximize_iterations=(index % 3 == 0))
            cache = LRUCache(GEOMETRY)
            cycles = sum(
                timing.hit_cycles if cache.access_address(address)
                else timing.miss_cycles
                for address in walk.addresses)
            assert cycles <= result.cycles

    def test_block_counts_respect_loop_bounds(self, loop_program, timing):
        analysis = CacheAnalysis(loop_program.cfg, GEOMETRY)
        result = compute_wcet(loop_program.cfg, analysis.classification(),
                              timing)
        forest = analysis.forest
        for header, loop in forest.loops.items():
            assert result.block_counts[header] <= loop.bound

    def test_relaxed_at_least_exact(self, loop_program, timing):
        analysis = CacheAnalysis(loop_program.cfg, GEOMETRY)
        table = analysis.classification()
        exact = compute_wcet(loop_program.cfg, table, timing)
        relaxed = compute_wcet(loop_program.cfg, table, timing,
                               relaxed=True)
        assert relaxed.cycles >= exact.cycles

    def test_degraded_wcet_monotone_in_assoc(self, loop_program, timing):
        analysis = CacheAnalysis(loop_program.cfg, GEOMETRY)
        previous = None
        for assoc in range(GEOMETRY.ways, -1, -1):
            result = compute_wcet(loop_program.cfg,
                                  analysis.classification(assoc), timing)
            if previous is not None:
                assert result.cycles >= previous
            previous = result.cycles

    def test_timing_model_validation(self):
        with pytest.raises(Exception):
            TimingModel(hit_cycles=0)
        assert TimingModel().miss_cycles == 101
