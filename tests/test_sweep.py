"""The multi-geometry sweep service and its Pareto reporting."""

from __future__ import annotations

import pytest

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError
from repro.pwcet import EstimatorConfig
from repro.sweep import (DesignPoint, SweepCell, format_pareto_fronts,
                         format_sweep_report, geometry_grid, pareto_front,
                         run_sweep, sweep_cells)

SUBSET = ("bs", "fibcall")


class TestGrid:
    def test_default_grid_covers_at_least_twelve_geometries(self):
        grid = geometry_grid()
        assert len(grid) >= 12
        assert len(set(grid)) == len(grid)
        assert CacheGeometry.from_size(1024, 4, 16) in grid  # the paper's

    def test_infeasible_combinations_are_skipped(self):
        grid = geometry_grid(sizes=(128,), ways=(2, 8), lines=(32,))
        # 128 B in 8 ways of 32 B lines does not divide; 2 ways does.
        assert grid == (CacheGeometry.from_size(128, 2, 32),)

    def test_fully_infeasible_axes_raise(self):
        with pytest.raises(ConfigurationError):
            geometry_grid(sizes=(64,), ways=(8,), lines=(32,))

    def test_cells_are_geometry_major(self):
        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))
        cells = sweep_cells(geometries, pfails=(1e-4, 1e-3))
        assert [cell.geometry.total_bytes for cell in cells] == \
            [512, 512, 1024, 1024]
        assert [cell.pfail for cell in cells] == [1e-4, 1e-3, 1e-4, 1e-3]


def _point(mechanism="srb", gain=0.5, area=100.0, pfail=1e-4,
           geometry=None) -> DesignPoint:
    if geometry is None:
        geometry = CacheGeometry.from_size(1024, 4, 16)
    return DesignPoint(cell=SweepCell(geometry=geometry, pfail=pfail),
                       mechanism=mechanism, mean_pwcet=1000.0,
                       mean_gain=gain, area_cells=area,
                       area_overhead=0.1, leakage_cells=area)


class TestParetoFront:
    def test_dominated_points_are_dropped(self):
        cheap_good = _point(gain=0.6, area=100.0)
        pricey_bad = _point(gain=0.5, area=200.0)
        pricey_best = _point(gain=0.9, area=300.0)
        front = pareto_front((pricey_bad, cheap_good, pricey_best))
        assert front == (cheap_good, pricey_best)

    def test_equal_points_both_survive(self):
        twin_a, twin_b = _point(), _point()
        assert len(pareto_front((twin_a, twin_b))) == 2

    def test_front_is_sorted_cheapest_first(self):
        points = (_point(gain=0.9, area=300.0), _point(gain=0.6, area=100.0))
        front = pareto_front(points)
        assert [point.area_cells for point in front] == [100.0, 300.0]


class TestRunSweep:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        cache = str(tmp_path_factory.mktemp("sweepcache"))
        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))
        return run_sweep(geometries, pfails=(1e-4, 1e-3),
                         benchmarks=SUBSET,
                         config=EstimatorConfig(cache=cache))

    def test_every_cell_and_mechanism_reported(self, result):
        assert len(result.cells()) == 4  # 2 geometries x 2 pfails
        assert len(result.points) == 4 * 3  # x (none, srb, rw)

    def test_gains_and_costs_are_sane(self, result):
        for point in result.points:
            assert 0.0 <= point.mean_gain <= 1.0
            assert point.mean_pwcet > 0
            assert point.area_cells > 0
            if point.mechanism == "none":
                assert point.mean_gain == 0.0
                assert point.area_overhead == 0.0
            else:
                assert point.area_overhead > 0.0

    def test_pfail_axis_is_prefilled_by_the_batched_kernel(self, result):
        """Grid cells that share penalty structure never recompute it:
        the first cell of each geometry batches the whole pfail axis
        through the distribution kernel and prefills the cell store,
        so the second column runs no solver, analysis or convolution
        work at all — it is answered whole from the cell store."""
        totals = result.solver_totals
        # 2 geometries x len(SUBSET) benchmarks x 3 mechanisms x 1
        # sibling pfail — one prefilled row per second-column cell.
        expected = 2 * len(SUBSET) * 3
        assert totals["dist_batched_rows"] == expected
        assert totals["cells_from_store"] == expected
        # The prefill replaces the PR 6 behaviour (second column
        # re-solving against the persistent solve store): each ILP of
        # the sweep is now solved exactly once.
        assert totals["store_hits"] == 0

    def test_report_contains_fronts_and_solver_summary(self, result):
        text = format_sweep_report(result)
        assert "Pareto front — srb at pfail=0.0001" in text
        assert "Pareto front — rw at pfail=0.001" in text
        assert "persistent cache" in text

    def test_run_sweep_preserves_outer_memo(self, tmp_path):
        """The sweep scopes the runner memo instead of clearing it."""
        from repro.experiments.runner import run_benchmark

        outer = run_benchmark("fibcall")
        run_sweep(geometry_grid(sizes=(512,), ways=(2,), lines=(16,)),
                  benchmarks=("bs",),
                  config=EstimatorConfig(cache=str(tmp_path / "store")))
        assert run_benchmark("fibcall") is outer

    def test_fronts_never_mix_pfails(self, result):
        text = format_pareto_fronts(result)
        for section in text.split("\n\n"):
            header = section.splitlines()[0]
            pfail = "1e-04" if "0.0001" in header else "1e-03"
            for line in section.splitlines()[3:]:
                assert pfail in line

    def test_streaming_callback_sees_every_cell_in_grid_order(
            self, tmp_path):
        seen = []

        def on_cell(cell, points, completed, total):
            seen.append((cell, points, completed, total))

        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))
        result = run_sweep(geometries, pfails=(1e-4,),
                           benchmarks=("fibcall",),
                           config=EstimatorConfig(
                               cache=str(tmp_path / "store")),
                           on_cell=on_cell)
        assert [cell for cell, *_ in seen] == list(result.cells())
        assert [completed for *_, completed, _ in seen] == [1, 2]
        assert all(total == 2 for *_, total in seen)
        streamed = [point for _, points, *_ in seen for point in points]
        assert tuple(streamed) == result.points


class TestParallelSweep:
    """`repro sweep --workers N`: whole-cell fan-out over a pool."""

    def test_parallel_report_is_byte_identical(self, tmp_path):
        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))
        kwargs = dict(pfails=(1e-4, 1e-3), benchmarks=("fibcall",),
                      probability=1e-15)
        sequential = run_sweep(
            geometries,
            config=EstimatorConfig(cache=str(tmp_path / "seq")), **kwargs)
        parallel = run_sweep(
            geometries,
            config=EstimatorConfig(cache=str(tmp_path / "par")),
            cell_workers=2, **kwargs)
        assert parallel.points == sequential.points
        assert format_sweep_report(parallel) == \
            format_sweep_report(sequential)

    def test_parallel_streaming_covers_every_cell(self, tmp_path):
        seen = []
        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16,))
        result = run_sweep(geometries, pfails=(1e-4,),
                           benchmarks=("fibcall",),
                           config=EstimatorConfig(
                               cache=str(tmp_path / "store")),
                           cell_workers=2,
                           on_cell=lambda cell, points, completed, total:
                           seen.append((cell, completed, total)))
        # Completion order is nondeterministic; coverage is not.
        assert {cell for cell, *_ in seen} == set(result.cells())
        assert sorted(completed for _, completed, _ in seen) == [1, 2]

    @pytest.mark.parametrize("cell_workers", (1, 4))
    def test_batched_engine_report_matches_vector(self, tmp_path,
                                                  monkeypatch,
                                                  cell_workers):
        """The geometry-batched kernel changes no output byte.

        Two line-size groups, so ``cell_workers=4`` exercises the
        parallel group fan-out.  Only the physical fixpoint count may
        differ between the engines — the batching orchestration (store
        traffic, prefilled siblings, tables) is engine-independent.
        """
        from repro.analysis.classify import ENGINE_ENV

        geometries = geometry_grid(sizes=(512, 1024), ways=(2,),
                                   lines=(16, 32))
        kwargs = dict(pfails=(1e-4,), benchmarks=("fibcall", "bs"),
                      cell_workers=cell_workers)
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        batched = run_sweep(
            geometries,
            config=EstimatorConfig(cache=str(tmp_path / "batch")),
            **kwargs)
        monkeypatch.setenv(ENGINE_ENV, "vector")
        vector = run_sweep(
            geometries,
            config=EstimatorConfig(cache=str(tmp_path / "vector")),
            **kwargs)
        assert format_sweep_report(batched) == \
            format_sweep_report(vector)
        assert batched.points == vector.points
        batch_totals = dict(batched.solver_totals)
        vector_totals = dict(vector.solver_totals)
        # One stacked pair per (benchmark, group) vs one pair per
        # (benchmark, geometry): 2x fewer with groups of two.
        assert batch_totals.pop("fixpoints_run") * 2 == \
            vector_totals.pop("fixpoints_run")
        assert batch_totals == vector_totals
        # Each benchmark batched one sibling geometry per group.
        assert batched.solver_totals["classify_batched_rows"] == 2 * 2
        assert batched.solver_totals["geometry_groups"] == 2 * 2

    def test_parallel_cap_never_oversubscribes(self):
        """Product of group fan-out x inner workers <= cell_workers.

        The pre-cap formula divided the width by the *geometry* count
        and honoured an explicit ``workers`` request unconditionally —
        so e.g. 4 groups x workers=4 under cell_workers=4 spawned 16
        concurrent benchmark tasks."""
        from repro.sweep.service import _inner_width

        for group_count in (1, 2, 3, 4, 8):
            for cell_workers in (1, 2, 3, 4, 8):
                for workers in (None, 1, 2, 4, 8):
                    inner = _inner_width(group_count, cell_workers,
                                         workers)
                    assert inner >= 1
                    assert min(group_count, cell_workers) * inner \
                        <= cell_workers
        # The oversubscription case from the issue: the explicit
        # workers request no longer multiplies across groups.
        assert _inner_width(4, 4, 4) == 1
        # Leftover width still flows inward when groups are few.
        assert _inner_width(2, 8, None) == 4

    def test_cli_sweep_workers_streams_progress(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["sweep", "--sizes", "512", "--ways", "2",
                     "--lines", "16", "--benchmarks", "fibcall",
                     "--workers", "2",
                     "--cache", str(tmp_path / "store")]) == 0
        captured = capsys.readouterr()
        assert "Pareto front" in captured.out
        assert "best gain" in captured.err
        assert "[  1/1]" in captured.err
