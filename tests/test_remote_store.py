"""The resilient remote artifact store: server, client, chaos.

Covers the remote tentpole end to end: the HTTP shard protocol
(GET/PUT/HEAD, ETag/SHA-256 integrity headers, 404/400 rejection),
fetch-on-miss populating the local store of record, push-on-write,
the verification/retry/circuit-breaker resilience stack under the
``net:*`` chaos sites — and the acceptance property that a 4-worker
suite run against a chaos-injected (or dead) server stays
byte-identical to an undisturbed local run.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.experiments.fig4 import format_fig4, row_of
from repro.experiments.runner import fresh_results, run_suite
from repro.pipeline import PipelineStats
from repro.pipeline.resilience import RetryPolicy
from repro.pwcet import EstimatorConfig
from repro.remote import RemoteStoreClient, ShardServer
from repro.remote import client as client_module
from repro.remote.client import _Breaker
from repro.solve.store import (REMOTE_ENV, SolveStore, encode_shard_line,
                               parse_shard_line)
from repro.testing import faultinject
from repro.testing.faultinject import PLAN_ENV, STATE_ENV

KEY = "ab" * 32  # a well-formed (64-hex-char) content address
FAST = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.02,
                   sleep=lambda seconds: None)


@pytest.fixture(autouse=True)
def _clean_remote(monkeypatch):
    """Each test gets a fresh chaos harness and client registry."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(STATE_ENV, raising=False)
    monkeypatch.delenv(REMOTE_ENV, raising=False)
    faultinject._PLAN_MEMO = None
    faultinject._LOCAL_COUNTS.clear()
    client_module._CLIENTS.clear()
    yield
    faultinject._PLAN_MEMO = None
    faultinject._LOCAL_COUNTS.clear()
    client_module._CLIENTS.clear()


@pytest.fixture()
def server(tmp_path):
    """A shard server over a fresh cache root, on an ephemeral port."""
    with ShardServer(str(tmp_path / "serverroot")).start() as running:
        yield running


def http(method: str, url: str, body: bytes | None = None):
    request = urllib.request.Request(url, data=body, method=method)
    return urllib.request.urlopen(request, timeout=5.0)


class TestServerProtocol:
    def test_put_get_head_round_trip_with_integrity_headers(
            self, server):
        line = encode_shard_line("solve", KEY, 42).encode("utf-8")
        url = f"{server.url}/stores/v1/solve/{KEY}"
        with http("PUT", url, line) as response:
            assert response.status == 204
        with http("GET", url) as response:
            body = response.read()
            assert body == line
            checksum = parse_shard_line(body.decode())
            assert checksum == ("solve", KEY, 42)
            import hashlib
            import json
            assert response.headers["ETag"] == \
                f'"{json.loads(body)["c"]}"'
            assert response.headers["X-Repro-SHA256"] == \
                hashlib.sha256(body).hexdigest()
        with http("HEAD", url) as response:
            assert response.status == 200
            assert response.read() == b""  # headers only
        # The PUT landed in the real shard substrate: a plain local
        # store over the served root sees the entry.
        assert SolveStore(server.root).get(KEY) == 42

    def test_unknown_address_and_malformed_paths_404(self, server):
        for path in (f"/stores/v1/solve/{KEY}",      # unknown address
                     f"/stores/espionage/solve/{KEY}",  # bad schema dir
                     f"/stores/v1/solve/not-hex",    # bad key
                     f"/stores/v1/solve/{KEY}/extra",
                     "/anything/else"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http("GET", server.url + path)
            assert excinfo.value.code == 404
            excinfo.value.close()

    def test_put_rejects_bodies_that_fail_the_shard_check(self, server):
        url = f"{server.url}/stores/v1/solve/{KEY}"
        mismatched = encode_shard_line("solve", KEY[::-1], 7)
        corrupt = encode_shard_line("solve", KEY, 7).replace('"v":7',
                                                             '"v":8')
        assert corrupt != encode_shard_line("solve", KEY, 7)
        for body in (b"not json at all", mismatched.encode(),
                     corrupt.encode()):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http("PUT", url, body)
            assert excinfo.value.code == 400
            excinfo.value.close()
        # Nothing was stored by any of the rejected bodies.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http("GET", url)
        assert excinfo.value.code == 404
        excinfo.value.close()

    def test_healthz_probe(self, server):
        with http("GET", f"{server.url}/healthz") as response:
            assert response.status == 200


class TestFetchOnMiss:
    def test_local_miss_is_served_remotely_and_persisted_locally(
            self, server, tmp_path, monkeypatch):
        SolveStore(server.root).put(KEY, 1234)
        monkeypatch.setenv(REMOTE_ENV, server.url)
        local_root = tmp_path / "localroot"
        store = SolveStore.resolve(str(local_root))
        assert store.remote is not None
        assert store.get(KEY) == 1234
        assert store.remote.stats.fetch_hits == 1
        # The fetched entry was appended to the local store of record:
        # a *detached* handle over the same root serves it without any
        # remote at all.
        monkeypatch.setenv(REMOTE_ENV, "off")
        detached = SolveStore(local_root)
        assert detached.remote is None
        assert detached.get(KEY) == 1234

    def test_confirmed_miss_is_memoised_not_reasked(
            self, server, tmp_path, monkeypatch):
        monkeypatch.setenv(REMOTE_ENV, server.url)
        store = SolveStore.resolve(str(tmp_path / "localroot"))
        assert store.get(KEY) is None
        assert store.get(KEY) is None
        stats = store.remote.stats
        assert stats.fetch_misses == 1  # one wire request, not two
        assert stats.coalesced_hits == 1


class TestPushOnWrite:
    def test_local_write_becomes_visible_server_side(
            self, server, tmp_path, monkeypatch):
        monkeypatch.setenv(REMOTE_ENV, server.url)
        store = SolveStore.resolve(str(tmp_path / "localroot"))
        store.put(KEY, 77)
        assert store.remote.stats.pushes == 1
        with http("GET", f"{server.url}/stores/v1/solve/{KEY}") \
                as response:
            assert parse_shard_line(response.read().decode()) \
                == ("solve", KEY, 77)

    def test_push_failure_is_non_fatal(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REMOTE_ENV, "http://127.0.0.1:9")
        monkeypatch.setenv(client_module.TIMEOUT_ENV, "0.2")
        store = SolveStore.resolve(str(tmp_path / "localroot"))
        store.put(KEY, 99)  # must not raise
        assert store.remote.stats.push_failures == 1
        assert store.get(KEY) == 99  # the local write is intact


class TestChaosResilience:
    def fetch_with(self, server, plan, monkeypatch):
        SolveStore(server.root).put(KEY, 5)
        monkeypatch.setenv(PLAN_ENV, plan)
        faultinject._PLAN_MEMO = None
        client = RemoteStoreClient(server.url, retry=FAST)
        assert client.fetch("v1", "solve", KEY) == 5
        return client.stats

    def test_corrupt_body_is_rejected_and_refetched(
            self, server, monkeypatch):
        stats = self.fetch_with(server, "net:corrupt@v1#1", monkeypatch)
        assert stats.verify_rejects == 1
        assert stats.retries == 1
        assert stats.fetch_hits == 1

    def test_short_read_is_a_transient_failure(self, server, monkeypatch):
        stats = self.fetch_with(server, "net:short_read@v1#1",
                                monkeypatch)
        assert stats.retries == 1
        assert stats.fetch_hits == 1

    def test_dropped_request_is_retried(self, server, monkeypatch):
        stats = self.fetch_with(server, "net:drop@v1#1", monkeypatch)
        assert stats.retries == 1
        assert stats.fetch_hits == 1


class TestCircuitBreaker:
    def test_threshold_trips_and_cooldown_half_opens(self):
        now = [0.0]
        breaker = _Breaker(threshold=3, cooldown=10.0,
                           clock=lambda: now[0])
        for trip in (False, False, True):
            assert breaker.failure() is trip
        assert breaker.state == "open"
        assert not breaker.allow()
        now[0] = 10.0  # cooldown elapsed: exactly one probe admitted
        assert breaker.allow()
        assert breaker.state == "half_open"
        assert not breaker.allow()  # second caller still refused
        breaker.success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_re_trips_immediately(self):
        now = [0.0]
        breaker = _Breaker(threshold=3, cooldown=10.0,
                           clock=lambda: now[0])
        for _ in range(3):
            breaker.failure()
        now[0] = 10.0
        assert breaker.allow()
        assert breaker.failure()  # one probe failure, not threshold
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_open_breaker_skips_the_wire_entirely(self, tmp_path):
        client = RemoteStoreClient("http://127.0.0.1:9", retry=FAST,
                                   timeout=0.2, breaker_threshold=2)
        assert client.fetch("v1", "solve", KEY) is None
        assert client.stats.breaker_trips == 1
        assert client.degraded
        # Subsequent operations degrade instantly (no timeout burned).
        assert client.fetch("v1", "solve", "cd" * 32) is None
        assert client.stats.degraded_skips >= 1

    def test_half_open_probe_recovers_a_restarted_server(self, tmp_path):
        root = tmp_path / "root"
        SolveStore(root).put(KEY, 11)
        first = ShardServer(str(root)).start()
        host, port = first._httpd.server_address[:2]
        url = first.url
        first.close()  # the server "dies"
        client = RemoteStoreClient(url, timeout=0.5,
                                   breaker_threshold=1,
                                   breaker_cooldown=0.0,
                                   retry=RetryPolicy(
                                       max_attempts=1,
                                       sleep=lambda seconds: None))
        assert client.fetch("v1", "solve", KEY) is None
        assert client.stats.breaker_trips == 1
        # The server comes back on the same port; the zero-cooldown
        # breaker admits one half-open probe, which succeeds and
        # closes the circuit.
        with ShardServer(str(root), host=host, port=port).start():
            assert client.fetch("v1", "solve", KEY) == 11
        assert client.stats.fetch_hits == 1
        assert client.breaker.state == "closed"
        assert not client.stats.degraded_skips


class TestByteIdentity:
    BENCHMARKS = ("fibcall", "bs")

    def golden(self, tmp_path):
        with fresh_results():
            results = run_suite(
                EstimatorConfig(cache=str(tmp_path / "golden")),
                benchmarks=self.BENCHMARKS)
            return format_fig4([row_of(r) for r in results])

    def test_chaos_remote_run_matches_local_golden(
            self, server, tmp_path, monkeypatch):
        """The acceptance property: a 4-worker suite against a
        chaos-injected shard server renders byte-identically to a
        local, undisturbed run — drops retry, corruption is caught by
        verification, and nothing of it reaches stdout."""
        golden_text = self.golden(tmp_path)
        monkeypatch.setenv(REMOTE_ENV, server.url)
        monkeypatch.setenv(PLAN_ENV,
                           "net:drop@*#1;net:corrupt@v1#2;"
                           "net:short_read@classify-v1#1")
        faultinject._PLAN_MEMO = None
        with fresh_results():
            stats = PipelineStats()
            results = run_suite(
                EstimatorConfig(cache=str(tmp_path / "chaos"),
                                workers=4),
                benchmarks=self.BENCHMARKS, workers=4,
                pipeline_stats=stats)
            chaos_text = format_fig4([row_of(r) for r in results])
        assert chaos_text == golden_text
        # The wire was really used: the server's root gained entries
        # pushed by the run's writers.
        shards = list((server.root / "v1").glob("shard-*.jsonl"))
        assert shards and any(s.stat().st_size > 0 for s in shards)

    def test_dead_remote_degrades_to_local_only_byte_identically(
            self, tmp_path, monkeypatch):
        """The headline: the remote is unreachable from the start —
        the run completes from local stores, byte-identical, and the
        client records the degraded span."""
        golden_text = self.golden(tmp_path)
        monkeypatch.setenv(REMOTE_ENV, "http://127.0.0.1:9")
        monkeypatch.setenv(client_module.TIMEOUT_ENV, "0.2")
        with fresh_results():
            stats = PipelineStats()
            results = run_suite(
                EstimatorConfig(cache=str(tmp_path / "degraded")),
                benchmarks=self.BENCHMARKS, pipeline_stats=stats)
            degraded_text = format_fig4([row_of(r) for r in results])
        assert degraded_text == golden_text
        (client,) = client_module.resolved_clients()
        assert client.degraded
        assert client.stats.breaker_trips >= 1
        assert client.stats.degraded_skips >= 1
        # The degraded span is visible in the run's pipeline stats.
        assert stats.remote.get("remote_breaker_trips", 0) >= 1

    def test_warm_server_serves_a_cold_local_cache(
            self, server, tmp_path, monkeypatch):
        """Second half of the CI chaos-network job: after one run
        warmed the server, a *fresh* local cache completes the same
        suite from remote hits — byte-identically."""
        golden_text = self.golden(tmp_path)
        monkeypatch.setenv(REMOTE_ENV, server.url)
        with fresh_results():
            run_suite(EstimatorConfig(cache=str(tmp_path / "warm")),
                      benchmarks=self.BENCHMARKS)
        client_module._CLIENTS.clear()  # drop the warming run's memos
        with fresh_results():
            stats = PipelineStats()
            results = run_suite(
                EstimatorConfig(cache=str(tmp_path / "cold")),
                benchmarks=self.BENCHMARKS, pipeline_stats=stats)
            cold_text = format_fig4([row_of(r) for r in results])
        assert cold_text == golden_text
        assert stats.remote.get("remote_fetch_hits", 0) > 0
