"""Abstract cache state algebra (Must/May update and join)."""

from hypothesis import given, strategies as st

from repro.analysis.acs import (cache_state_equal, copy_cache_state,
                                may_join, may_update, must_join,
                                must_update)

ASSOC = 4

set_states = st.dictionaries(st.integers(0, 10), st.integers(0, ASSOC - 1),
                             max_size=ASSOC)
blocks = st.integers(0, 10)


class TestMustUpdate:
    def test_accessed_block_becomes_mru(self):
        state = must_update({}, 5, ASSOC)
        assert state == {5: 0}

    def test_reaccess_keeps_younger_blocks(self):
        state = {1: 0, 2: 1, 3: 2}
        updated = must_update(state, 3, ASSOC)
        assert updated == {3: 0, 1: 1, 2: 2}

    def test_reaccess_mru_is_identity_on_others(self):
        state = {1: 0, 2: 3}
        updated = must_update(state, 1, ASSOC)
        assert updated == {1: 0, 2: 3}

    def test_miss_ages_everyone(self):
        state = {1: 0, 2: ASSOC - 1}
        updated = must_update(state, 9, ASSOC)
        assert updated[9] == 0
        assert updated[1] == 1
        assert 2 not in updated  # aged out of the guarantee

    def test_zero_assoc_is_empty(self):
        assert must_update({1: 0}, 2, 0) == {}

    @given(set_states, blocks)
    def test_ages_stay_in_range(self, state, block):
        updated = must_update(state, block, ASSOC)
        assert all(0 <= age < ASSOC for age in updated.values())
        assert updated[block] == 0

    @given(set_states, blocks)
    def test_update_is_idempotent_on_repeat(self, state, block):
        once = must_update(state, block, ASSOC)
        twice = must_update(once, block, ASSOC)
        assert once == twice


class TestMustJoin:
    def test_intersection_with_max_age(self):
        joined = must_join({1: 0, 2: 2}, {1: 1, 3: 0})
        assert joined == {1: 1}

    def test_empty_is_absorbing(self):
        assert must_join({}, {1: 0}) == {}
        assert must_join({1: 0}, {}) == {}

    @given(set_states, set_states)
    def test_commutative(self, left, right):
        assert must_join(left, right) == must_join(right, left)

    @given(set_states, set_states, set_states)
    def test_associative(self, a, b, c):
        assert (must_join(must_join(a, b), c)
                == must_join(a, must_join(b, c)))

    @given(set_states)
    def test_idempotent(self, state):
        assert must_join(state, state) == state

    @given(set_states, set_states)
    def test_join_is_weaker_than_both(self, left, right):
        """The join's guarantees are implied by either operand."""
        joined = must_join(left, right)
        for block, age in joined.items():
            assert age >= left[block]
            assert age >= right[block]


class TestMayUpdate:
    def test_accessed_block_min_age_zero(self):
        assert may_update({}, 5, ASSOC) == {5: 0}

    def test_absent_block_ages_everyone(self):
        state = {1: 0, 2: ASSOC - 1}
        updated = may_update(state, 9, ASSOC)
        assert updated[1] == 1
        assert 2 not in updated

    def test_young_accessed_block_preserves_others(self):
        # block 1 may be at age 0; accessing it may leave 2 unaged.
        state = {1: 0, 2: 1}
        updated = may_update(state, 1, ASSOC)
        assert updated == {1: 0, 2: 1}

    def test_older_block_ages_younger_ones(self):
        state = {1: 0, 2: 2}
        updated = may_update(state, 2, ASSOC)
        assert updated == {2: 0, 1: 1}

    @given(set_states, blocks)
    def test_ages_stay_in_range(self, state, block):
        updated = may_update(state, block, ASSOC)
        assert all(0 <= age < ASSOC for age in updated.values())


class TestMayJoin:
    def test_union_with_min_age(self):
        joined = may_join({1: 1, 2: 2}, {1: 3, 3: 0})
        assert joined == {1: 1, 2: 2, 3: 0}

    def test_empty_is_identity(self):
        assert may_join({}, {1: 2}) == {1: 2}
        assert may_join({1: 2}, {}) == {1: 2}

    @given(set_states, set_states)
    def test_commutative(self, left, right):
        assert may_join(left, right) == may_join(right, left)

    @given(set_states, set_states, set_states)
    def test_associative(self, a, b, c):
        assert (may_join(may_join(a, b), c)
                == may_join(a, may_join(b, c)))

    @given(set_states, set_states)
    def test_join_covers_both(self, left, right):
        joined = may_join(left, right)
        for source in (left, right):
            for block, age in source.items():
                assert joined[block] <= age


class TestCacheStateHelpers:
    def test_equality_ignores_empty_sets(self):
        assert cache_state_equal({0: {}}, {})
        assert not cache_state_equal({0: {1: 0}}, {})

    def test_copy_is_deep_per_set(self):
        original = {0: {1: 0}}
        copy = copy_cache_state(original)
        copy[0][1] = 3
        assert original[0][1] == 0
