"""Fault Miss Map (FMM) computation — paper §II-C and Figure 1.a."""

from repro.fmm.fault_miss_map import FaultMissMap
from repro.fmm.compute import compute_fault_miss_map

__all__ = ["FaultMissMap", "compute_fault_miss_map"]
