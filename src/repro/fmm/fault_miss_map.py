"""The Fault Miss Map data structure.

``FMM[s][f]`` upper-bounds the number of *fault-induced* misses, over
any structurally feasible path, when set ``s`` has exactly ``f`` faulty
blocks (and only set ``s`` is considered — sets are independent, the
penalty distributions are convolved later).  Entries are in misses;
multiply by the memory latency for cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultMissMap:
    """Immutable per-set / per-fault-count miss bounds."""

    geometry: CacheGeometry
    #: rows[s][f] -> miss bound; every row covers f = 0 .. max column.
    rows: tuple[tuple[int, ...], ...]
    #: Identifies the mechanism the all-faulty column was computed for.
    mechanism_name: str = "none"

    def __post_init__(self) -> None:
        if len(self.rows) != self.geometry.sets:
            raise ConfigurationError(
                f"FMM needs {self.geometry.sets} rows, got {len(self.rows)}")
        width = len(self.rows[0]) if self.rows else 0
        for set_index, row in enumerate(self.rows):
            if len(row) != width:
                raise ConfigurationError("ragged FMM rows")
            if row and row[0] != 0:
                raise ConfigurationError(
                    f"FMM[{set_index}][0] must be 0 (no faults, no penalty)")
            for earlier, later in zip(row, row[1:]):
                if later < earlier:
                    raise ConfigurationError(
                        f"FMM row {set_index} not monotone: {row}")

    @property
    def max_fault_count(self) -> int:
        """Largest fault count covered by the map's columns."""
        return len(self.rows[0]) - 1

    def misses(self, set_index: int, faulty_blocks: int) -> int:
        """Miss bound for ``faulty_blocks`` faults in ``set_index``."""
        if not 0 <= set_index < self.geometry.sets:
            raise ConfigurationError(f"set index {set_index} out of range")
        row = self.rows[set_index]
        if not 0 <= faulty_blocks < len(row):
            raise ConfigurationError(
                f"fault count {faulty_blocks} outside FMM columns "
                f"[0, {len(row) - 1}]")
        return row[faulty_blocks]

    def row(self, set_index: int) -> tuple[int, ...]:
        return self.rows[set_index]

    def total_worst_misses(self) -> int:
        """Sum of worst-column entries — grid size of the convolution."""
        return sum(row[-1] for row in self.rows)

    def format_table(self) -> str:
        """Figure 1.a-style rendering, one row per set."""
        width = self.max_fault_count
        header = "set | " + " | ".join(
            f"{f} faulty" for f in range(1, width + 1))
        lines = [header, "-" * len(header)]
        for set_index, row in enumerate(self.rows):
            cells = " | ".join(f"{value:8d}" for value in row[1:])
            lines.append(f"{set_index:3d} | {cells}")
        return "\n".join(lines)
