"""Computing the Fault Miss Map by IPET-like ILPs (paper §II-C, [1]).

For every set ``s`` and fault count ``f`` we maximise, over the IPET
flow polytope, a safe upper bound of the number of *additional* misses
incurred by references to ``s`` when their classification degrades
from the fault-free table (associativity ``W``) to the degraded table
(associativity ``W - f``).  Per-reference accounting, with ``x_b`` the
reference's block execution count and ``entries(L)`` the flow entering
scope ``L``:

=======================  =========================  ====================
fault-free CHMC          degraded CHMC              extra-miss bound
=======================  =========================  ====================
always-hit               always-hit                 0
always-hit / first-miss  first-miss in scope L      min(x_b, entries(L))
always-hit / first-miss  always-miss / unclassified x_b
first-miss in L          first-miss in L (same)     0
always-miss / unclass.   anything                   0 (already misses)
=======================  =========================  ====================

The bound is conservative for degraded first-miss references (the
fault-free misses subtracted are lower-bounded by zero), exactly the
safe direction.

For the SRB mechanism, the all-ways-faulty column first removes every
reference classified always-hit by the SRB analysis (§III-B2); the
remaining references degrade to always-miss.
"""

from __future__ import annotations

from repro.analysis import CacheAnalysis
from repro.analysis.chmc import Chmc
from repro.cfg import CFG
from repro.errors import AnalysisError
from repro.fmm.fault_miss_map import FaultMissMap
from repro.ipet.model import FlowModel
from repro.reliability.mechanism import ReliabilityMechanism


def compute_fault_miss_map(analysis: CacheAnalysis,
                           mechanism: ReliabilityMechanism, *,
                           flow_model: FlowModel | None = None,
                           relaxed: bool = False) -> FaultMissMap:
    """Compute the FMM of one program for one reliability mechanism."""
    cfg = analysis.cfg
    geometry = analysis.geometry
    ways = geometry.ways
    if flow_model is None:
        flow_model = FlowModel(cfg, analysis.forest)

    fault_counts = mechanism.fault_counts(ways)
    max_fault = max(fault_counts)
    all_faulty_filter = mechanism.all_faulty_filter(analysis)

    baseline = analysis.classification(ways)
    rows: list[tuple[int, ...]] = []
    for set_index in range(geometry.sets):
        row = [0]
        for fault_count in range(1, max_fault + 1):
            if fault_count not in fault_counts:
                raise AnalysisError(
                    f"mechanism {mechanism.name!r} skips fault count "
                    f"{fault_count}; FMM columns must be contiguous")
            srb_classifier = (all_faulty_filter(set_index)
                              if (all_faulty_filter is not None
                                  and fault_count == ways) else None)
            bound = _extra_miss_bound(
                analysis, flow_model, baseline, set_index, fault_count,
                srb_classifier,
                relaxed=relaxed)
            # More faults can never reduce the worst extra-miss count;
            # guard against solver round-off breaking monotonicity.
            row.append(max(bound, row[-1]))
        rows.append(tuple(row))
    return FaultMissMap(geometry=geometry, rows=tuple(rows),
                        mechanism_name=mechanism.name)


def _extra_miss_bound(analysis: CacheAnalysis, flow_model: FlowModel,
                      baseline, set_index: int, fault_count: int,
                      srb_classifier, *,
                      relaxed: bool) -> int:
    """Solve one (set, fault count) ILP; returns the miss bound."""
    cfg: CFG = analysis.cfg
    ways = analysis.geometry.ways
    degraded_assoc = ways - fault_count
    degraded = (analysis.classification(degraded_assoc)
                if srb_classifier is None else None)

    objective: dict[int, float] = {}

    def add(coefficients: dict[int, float]) -> None:
        for variable, weight in coefficients.items():
            objective[variable] = objective.get(variable, 0.0) + weight

    for block_id in cfg.block_ids():
        references = baseline.references(block_id)
        fault_free = baseline.of_block(block_id)
        degraded_row = degraded.of_block(block_id) if degraded else None
        full_count = 0
        fm_groups: dict[int, int] = {}
        for position, reference in enumerate(references):
            if reference.set_index != set_index:
                continue
            before = fault_free[position]
            if before.counts_full_misses:
                continue  # already a miss on every execution
            if srb_classifier is not None:
                # All ways faulty: the mechanism's classifier says how
                # the reference behaves on the reliable storage.
                after = srb_classifier(reference)
            else:
                after = degraded_row[position]
            after_chmc, after_scope = after.chmc, after.scope
            if after_chmc is Chmc.ALWAYS_HIT:
                continue
            if after_chmc is Chmc.FIRST_MISS:
                if (before.chmc is Chmc.FIRST_MISS
                        and before.scope == after_scope):
                    continue
                fm_groups[after_scope] = fm_groups.get(after_scope, 0) + 1
            else:
                full_count += 1
        if full_count:
            add(flow_model.block_count_coefficients(block_id,
                                                    float(full_count)))
        for scope, count in fm_groups.items():
            variable = flow_model.fm_group_var(block_id, scope)
            objective[variable] = objective.get(variable, 0.0) + float(count)

    if not objective:
        return 0
    solution = flow_model.program.maximize(objective, relaxed=relaxed)
    if relaxed:
        # LP relaxation of a maximisation: round up to stay sound.
        return int(-(-solution.objective // 1))
    return solution.rounded_objective()
