"""Computing the Fault Miss Map by IPET-like ILPs (paper §II-C, [1]).

For every set ``s`` and fault count ``f`` we maximise, over the IPET
flow polytope, a safe upper bound of the number of *additional* misses
incurred by references to ``s`` when their classification degrades
from the fault-free table (associativity ``W``) to the degraded table
(associativity ``W - f``).  Per-reference accounting, with ``x_b`` the
reference's block execution count and ``entries(L)`` the flow entering
scope ``L``:

=======================  =========================  ====================
fault-free CHMC          degraded CHMC              extra-miss bound
=======================  =========================  ====================
always-hit               always-hit                 0
always-hit / first-miss  first-miss in scope L      min(x_b, entries(L))
always-hit / first-miss  always-miss / unclassified x_b
first-miss in L          first-miss in L (same)     0
always-miss / unclass.   anything                   0 (already misses)
=======================  =========================  ====================

The bound is conservative for degraded first-miss references (the
fault-free misses subtracted are lower-bounded by zero), exactly the
safe direction.

For the SRB mechanism, the all-ways-faulty column first removes every
reference classified always-hit by the SRB analysis (§III-B2); the
remaining references degrade to always-miss.

The sweep is *planned* rather than solved eagerly: references are
partitioned by cache set once, every (set, fault count) cell becomes a
declarative :class:`~repro.solve.request.SolveRequest`, and the
:class:`~repro.solve.planner.SolvePlanner` dedups identical
objectives, prunes columns by monotonicity + LP-relaxation
pre-screening, and optionally batch-solves across a process pool —
with results bit-identical to the direct per-cell sweep.
"""

from __future__ import annotations

import weakref

from repro.analysis import CacheAnalysis
from repro.analysis.chmc import Chmc
from repro.errors import AnalysisError
from repro.fmm.fault_miss_map import FaultMissMap
from repro.ipet.model import FlowModel
from repro.reliability.mechanism import ReliabilityMechanism
from repro.solve.planner import SolvePlanner
from repro.solve.request import SolveRequest

#: Per-set reference partitions, memoised on the baseline table (one
#: per analysis) so repeated mechanisms reuse the single scan.
_PARTITIONS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def compute_fault_miss_map(analysis: CacheAnalysis,
                           mechanism: ReliabilityMechanism, *,
                           flow_model: FlowModel | None = None,
                           relaxed: bool = False,
                           planner: SolvePlanner | None = None
                           ) -> FaultMissMap:
    """Compute the FMM of one program for one reliability mechanism."""
    cfg = analysis.cfg
    geometry = analysis.geometry
    ways = geometry.ways
    if flow_model is None:
        flow_model = FlowModel(cfg, analysis.forest)
    if planner is None:
        planner = flow_model.planner

    fault_counts = mechanism.fault_counts(ways)
    max_fault = max(fault_counts)
    _check_contiguous(mechanism, fault_counts, max_fault)
    all_faulty_filter = mechanism.all_faulty_filter(analysis)

    baseline = analysis.classification(ways)
    partition = _references_by_set(analysis, baseline)

    # Build every cell's request first (cheap, solver untouched); the
    # planner then dedups/prunes/batches the actual solving.
    columns: list[list[SolveRequest | None]] = []
    for set_index in range(geometry.sets):
        per_set: list[SolveRequest | None] = []
        for fault_count in range(1, max_fault + 1):
            srb_classifier = (all_faulty_filter(set_index)
                              if (all_faulty_filter is not None
                                  and fault_count == ways) else None)
            degraded = (analysis.classification(ways - fault_count)
                        if srb_classifier is None else None)
            objective = _column_objective(flow_model, partition[set_index],
                                          degraded, srb_classifier)
            per_set.append(
                SolveRequest.from_objective(objective, relaxed=relaxed,
                                            tag=(set_index, fault_count))
                if objective else None)
        columns.append(per_set)

    if planner.workers > 1:
        planner.prime(request for per_set in columns
                      for request in per_set if request is not None)
    rows = tuple(planner.fmm_row(per_set) for per_set in columns)
    return FaultMissMap(geometry=geometry, rows=rows,
                        mechanism_name=mechanism.name)


def _check_contiguous(mechanism: ReliabilityMechanism,
                      fault_counts: tuple[int, ...],
                      max_fault: int) -> None:
    """Validate column contiguity once (not per set × fault count)."""
    present = frozenset(fault_counts)
    for fault_count in range(1, max_fault + 1):
        if fault_count not in present:
            raise AnalysisError(
                f"mechanism {mechanism.name!r} skips fault count "
                f"{fault_count}; FMM columns must be contiguous")


def _references_by_set(analysis: CacheAnalysis, baseline):
    """Partition degradable references by cache set, once per analysis.

    Returns, per set, ``(block_id, [(position, before, reference)])``
    groups in CFG block order.  References that already count full
    misses in the fault-free table are dropped here — no fault can
    make them worse — so per-column objective construction only walks
    the set's own candidates instead of rescanning the whole program.
    """
    try:
        return _PARTITIONS[baseline]
    except KeyError:
        pass
    partition: list[list[tuple[int, list]]] = [
        [] for _ in range(analysis.geometry.sets)]
    for block_id in analysis.cfg.block_ids():
        references = baseline.references(block_id)
        fault_free = baseline.of_block(block_id)
        for position, reference in enumerate(references):
            before = fault_free[position]
            if before.counts_full_misses:
                continue  # already a miss on every execution
            groups = partition[reference.set_index]
            if not groups or groups[-1][0] != block_id:
                groups.append((block_id, []))
            groups[-1][1].append((position, before, reference))
    _PARTITIONS[baseline] = partition
    return partition


def _column_objective(flow_model: FlowModel, groups, degraded,
                      srb_classifier) -> dict[int, float]:
    """Objective of one (set, fault count) cell over the partition."""
    objective: dict[int, float] = {}

    def add(coefficients: dict[int, float]) -> None:
        for variable, weight in coefficients.items():
            objective[variable] = objective.get(variable, 0.0) + weight

    for block_id, entries in groups:
        degraded_row = (degraded.of_block(block_id)
                        if degraded is not None else None)
        full_count = 0
        fm_groups: dict[int, int] = {}
        for position, before, reference in entries:
            if srb_classifier is not None:
                # All ways faulty: the mechanism's classifier says how
                # the reference behaves on the reliable storage.
                after = srb_classifier(reference)
            else:
                after = degraded_row[position]
            after_chmc, after_scope = after.chmc, after.scope
            if after_chmc is Chmc.ALWAYS_HIT:
                continue
            if after_chmc is Chmc.FIRST_MISS:
                if (before.chmc is Chmc.FIRST_MISS
                        and before.scope == after_scope):
                    continue
                fm_groups[after_scope] = fm_groups.get(after_scope, 0) + 1
            else:
                full_count += 1
        if full_count:
            add(flow_model.block_count_coefficients(block_id,
                                                    float(full_count)))
        for scope, count in fm_groups.items():
            variable = flow_model.fm_group_var(block_id, scope)
            objective[variable] = objective.get(variable, 0.0) + float(count)
    return objective
