"""Frozen solver inputs and persistent solve backends.

``scipy.optimize.milp`` rebuilds its whole model on every call: the
constraint matrix is re-validated, ``Bounds``/``LinearConstraint``
objects re-checked, and a fresh HiGHS instance created and loaded.
For the FMM sweep — hundreds of objectives over one unchanging
polytope — that per-call overhead dominates the actual solve time.

:class:`ProgramSnapshot` freezes a program's constraint system once
into plain numpy arrays (picklable, so process-pool workers can
rebuild a backend from it).  Two backends solve objectives against a
snapshot:

* :class:`HighsBackend` — keeps persistent HiGHS models (one ILP, one
  LP relaxation) loaded via scipy's vendored ``highspy`` bindings and
  swaps only the cost vector between solves.  ~5x less per-solve
  overhead than ``scipy.optimize.milp``.
* :class:`ScipyBackend` — the portable fallback; still benefits from
  the frozen CSC matrix, ``Bounds`` and ``LinearConstraint`` objects.

Both backends produce the same optima (HiGHS solves the model either
way); the equivalence is pinned by tests.  Set
``REPRO_SOLVE_BACKEND=scipy`` to force the fallback.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverError
from repro.testing import faultinject

try:  # scipy's vendored HiGHS bindings are a private, but stable, API.
    from scipy.optimize._highspy import _core as _highs_core
except ImportError:  # pragma: no cover - depends on scipy build
    _highs_core = None

#: Map of scipy.milp status codes to human-readable causes.
_MILP_STATUS = {
    0: "optimal",
    1: "iteration or time limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical difficulties",
}


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment, preferred first."""
    if _highs_core is not None:
        return ("highs", "scipy")
    return ("scipy",)


def selected_backend_name(prefer: str | None = None) -> str:
    """The backend :func:`make_backend` would pick right now."""
    if prefer is None:
        prefer = os.environ.get("REPRO_SOLVE_BACKEND", "highs")
    if prefer == "highs" and _highs_core is not None:
        return "highs"
    return "scipy"


@dataclass(frozen=True)
class ProgramSnapshot:
    """A linear program's constraint system, frozen to numpy arrays.

    Plain data only — picklable, hashable by identity, and cheap to
    ship to process-pool workers exactly once per worker.
    """

    name: str
    col_lower: np.ndarray
    col_upper: np.ndarray
    row_lower: np.ndarray
    row_upper: np.ndarray
    #: Constraint matrix in CSC form.
    matrix_indptr: np.ndarray
    matrix_indices: np.ndarray
    matrix_data: np.ndarray

    @property
    def num_variables(self) -> int:
        return len(self.col_lower)

    @property
    def num_constraints(self) -> int:
        return len(self.row_lower)

    @classmethod
    def from_rows(cls, name: str, lower: list[float], upper: list[float],
                  rows: list[dict[int, float]], row_lb: list[float],
                  row_ub: list[float]) -> "ProgramSnapshot":
        """Freeze the incremental row/bound lists of a program."""
        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []
        for row, coefficients in enumerate(rows):
            for col, value in coefficients.items():
                data.append(value)
                row_idx.append(row)
                col_idx.append(col)
        matrix = sparse.csc_matrix((data, (row_idx, col_idx)),
                                   shape=(len(rows), len(lower)))
        return cls(name=name,
                   col_lower=np.asarray(lower, dtype=np.float64),
                   col_upper=np.asarray(upper, dtype=np.float64),
                   row_lower=np.asarray(row_lb, dtype=np.float64),
                   row_upper=np.asarray(row_ub, dtype=np.float64),
                   matrix_indptr=matrix.indptr.astype(np.int64),
                   matrix_indices=matrix.indices.astype(np.int64),
                   matrix_data=matrix.data.astype(np.float64))

    def csc_matrix(self) -> sparse.csc_matrix:
        return sparse.csc_matrix(
            (self.matrix_data, self.matrix_indices, self.matrix_indptr),
            shape=(self.num_constraints, self.num_variables))


class SolverBackend(ABC):
    """Solves many objectives against one frozen constraint system."""

    def __init__(self, snapshot: ProgramSnapshot) -> None:
        self.snapshot = snapshot

    def solve(self, objective: Mapping[int, float], sign: float,
              relaxed: bool) -> tuple[float, np.ndarray]:
        """Optimise ``sign``-adjusted objective; returns (value, x).

        ``sign=-1`` maximises, ``sign=1`` minimises, matching the
        historical :class:`~repro.ipet.ilp.LinearProgram` convention.
        Template method: the chaos harness's ``solve`` site fires
        here (per-program delays and injected failures), then the
        backend-specific ``_solve`` runs.
        """
        faultinject.solve_hook(self.snapshot.name)
        return self._solve(objective, sign, relaxed)

    @abstractmethod
    def _solve(self, objective: Mapping[int, float], sign: float,
               relaxed: bool) -> tuple[float, np.ndarray]:
        """Backend-specific solve (see :meth:`solve`)."""

    def _cost_vector(self, objective: Mapping[int, float],
                     sign: float) -> np.ndarray:
        c = np.zeros(self.snapshot.num_variables)
        for index, coefficient in objective.items():
            c[index] = sign * coefficient
        return c

    def _fail(self, cause: str, message: str) -> SolverError:
        return SolverError(f"{self.snapshot.name}: solver failed "
                           f"({cause}): {message}")


class ScipyBackend(SolverBackend):
    """Frozen-input path through ``scipy.optimize.milp``."""

    def __init__(self, snapshot: ProgramSnapshot) -> None:
        super().__init__(snapshot)
        n = snapshot.num_variables
        self._bounds = optimize.Bounds(snapshot.col_lower,
                                       snapshot.col_upper)
        self._constraints = []
        if snapshot.num_constraints:
            self._constraints.append(optimize.LinearConstraint(
                snapshot.csc_matrix(), snapshot.row_lower,
                snapshot.row_upper))
        self._integrality = {False: np.ones(n), True: np.zeros(n)}

    def _solve(self, objective: Mapping[int, float], sign: float,
               relaxed: bool) -> tuple[float, np.ndarray]:
        result = optimize.milp(c=self._cost_vector(objective, sign),
                               constraints=self._constraints,
                               bounds=self._bounds,
                               integrality=self._integrality[relaxed])
        if not result.success:
            cause = _MILP_STATUS.get(result.status,
                                     f"status {result.status}")
            raise self._fail(cause, result.message)
        # milp always minimises; undo the sign flip used for maximise.
        return float(result.fun) / sign, result.x


class HighsBackend(SolverBackend):
    """Persistent HiGHS models; only the cost vector changes per solve."""

    def __init__(self, snapshot: ProgramSnapshot) -> None:
        if _highs_core is None:  # pragma: no cover - guarded by factory
            raise SolverError("scipy's highspy bindings are unavailable")
        super().__init__(snapshot)
        self._solvers: dict[bool, object] = {}
        self._indices = np.arange(snapshot.num_variables, dtype=np.int64)

    def _build(self, relaxed: bool):
        core = _highs_core
        snapshot = self.snapshot
        n = snapshot.num_variables
        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = snapshot.num_constraints
        lp.col_cost_ = np.zeros(n)
        lp.col_lower_ = snapshot.col_lower
        lp.col_upper_ = snapshot.col_upper
        lp.row_lower_ = snapshot.row_lower
        lp.row_upper_ = snapshot.row_upper
        lp.a_matrix_.num_col_ = n
        lp.a_matrix_.num_row_ = snapshot.num_constraints
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = snapshot.matrix_indptr
        lp.a_matrix_.index_ = snapshot.matrix_indices
        lp.a_matrix_.value_ = snapshot.matrix_data
        variable_type = core.HighsVarType(0 if relaxed else 1)
        lp.integrality_ = [variable_type] * n
        solver = core._Highs()
        solver.setOptionValue("output_flag", False)
        solver.setOptionValue("log_to_console", False)
        # Mirror scipy.optimize.milp's default of forcing presolve on.
        solver.setOptionValue("presolve", "on")
        status = solver.passModel(lp)
        if status == core.HighsStatus.kError:
            raise self._fail("model load", "HiGHS rejected the model")
        return solver

    def _solver(self, relaxed: bool):
        if relaxed not in self._solvers:
            self._solvers[relaxed] = self._build(relaxed)
        return self._solvers[relaxed]

    def _solve(self, objective: Mapping[int, float], sign: float,
               relaxed: bool) -> tuple[float, np.ndarray]:
        core = _highs_core
        solver = self._solver(relaxed)
        solver.changeColsCost(self.snapshot.num_variables, self._indices,
                              self._cost_vector(objective, sign))
        run_status = solver.run()
        model_status = solver.getModelStatus()
        if (run_status == core.HighsStatus.kError
                or model_status != core.HighsModelStatus.kOptimal):
            raise self._fail(self._cause(model_status),
                             solver.modelStatusToString(model_status))
        value = float(solver.getInfo().objective_function_value)
        values = np.array(solver.getSolution().col_value)
        return value / sign, values

    @staticmethod
    def _cause(model_status) -> str:
        core = _highs_core
        if model_status == core.HighsModelStatus.kInfeasible:
            return "infeasible"
        if model_status in (core.HighsModelStatus.kUnbounded,
                            core.HighsModelStatus.kUnboundedOrInfeasible):
            return "unbounded"
        return f"status {model_status}"

    def __getstate__(self):  # the HiGHS handles never cross processes
        return {"snapshot": self.snapshot}

    def __setstate__(self, state):
        self.__init__(state["snapshot"])


def make_backend(snapshot: ProgramSnapshot,
                 prefer: str | None = None) -> SolverBackend:
    """Build the best available backend for a frozen program.

    ``prefer`` (or the ``REPRO_SOLVE_BACKEND`` environment variable)
    may name ``"highs"`` or ``"scipy"``; unavailable or unknown names
    fall back to the scipy path.
    """
    if selected_backend_name(prefer) == "highs":
        return HighsBackend(snapshot)
    return ScipyBackend(snapshot)


def ceil_bound(value: float) -> int:
    """Round a relaxed maximisation bound up (the sound direction)."""
    return int(math.ceil(value))
