"""The solve planner: dedup, prune, and batch the ILP sweep.

One planner is bound to one shared :class:`LinearProgram` (the flow
polytope) and mediates every objective solved against it:

* **dedup** — results are cached by the request's canonical objective
  key, so symmetric cache sets, repeated degradation patterns, and
  mechanisms sharing degraded classifications are solved once;
* **monotonicity pruning** — FMM rows are non-decreasing in fault
  count, so a column whose cheap LP-relaxation bound does not exceed
  the previous column's value is provably equal to it and the ILP is
  skipped (:meth:`SolvePlanner.fmm_row`);
* **empty short-circuit** — a column with no degradable reference is
  0-penalty and never touches the solver;
* **batching** — :meth:`SolvePlanner.prime` solves the unique
  uncached requests of a whole sweep up front, optionally across a
  ``concurrent.futures`` process pool (workers re-freeze the program
  from a picklable :class:`~repro.solve.backend.ProgramSnapshot`).

All shortcuts are value-preserving: planned results are bit-identical
to solving every (set, fault count) ILP directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SolverError
from repro.solve.backend import ProgramSnapshot, ceil_bound, make_backend
from repro.solve.request import SolveRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ipet.ilp import LinearProgram, Solution


@dataclass
class SolveStats:
    """Counters describing how much solver work the planner avoided."""

    #: FMM cells requested (including empty and pruned ones).
    requests: int = 0
    #: Integer programs actually handed to the backend.
    ilp_solved: int = 0
    #: LP relaxations solved (pre-screens plus relaxed-mode solves).
    lp_solved: int = 0
    #: Requests answered from the canonical-objective cache.
    dedup_hits: int = 0
    #: Cells skipped because their objective was empty.
    pruned_empty: int = 0
    #: Cells skipped because the relaxed bound could not beat the
    #: previous column (monotonicity + LP pre-screen).
    pruned_relaxation: int = 0

    @property
    def dedup_hit_rate(self) -> float:
        solvable = self.requests - self.pruned_empty
        return self.dedup_hits / solvable if solvable else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "ilp_solved": self.ilp_solved,
            "lp_solved": self.lp_solved,
            "dedup_hits": self.dedup_hits,
            "pruned_empty": self.pruned_empty,
            "pruned_relaxation": self.pruned_relaxation,
            "dedup_hit_rate": self.dedup_hit_rate,
        }


class SolvePlanner:
    """Plans every solve against one shared flow polytope."""

    #: Consecutive failed pre-screens tolerated before the planner
    #: stops paying for relaxations on this program (a successful
    #: prune refills the budget).  The screen only pays off when the
    #: flow polytope's LP bounds are near-integral; on programs where
    #: every relaxation has fractional slack it would otherwise add
    #: one wasted LP per solved ILP.
    PRESCREEN_MISS_BUDGET = 8

    def __init__(self, program: "LinearProgram", *,
                 prescreen: bool = True, dedup: bool = True,
                 workers: int = 1) -> None:
        self.program = program
        self.prescreen = prescreen
        self.dedup = dedup
        self.workers = workers
        self.stats = SolveStats()
        self._results: dict[object, int] = {}
        self._relaxed_bounds: dict[object, int] = {}
        self._screen_budget = self.PRESCREEN_MISS_BUDGET
        #: Keys solved ahead of time by :meth:`prime` whose first
        #: consumption must not count as a dedup hit.
        self._primed: set[object] = set()

    # -- single requests -----------------------------------------------
    def solve(self, request: SolveRequest) -> int:
        """Integer bound of one request, through the dedup cache."""
        key = request.key
        if self.dedup and key in self._results:
            if key in self._primed:
                self._primed.discard(key)
            else:
                self.stats.dedup_hits += 1
            return self._results[key]
        value = self._solve_uncached(request)
        if self.dedup:
            self._results[key] = value
        return value

    def relaxed_bound(self, request: SolveRequest) -> int:
        """Ceiling of the LP-relaxation optimum (an ILP upper bound)."""
        key = request.objective
        if key not in self._relaxed_bounds:
            solution = self.program.maximize(request.objective_dict(),
                                             relaxed=True)
            self.stats.lp_solved += 1
            self._relaxed_bounds[key] = ceil_bound(solution.objective)
        return self._relaxed_bounds[key]

    def solve_with_values(self, objective: dict[int, float], *,
                          relaxed: bool = False) -> "Solution":
        """Uncached solve returning the full solution vector.

        Used by the WCET computation, which reads edge counts off the
        critical path; the frozen backend still avoids model rebuilds.
        """
        solution = self.program.maximize(objective, relaxed=relaxed)
        if relaxed:
            self.stats.lp_solved += 1
        else:
            self.stats.ilp_solved += 1
        return solution

    def _solve_uncached(self, request: SolveRequest) -> int:
        solution = self.program.maximize(request.objective_dict(),
                                         relaxed=request.relaxed)
        if request.relaxed:
            self.stats.lp_solved += 1
            # LP relaxation of a maximisation: round up to stay sound.
            return ceil_bound(solution.objective)
        self.stats.ilp_solved += 1
        return solution.rounded_objective()

    # -- FMM row planning ----------------------------------------------
    def fmm_row(self, columns: Sequence[SolveRequest | None]) -> tuple[int, ...]:
        """Plan one FMM row; ``None`` marks an empty-objective column.

        Columns are fault counts 1..max in order; the returned row is
        prefixed with the mandatory 0-fault column.  The row value is
        ``max(column bound, previous value)`` exactly as the direct
        path computes it, which is what makes the relaxation pre-screen
        lossless: when the relaxed upper bound cannot exceed the
        previous value, the max is the previous value.
        """
        row = [0]
        for request in columns:
            previous = row[-1]
            self.stats.requests += 1
            if request is None:
                self.stats.pruned_empty += 1
                row.append(previous)
                continue
            if self.dedup and request.key in self._results:
                if request.key in self._primed:
                    # First fan-out of a batch-solved request: the
                    # solve was already counted by prime().
                    self._primed.discard(request.key)
                else:
                    self.stats.dedup_hits += 1
                row.append(max(self._results[request.key], previous))
                continue
            if (self.prescreen and self._screen_budget > 0
                    and not request.relaxed and previous > 0):
                if self.relaxed_bound(request) <= previous:
                    self.stats.pruned_relaxation += 1
                    self._screen_budget = self.PRESCREEN_MISS_BUDGET
                    row.append(previous)
                    continue
                self._screen_budget -= 1
            value = self._solve_uncached(request)
            if self.dedup:
                self._results[request.key] = value
            row.append(max(value, previous))
        return tuple(row)

    # -- batching --------------------------------------------------------
    def prime(self, requests: Iterable[SolveRequest], *,
              workers: int | None = None) -> None:
        """Batch-solve the unique uncached requests of a sweep.

        With ``workers > 1`` the unique objectives are distributed over
        a process pool; every worker rebuilds a backend from the
        program snapshot once and streams results back.  Results land
        in the dedup cache, so the subsequent row planning is pure
        fan-out.
        """
        if not self.dedup:
            # Primed results land in the dedup cache; without it the
            # row planning would just re-solve everything.
            return
        if workers is None:
            workers = self.workers
        unique: dict[object, SolveRequest] = {}
        for request in requests:
            if request.key not in self._results:
                unique.setdefault(request.key, request)
        if not unique:
            return
        pending = list(unique.values())
        if workers <= 1 or len(pending) == 1:
            for request in pending:
                self._results[request.key] = self._solve_uncached(request)
                self._primed.add(request.key)
            return
        num_variables = self.program.num_variables
        for request in pending:
            # Mirror the in-process index validation; the pooled
            # backend would otherwise let bad indices wrap silently.
            if (request.objective[0][0] < 0
                    or request.objective[-1][0] >= num_variables):
                raise SolverError(
                    f"unknown variable index in request {request.tag}")
        snapshot = self.program.snapshot()
        payload = [(request.objective, request.relaxed)
                   for request in pending]
        chunk = max(1, len(payload) // (workers * 4))
        with ProcessPoolExecutor(
                max_workers=min(workers, len(payload)),
                initializer=_pool_initializer,
                initargs=(snapshot,)) as pool:
            values = list(pool.map(_pool_solve, payload, chunksize=chunk))
        for request, value in zip(pending, values):
            self._results[request.key] = value
            self._primed.add(request.key)
            if request.relaxed:
                self.stats.lp_solved += 1
            else:
                self.stats.ilp_solved += 1


#: Backend rebuilt once per pool worker from the pickled snapshot.
_WORKER_BACKEND = None


def _pool_initializer(snapshot: ProgramSnapshot) -> None:
    global _WORKER_BACKEND
    _WORKER_BACKEND = make_backend(snapshot)


def _pool_solve(item: tuple[tuple[tuple[int, float], ...], bool]) -> int:
    objective, relaxed = item
    value, _ = _WORKER_BACKEND.solve(dict(objective), sign=-1.0,
                                     relaxed=relaxed)
    if relaxed:
        return ceil_bound(value)
    return int(round(value))
