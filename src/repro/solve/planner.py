"""The solve planner: dedup, prune, batch, and persist the ILP sweep.

One planner is bound to one shared :class:`LinearProgram` (the flow
polytope) and mediates every objective solved against it:

* **dedup** — results are cached by the request's canonical objective
  key, so symmetric cache sets, repeated degradation patterns, and
  mechanisms sharing degraded classifications are solved once;
* **persistence** — with a :class:`~repro.solve.store.SolveStore`
  attached, solved objectives are looked up on disk before the backend
  is touched and written through after every solve (including batched
  :meth:`prime` results), so repeated CLI/suite/CI invocations skip
  already-solved ILPs entirely;
* **structural pruning** — FMM rows are non-decreasing in fault count;
  a column whose *structural* upper bound (coefficients times loop
  bound products, no solver involved) cannot exceed the previous
  column's value is provably equal to it and the ILP is skipped;
* **LP pre-screen (opt-in)** — the historical LP-relaxation screen is
  kept behind ``lp_prescreen=True``; it never fires on the paper suite
  (flow-polytope relaxations carry fractional slack) and costs one LP
  per miss, so the free structural bound replaced it as the default;
* **empty short-circuit** — a column with no degradable reference is
  0-penalty and never touches the solver;
* **batching** — :meth:`SolvePlanner.prime` solves the unique
  uncached requests of a whole sweep up front; with ``workers > 1``
  the batch fans out through the pipeline's shared
  :class:`~repro.pipeline.scheduler.PipelineScheduler` pool (workers
  re-freeze the program from a picklable
  :class:`~repro.solve.backend.ProgramSnapshot`, memoised per planner
  token), so solve batches and classification stage tasks share one
  worker pool instead of each planner spinning its own.

All shortcuts are value-preserving: planned results are bit-identical
to solving every (set, fault count) ILP directly.
"""

from __future__ import annotations

import math
import uuid
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SolverError
from repro.solve.backend import ceil_bound
from repro.solve.request import SolveRequest
from repro.solve.store import SolveStore, solve_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ipet.ilp import LinearProgram, Solution


@dataclass
class SolveStats:
    """Counters describing how much solver work the planner avoided."""

    #: FMM cells requested (including empty and pruned ones).
    requests: int = 0
    #: Integer programs actually handed to the backend.
    ilp_solved: int = 0
    #: LP relaxations solved (pre-screens plus relaxed-mode solves).
    lp_solved: int = 0
    #: Requests answered from the canonical-objective cache.
    dedup_hits: int = 0
    #: Requests answered from the persistent cross-run store.
    store_hits: int = 0
    #: Cells skipped because their objective was empty.
    pruned_empty: int = 0
    #: Cells skipped because the structural (loop-bound) upper bound
    #: could not beat the previous column (monotonicity, solver-free).
    pruned_structural: int = 0
    #: Cells skipped by the opt-in LP-relaxation pre-screen.
    pruned_relaxation: int = 0

    @property
    def dedup_hit_rate(self) -> float:
        solvable = self.requests - self.pruned_empty
        return self.dedup_hits / solvable if solvable else 0.0

    @property
    def store_hit_rate(self) -> float:
        """Share of backend-bound solves answered by the store."""
        candidates = self.ilp_solved + self.store_hits
        return self.store_hits / candidates if candidates else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "ilp_solved": self.ilp_solved,
            "lp_solved": self.lp_solved,
            "dedup_hits": self.dedup_hits,
            "store_hits": self.store_hits,
            "pruned_empty": self.pruned_empty,
            "pruned_structural": self.pruned_structural,
            "pruned_relaxation": self.pruned_relaxation,
            "dedup_hit_rate": self.dedup_hit_rate,
            "store_hit_rate": self.store_hit_rate,
        }


class SolvePlanner:
    """Plans every solve against one shared flow polytope."""

    #: Consecutive failed LP pre-screens tolerated before the planner
    #: stops paying for relaxations on this program (a successful
    #: prune refills the budget).  Applies only with
    #: ``lp_prescreen=True``; the structural screen is free and is
    #: never budgeted.
    PRESCREEN_MISS_BUDGET = 8

    def __init__(self, program: "LinearProgram", *,
                 prescreen: bool = True, dedup: bool = True,
                 workers: int = 1, lp_prescreen: bool = False,
                 variable_bound: Callable[[int], float] | None = None
                 ) -> None:
        self.program = program
        self.prescreen = prescreen
        self.lp_prescreen = lp_prescreen
        self.dedup = dedup
        self.workers = workers
        #: Structural upper bound of one variable (used by the default
        #: pre-screen); ``None`` falls back to the program's declared
        #: variable upper bounds.
        self.variable_bound = variable_bound
        #: Solve executor for batched priming: anything with the
        #: :meth:`~repro.pipeline.scheduler.PipelineScheduler
        #: .map_solves` shape.  The estimator wires its pipeline
        #: scheduler here so solve batches land on the same pool as
        #: the classification stages; ``None`` creates one on demand.
        self.executor = None
        #: Keys this planner's snapshot in pool workers' backend memo.
        self._token = uuid.uuid4().hex
        self.stats = SolveStats()
        self._results: dict[object, int] = {}
        self._relaxed_bounds: dict[object, int] = {}
        self._screen_budget = self.PRESCREEN_MISS_BUDGET
        #: Keys solved ahead of time by :meth:`prime` (or served by the
        #: store) whose first consumption must not count as a dedup hit.
        self._primed: set[object] = set()
        self._store: SolveStore | None = None
        self._store_context: str | None = None
        self._store_keys: dict[tuple, str] = {}

    # -- persistent store ----------------------------------------------
    def attach_store(self, store: SolveStore, context: str) -> None:
        """Wire the cross-run store; ``context`` keys this polytope.

        ``context`` must determine the polytope's semantics (CFG
        digest, geometry, timing model — see
        :func:`repro.solve.store.store_context`); the per-request key
        adds the canonical *named* objective and the solver mode, so
        keys are independent of variable creation order.
        """
        self._store = store
        self._store_context = context
        self._store_keys: dict[tuple, str] = {}

    def _named_objective(self, objective) -> list:
        name = self.program.variable_name
        return [(name(index), weight) for index, weight in objective]

    def _store_key(self, request: SolveRequest, kind: str = "value") -> str:
        # Memoised: a cold solve needs the same key twice (miss, then
        # write-through), and some requests recur across FMM rows.
        memo_key = (request.key, kind)
        key = self._store_keys.get(memo_key)
        if key is None:
            key = solve_key(self._store_context,
                            self._named_objective(request.objective),
                            request.relaxed, kind=kind)
            self._store_keys[memo_key] = key
        return key

    def _store_get(self, request: SolveRequest) -> int | None:
        if self._store is None:
            return None
        value = self._store.get(self._store_key(request))
        if value is not None:
            self.stats.store_hits += 1
        return value

    def _store_put(self, request: SolveRequest, value: int) -> None:
        if self._store is not None:
            self._store.put(self._store_key(request), value)

    # -- single requests -----------------------------------------------
    def solve(self, request: SolveRequest) -> int:
        """Integer bound of one request, through the dedup cache."""
        key = request.key
        if self.dedup and key in self._results:
            if key in self._primed:
                self._primed.discard(key)
            else:
                self.stats.dedup_hits += 1
            return self._results[key]
        value = self._store_get(request)
        if value is None:
            value = self._solve_uncached(request)
            self._store_put(request, value)
        if self.dedup:
            self._results[key] = value
        return value

    def relaxed_bound(self, request: SolveRequest) -> int:
        """Ceiling of the LP-relaxation optimum (an ILP upper bound)."""
        key = request.objective
        if key not in self._relaxed_bounds:
            solution = self.program.maximize(request.objective_dict(),
                                             relaxed=True)
            self.stats.lp_solved += 1
            self._relaxed_bounds[key] = ceil_bound(solution.objective)
        return self._relaxed_bounds[key]

    def structural_bound(self, request: SolveRequest) -> float:
        """Solver-free upper bound: coefficients times variable bounds.

        Sound whenever all coefficients are non-negative (FMM and WCET
        objectives are counts); a negative coefficient or an unbounded
        variable yields ``inf``, i.e. "no structural information".
        The bound must dominate what :meth:`_solve_uncached` *reports*:
        with integral coefficients the ILP optimum is integral, so the
        floor is sound; with fractional coefficients the reported
        value is the half-up rounding of the optimum, which can exceed
        the floor — so only half a unit may be absorbed.
        """
        bound_of = self.variable_bound
        if bound_of is None:
            bound_of = self.program.variable_upper
        total = 0.0
        integral = True
        for index, weight in request.objective:
            if weight < 0.0:
                return math.inf
            limit = bound_of(index)
            if limit == math.inf:
                return math.inf
            total += weight * limit
            integral = integral and float(weight).is_integer()
        if integral:
            return math.floor(total)
        # round(optimum) <= floor(optimum + 0.5) <= floor(total + 0.5).
        return math.floor(total + 0.5)

    def solve_with_values(self, objective: dict[int, float], *,
                          relaxed: bool = False) -> "Solution":
        """Solve returning the full solution vector, store-backed.

        Used by the WCET computation, which reads edge counts off the
        critical path.  With a store attached, the whole solution
        (objective value plus the non-zero variables, recorded by
        *name*) round-trips through an artefact entry, so a warm rerun
        of the pipeline performs zero backend solves even for the
        fault-free WCET.
        """
        key = None
        if self._store is not None:
            request = SolveRequest.from_objective(objective,
                                                  relaxed=relaxed)
            key = self._store_key(request, kind="solution")
            artefact = self._store.get_artefact(key)
            if artefact is not None:
                self.stats.store_hits += 1
                return self._solution_from_artefact(artefact, relaxed)
        solution = self.program.maximize(objective, relaxed=relaxed)
        if relaxed:
            self.stats.lp_solved += 1
        else:
            self.stats.ilp_solved += 1
        if key is not None:
            self._store.put_artefact(key, self._solution_artefact(solution))
        return solution

    def _solution_artefact(self, solution: "Solution") -> dict:
        name = self.program.variable_name
        values = {name(index): float(value)
                  for index, value in enumerate(solution.values)
                  if value != 0.0}
        return {"objective": float(solution.objective), "values": values}

    def _solution_from_artefact(self, artefact: dict,
                                relaxed: bool) -> "Solution":
        from repro.ipet.ilp import Solution

        index_of = {self.program.variable_name(index): index
                    for index in range(self.program.num_variables)}
        values = np.zeros(self.program.num_variables)
        for name, value in artefact["values"].items():
            index = index_of.get(name)
            # Names absent from the current program belong to variables
            # another consumer added later; they cannot influence this
            # objective's optimum and are safely dropped.
            if index is not None:
                values[index] = value
        return Solution(objective=float(artefact["objective"]),
                        values=values, relaxed=relaxed)

    def _solve_uncached(self, request: SolveRequest) -> int:
        solution = self.program.maximize(request.objective_dict(),
                                         relaxed=request.relaxed)
        if request.relaxed:
            self.stats.lp_solved += 1
            # LP relaxation of a maximisation: round up to stay sound.
            return ceil_bound(solution.objective)
        self.stats.ilp_solved += 1
        return solution.rounded_objective()

    # -- FMM row planning ----------------------------------------------
    def fmm_row(self, columns: Sequence[SolveRequest | None]) -> tuple[int, ...]:
        """Plan one FMM row; ``None`` marks an empty-objective column.

        Columns are fault counts 1..max in order; the returned row is
        prefixed with the mandatory 0-fault column.  The row value is
        ``max(column bound, previous value)`` exactly as the direct
        path computes it, which is what makes both pre-screens
        lossless: when an upper bound of the cell cannot exceed the
        previous value, the max is the previous value.
        """
        row = [0]
        for request in columns:
            previous = row[-1]
            self.stats.requests += 1
            if request is None:
                self.stats.pruned_empty += 1
                row.append(previous)
                continue
            if self.dedup and request.key in self._results:
                if request.key in self._primed:
                    # First fan-out of a batch-solved request: the
                    # solve was already counted by prime().
                    self._primed.discard(request.key)
                else:
                    self.stats.dedup_hits += 1
                row.append(max(self._results[request.key], previous))
                continue
            value = self._store_get(request)
            if value is not None:
                if self.dedup:
                    self._results[request.key] = value
                row.append(max(value, previous))
                continue
            if self.prescreen and not request.relaxed and previous > 0:
                if self.structural_bound(request) <= previous:
                    self.stats.pruned_structural += 1
                    row.append(previous)
                    continue
                if self.lp_prescreen and self._screen_budget > 0:
                    if self.relaxed_bound(request) <= previous:
                        self.stats.pruned_relaxation += 1
                        self._screen_budget = self.PRESCREEN_MISS_BUDGET
                        row.append(previous)
                        continue
                    self._screen_budget -= 1
            value = self._solve_uncached(request)
            self._store_put(request, value)
            if self.dedup:
                self._results[request.key] = value
            row.append(max(value, previous))
        return tuple(row)

    # -- batching --------------------------------------------------------
    def prime(self, requests: Iterable[SolveRequest], *,
              workers: int | None = None) -> None:
        """Batch-solve the unique uncached requests of a sweep.

        With ``workers > 1`` the unique objectives are distributed over
        a process pool; every worker rebuilds a backend from the
        program snapshot once and streams results back.  Results land
        in the dedup cache — and are written through to the persistent
        store — so the subsequent row planning is pure fan-out.
        Requests already persisted by an earlier run are answered from
        the store and never reach the pool.
        """
        if not self.dedup:
            # Primed results land in the dedup cache; without it the
            # row planning would just re-solve everything.
            return
        if workers is None:
            workers = self.workers
        unique: dict[object, SolveRequest] = {}
        for request in requests:
            if request.key not in self._results:
                unique.setdefault(request.key, request)
        pending = []
        for request in unique.values():
            value = self._store_get(request)
            if value is not None:
                self._results[request.key] = value
                self._primed.add(request.key)
            else:
                pending.append(request)
        if not pending:
            return
        if workers <= 1 or len(pending) == 1:
            for request in pending:
                value = self._solve_uncached(request)
                self._store_put(request, value)
                self._results[request.key] = value
                self._primed.add(request.key)
            return
        num_variables = self.program.num_variables
        for request in pending:
            # Mirror the in-process index validation; the pooled
            # backend would otherwise let bad indices wrap silently.
            if (request.objective[0][0] < 0
                    or request.objective[-1][0] >= num_variables):
                raise SolverError(
                    f"unknown variable index in request {request.tag}")
        snapshot = self.program.snapshot()
        payload = [(request.objective, request.relaxed)
                   for request in pending]
        chunk = max(1, len(payload) // (workers * 4))
        executor = self.executor
        if executor is None:
            # Lazy import: repro.solve is imported by the pipeline's
            # stage modules; creating the scheduler on first pooled
            # prime keeps the package graph acyclic.
            from repro.pipeline.scheduler import PipelineScheduler
            executor = self.executor = PipelineScheduler(workers=workers)
        values = executor.map_solves(self._token, snapshot, payload,
                                     chunksize=chunk, workers=workers)
        for request, value in zip(pending, values):
            self._results[request.key] = value
            self._primed.add(request.key)
            self._store_put(request, value)
            if request.relaxed:
                self.stats.lp_solved += 1
            else:
                self.stats.ilp_solved += 1
