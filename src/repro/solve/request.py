"""Declarative solve requests with canonical deduplication keys.

A request describes one maximisation over the shared flow polytope.
The objective is stored as a tuple of ``(variable index, weight)``
pairs sorted by index, so two requests built from different cache
sets, fault counts or mechanisms compare equal exactly when their
objectives are the same linear function — which makes the planner's
dedup cache a plain dictionary lookup.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import SolverError

#: Canonical objective representation: index-sorted coefficient pairs.
ObjectiveKey = tuple[tuple[int, float], ...]


def canonical_objective(objective: Mapping[int, float]) -> ObjectiveKey:
    """Sort a coefficient map into the canonical dedup form."""
    return tuple(sorted(objective.items()))


@dataclass(frozen=True)
class SolveRequest:
    """One planned maximisation over the shared linear program.

    ``tag`` carries caller-side context (e.g. ``(set, fault count)``)
    for diagnostics only; it does not participate in identity, so
    symmetric sets still dedup onto one solve.
    """

    objective: ObjectiveKey
    #: Solve the LP relaxation instead of the ILP (sound for a max).
    relaxed: bool = False
    tag: tuple = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.objective:
            raise SolverError(
                "empty solve request; empty objectives short-circuit to 0 "
                "and must not reach the planner as requests")

    @classmethod
    def from_objective(cls, objective: Mapping[int, float], *,
                       relaxed: bool = False,
                       tag: tuple = ()) -> "SolveRequest":
        return cls(objective=canonical_objective(objective),
                   relaxed=relaxed, tag=tag)

    @property
    def key(self) -> tuple[ObjectiveKey, bool]:
        """Dedup cache key: same key implies the same optimum."""
        return (self.objective, self.relaxed)

    def objective_dict(self) -> dict[int, float]:
        return dict(self.objective)
