"""Offline compaction of the persistent store shards (``repro cache gc``).

Both persistent stores — the solve store (``v<N>/``) and the
classification store (``classify-v<N>/``) — are append-only: every
writer process opens its own JSONL shard and entries are never
rewritten, so a long-lived cache directory accumulates shards and
duplicate lines (two concurrent cold runs may both append the same
deterministic entry).  This module folds each schema directory's
shards into **one** sorted, checksummed shard:

* every line is validated exactly like the stores do on load (JSON
  shape + CRC-32) — corrupt or truncated lines are dropped for good;
* duplicates collapse to the *last* occurrence, matching the stores'
  load semantics (later lines overwrite earlier ones);
* surviving entries are rewritten sorted by (kind, key) into
  ``shard-00000000-gc.jsonl`` — the name sorts first in the stores'
  shard glob — via a temporary file and an atomic rename, after which
  the old shards are unlinked.

Compaction is *offline* maintenance: run it while no writer is
appending (a writer racing the unlink loses only re-derivable,
deterministic entries, never correctness, but its work is wasted).
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass

from repro.solve.store import (SolveStore, encode_shard_line,
                               parse_shard_line)

#: The compacted shard; sorts before ``shard-<pid>-…`` writer shards.
GC_SHARD_NAME = "shard-00000000-gc.jsonl"


@dataclass(frozen=True)
class CompactionReport:
    """What compaction did (or would do) to one schema directory."""

    directory: str
    shards_before: int
    lines_before: int
    bytes_before: int
    entries: int
    duplicates_dropped: int
    corrupt_dropped: int
    bytes_after: int
    dry_run: bool

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after

    def format_row(self) -> str:
        action = "would fold" if self.dry_run else "folded"
        return (f"{self.directory}: {action} {self.shards_before} shard(s), "
                f"{self.lines_before} line(s) -> {self.entries} entr(ies); "
                f"dropped {self.duplicates_dropped} duplicate(s), "
                f"{self.corrupt_dropped} corrupt; "
                f"{self.bytes_before} -> {self.bytes_after} bytes "
                f"({self.bytes_saved:+d} saved)")


def compact_shard_dir(shard_dir: str | os.PathLike, *,
                      dry_run: bool = False) -> CompactionReport | None:
    """Fold one schema directory's shards; ``None`` if none exist."""
    shard_dir = pathlib.Path(shard_dir)
    shards = sorted(shard_dir.glob("shard-*.jsonl"))
    if not shards:
        return None
    entries: dict[tuple[str, str], object] = {}
    lines_before = bytes_before = corrupt = duplicates = 0
    for shard in shards:
        try:
            text = shard.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        bytes_before += len(text.encode("utf-8"))
        for line in text.splitlines():
            if not line.strip():
                continue
            lines_before += 1
            parsed = parse_shard_line(line)
            if parsed is None:
                corrupt += 1
                continue
            kind, key, value = parsed
            if (kind, key) in entries:
                duplicates += 1
            entries[(kind, key)] = value  # last occurrence wins, as on load

    compacted = "".join(encode_shard_line(kind, key, entries[(kind, key)])
                        for kind, key in sorted(entries))
    bytes_after = len(compacted.encode("utf-8"))

    if not dry_run:
        tmp = shard_dir / f".gc-tmp-{os.getpid()}"
        tmp.write_text(compacted, encoding="utf-8")
        os.replace(tmp, shard_dir / GC_SHARD_NAME)
        for shard in shards:
            if shard.name != GC_SHARD_NAME:
                try:
                    shard.unlink()
                except OSError:
                    pass
    return CompactionReport(
        directory=str(shard_dir), shards_before=len(shards),
        lines_before=lines_before, bytes_before=bytes_before,
        entries=len(entries), duplicates_dropped=duplicates,
        corrupt_dropped=corrupt, bytes_after=bytes_after, dry_run=dry_run)


def collect_shard_dirs(root: str | os.PathLike) -> list[pathlib.Path]:
    """Every schema directory under one cache root, both stores."""
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    return sorted(path for path in root.iterdir()
                  if path.is_dir()
                  and (path.name.startswith("v")
                       or path.name.startswith("classify-v")))


def gc_cache(cache: str | None = None, *,
             dry_run: bool = False) -> list[CompactionReport]:
    """Compact the cache directory selected like the stores select it.

    ``cache`` follows the ``REPRO_SOLVE_CACHE`` convention (``None``
    defers to the environment / default directory; ``"off"`` means
    there is nothing to compact).
    """
    store = SolveStore.resolve(cache)
    if store is None:
        return []
    reports = []
    for shard_dir in collect_shard_dirs(store.root):
        report = compact_shard_dir(shard_dir, dry_run=dry_run)
        if report is not None:
            reports.append(report)
    return reports
