"""Offline maintenance of the persistent store shards.

``repro cache gc`` compacts a cache directory in place;
``repro cache export`` / ``repro cache import`` move the gc'd
canonical shards between machines as one tarball, so CI farms and
developer boxes can seed each other's caches — entries are
content-addressed, so an import *merges* (new keys are appended as a
fresh shard, existing keys are never clobbered).

The persistent stores — the solve store (``v<N>/``), the
classification store (``classify-v<N>/``) and the estimation cell
store (``cells-v<N>/``) — are append-only: every
writer process opens its own JSONL shard and entries are never
rewritten, so a long-lived cache directory accumulates shards and
duplicate lines (two concurrent cold runs may both append the same
deterministic entry).  This module folds each schema directory's
shards into **one** sorted, checksummed shard:

* every line is validated exactly like the stores do on load (JSON
  shape + CRC-32) — corrupt or truncated lines are dropped for good;
* duplicates collapse to the *last* occurrence, matching the stores'
  load semantics (later lines overwrite earlier ones);
* surviving entries are rewritten sorted by (kind, key) into
  ``shard-00000000-gc.jsonl`` — the name sorts first in the stores'
  shard glob — via a temporary file and an atomic rename, after which
  the old shards are unlinked.

Compaction is *offline* maintenance: run it while no writer is
appending (a writer racing the unlink loses only re-derivable,
deterministic entries, never correctness, but its work is wasted).
"""

from __future__ import annotations

import io
import os
import pathlib
import tarfile
import time
import uuid
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.solve.store import (SolveStore, encode_shard_line,
                               parse_shard_line)

#: The compacted shard; sorts before ``shard-<pid>-…`` writer shards.
GC_SHARD_NAME = "shard-00000000-gc.jsonl"


def _replace_atomic(tmp: pathlib.Path, target: pathlib.Path, *,
                    fsync: bool = False) -> None:
    """Publish ``tmp`` as ``target`` via ``os.replace``.

    With ``fsync`` the file's bytes are flushed to stable storage
    before the rename and the directory entry after it, so a crash
    leaves either the old state or the complete new one — never a
    rename pointing at unwritten data.  Without it the rename is still
    atomic against concurrent readers, just not against power loss.
    """
    if fsync:
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    os.replace(tmp, target)
    if fsync:
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


@dataclass(frozen=True)
class CompactionReport:
    """What compaction did (or would do) to one schema directory."""

    directory: str
    shards_before: int
    lines_before: int
    bytes_before: int
    entries: int
    duplicates_dropped: int
    corrupt_dropped: int
    bytes_after: int
    dry_run: bool

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after

    def format_row(self) -> str:
        action = "would fold" if self.dry_run else "folded"
        return (f"{self.directory}: {action} {self.shards_before} shard(s), "
                f"{self.lines_before} line(s) -> {self.entries} entr(ies); "
                f"dropped {self.duplicates_dropped} duplicate(s), "
                f"{self.corrupt_dropped} corrupt; "
                f"{self.bytes_before} -> {self.bytes_after} bytes "
                f"({self.bytes_saved:+d} saved)")


@dataclass(frozen=True)
class _FoldedShards:
    """Validated, deduplicated content of one schema directory."""

    shards: tuple[pathlib.Path, ...]
    entries: dict[tuple[str, str], object]
    lines: int
    bytes: int
    duplicates: int
    corrupt: int

    def canonical_text(self) -> str:
        """The entries re-encoded sorted by (kind, key) — the gc'd
        canonical shard both compaction and export write."""
        return "".join(
            encode_shard_line(kind, key, self.entries[(kind, key)])
            for kind, key in sorted(self.entries))


def _fold_shards(shard_dir: pathlib.Path) -> _FoldedShards | None:
    """Read and validate every shard of one schema directory."""
    shards = sorted(shard_dir.glob("shard-*.jsonl"))
    if not shards:
        return None
    entries: dict[tuple[str, str], object] = {}
    lines = size = corrupt = duplicates = 0
    for shard in shards:
        try:
            text = shard.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        size += len(text.encode("utf-8"))
        for line in text.splitlines():
            if not line.strip():
                continue
            lines += 1
            parsed = parse_shard_line(line)
            if parsed is None:
                corrupt += 1
                continue
            kind, key, value = parsed
            if (kind, key) in entries:
                duplicates += 1
            entries[(kind, key)] = value  # last occurrence wins, as on load
    return _FoldedShards(shards=tuple(shards), entries=entries,
                         lines=lines, bytes=size, duplicates=duplicates,
                         corrupt=corrupt)


def compact_shard_dir(shard_dir: str | os.PathLike, *,
                      dry_run: bool = False,
                      fsync: bool = False) -> CompactionReport | None:
    """Fold one schema directory's shards; ``None`` if none exist."""
    shard_dir = pathlib.Path(shard_dir)
    folded = _fold_shards(shard_dir)
    if folded is None:
        return None
    shards = folded.shards
    compacted = folded.canonical_text()
    bytes_after = len(compacted.encode("utf-8"))

    if not dry_run:
        tmp = shard_dir / f".gc-tmp-{os.getpid()}"
        tmp.write_text(compacted, encoding="utf-8")
        _replace_atomic(tmp, shard_dir / GC_SHARD_NAME, fsync=fsync)
        for shard in shards:
            if shard.name != GC_SHARD_NAME:
                try:
                    shard.unlink()
                except OSError:
                    pass
    return CompactionReport(
        directory=str(shard_dir), shards_before=len(shards),
        lines_before=folded.lines, bytes_before=folded.bytes,
        entries=len(folded.entries), duplicates_dropped=folded.duplicates,
        corrupt_dropped=folded.corrupt, bytes_after=bytes_after,
        dry_run=dry_run)


def collect_shard_dirs(root: str | os.PathLike) -> list[pathlib.Path]:
    """Every schema directory under one cache root, all three stores."""
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    return sorted(path for path in root.iterdir()
                  if path.is_dir() and _is_schema_dir_name(path.name))


@dataclass(frozen=True)
class ExportReport:
    """One schema directory packed into a cache tarball."""

    directory: str
    entries: int
    bytes: int

    def format_row(self) -> str:
        return (f"{self.directory}: packed {self.entries} entr(ies), "
                f"{self.bytes} bytes")


@dataclass(frozen=True)
class ImportReport:
    """One schema directory merged from a cache tarball."""

    directory: str
    entries_seen: int
    imported: int
    already_present: int
    conflicts_kept_local: int
    corrupt_dropped: int

    def format_row(self) -> str:
        return (f"{self.directory}: imported {self.imported} of "
                f"{self.entries_seen} entr(ies) "
                f"({self.already_present} already present, "
                f"{self.conflicts_kept_local} conflicting kept local, "
                f"{self.corrupt_dropped} corrupt dropped)")


def export_cache(tarball: str | os.PathLike,
                 cache: str | None = None, *,
                 fsync: bool = False) -> list[ExportReport]:
    """Pack the gc'd canonical shards of every store into a tarball.

    The live cache directory is read, validated and folded exactly
    like ``repro cache gc`` would (corrupt lines dropped, duplicates
    collapsed last-wins) but left untouched; the tarball holds one
    canonical sorted shard per schema directory, so importing peers
    get the same bytes however fragmented the exporter's store was.

    The tarball is built in a same-directory temporary file and
    published by an atomic rename: a crashed or killed export never
    leaves a truncated archive at the target path (a reader sees the
    previous archive or the complete new one, nothing in between).
    """
    store = SolveStore.resolve(cache)
    if store is None:
        raise ConfigurationError(
            "cannot export: the persistent cache is disabled "
            "(REPRO_CACHE=off)")
    reports = []
    target = pathlib.Path(tarball)
    tmp = target.parent / f".{target.name}.tmp-{os.getpid()}"
    try:
        with tarfile.open(tmp, "w:gz") as archive:
            for shard_dir in collect_shard_dirs(store.root):
                folded = _fold_shards(shard_dir)
                if folded is None:
                    continue
                payload = folded.canonical_text().encode("utf-8")
                member = tarfile.TarInfo(
                    name=f"{shard_dir.name}/{GC_SHARD_NAME}")
                member.size = len(payload)
                member.mtime = int(time.time())
                archive.addfile(member, io.BytesIO(payload))
                reports.append(ExportReport(directory=shard_dir.name,
                                            entries=len(folded.entries),
                                            bytes=len(payload)))
        _replace_atomic(tmp, target, fsync=fsync)
    finally:
        tmp.unlink(missing_ok=True)
    return reports


def import_cache(tarball: str | os.PathLike,
                 cache: str | None = None, *,
                 fsync: bool = False) -> list[ImportReport]:
    """Merge a cache tarball into the local store, content-addressed.

    Every shard line of the archive is validated like the stores do on
    load (JSON shape + CRC-32); entries whose (kind, key) the local
    store already holds are skipped — an import can add knowledge but
    never clobber it (conflicting values for the same key keep the
    local entry; content-addressed keys make that a corruption signal,
    not a merge policy).  Novel entries are appended as one fresh
    writer shard per schema directory, so a concurrent reader sees
    either none or all of them and ``repro cache gc`` folds them in
    later.
    """
    store = SolveStore.resolve(cache)
    if store is None:
        raise ConfigurationError(
            "cannot import: the persistent cache is disabled "
            "(REPRO_CACHE=off)")
    root = pathlib.Path(store.root)
    incoming: dict[str, dict[tuple[str, str], object]] = {}
    corrupt: dict[str, int] = {}
    with tarfile.open(tarball, "r:*") as archive:
        for member in archive.getmembers():
            if not member.isfile():
                continue
            parts = pathlib.PurePosixPath(member.name).parts
            # Only <schema-dir>/<shard>.jsonl members are meaningful;
            # anything else (paths escaping the root included) is
            # ignored rather than extracted.
            if len(parts) != 2 or not _is_schema_dir_name(parts[0]) \
                    or not parts[1].endswith(".jsonl"):
                continue
            handle = archive.extractfile(member)
            if handle is None:
                continue
            text = handle.read().decode("utf-8", errors="replace")
            entries = incoming.setdefault(parts[0], {})
            for line in text.splitlines():
                if not line.strip():
                    continue
                parsed = parse_shard_line(line)
                if parsed is None:
                    corrupt[parts[0]] = corrupt.get(parts[0], 0) + 1
                    continue
                kind, key, value = parsed
                entries[(kind, key)] = value
    reports = []
    for directory in sorted(incoming):
        entries = incoming[directory]
        shard_dir = root / directory
        local = _fold_shards(shard_dir) if shard_dir.is_dir() else None
        existing = local.entries if local is not None else {}
        novel: list[str] = []
        already = conflicts = 0
        for (kind, key), value in sorted(entries.items()):
            if (kind, key) in existing:
                if existing[(kind, key)] == value:
                    already += 1
                else:
                    conflicts += 1
                continue
            novel.append(encode_shard_line(kind, key, value))
        if novel:
            shard_dir.mkdir(parents=True, exist_ok=True)
            name = (f"shard-{time.time_ns():020d}-{os.getpid()}-"
                    f"{uuid.uuid4().hex[:8]}-import.jsonl")
            tmp = shard_dir / f".import-tmp-{os.getpid()}"
            tmp.write_text("".join(novel), encoding="utf-8")
            _replace_atomic(tmp, shard_dir / name, fsync=fsync)
        reports.append(ImportReport(
            directory=directory, entries_seen=len(entries),
            imported=len(novel), already_present=already,
            conflicts_kept_local=conflicts,
            corrupt_dropped=corrupt.get(directory, 0)))
    _invalidate_handles(root)
    return reports


def _invalidate_handles(root: pathlib.Path) -> None:
    """Force memoised store handles on ``root`` to rescan their shards,
    so an import is visible to the importing process, not only to the
    next one."""
    from repro.analysis.store import ClassificationStore
    from repro.pipeline.cellstore import CellStore

    for handle in (SolveStore.resolve(str(root)),
                   ClassificationStore.resolve(str(root)),
                   CellStore.resolve(str(root))):
        if handle is not None:
            handle.invalidate()


def _is_schema_dir_name(name: str) -> bool:
    """A plain ``v<N>`` / ``classify-v<N>`` / ``cells-v<N>`` directory
    name (no path tricks — this gates what an archive may write into
    the cache)."""
    if "/" in name or "\\" in name or name in (".", ".."):
        return False
    for prefix in ("classify-v", "cells-v", "v"):
        if name.startswith(prefix):
            return name[len(prefix):].isdigit()
    return False


def gc_cache(cache: str | None = None, *,
             dry_run: bool = False,
             fsync: bool = False) -> list[CompactionReport]:
    """Compact the cache directory selected like the stores select it.

    ``cache`` follows the ``REPRO_CACHE`` convention (``None``
    defers to the environment / default directory; ``"off"`` means
    there is nothing to compact).  ``fsync`` makes each published
    shard durable against power loss, not just torn writes.
    """
    store = SolveStore.resolve(cache)
    if store is None:
        return []
    reports = []
    for shard_dir in collect_shard_dirs(store.root):
        report = compact_shard_dir(shard_dir, dry_run=dry_run,
                                   fsync=fsync)
        if report is not None:
            reports.append(report)
    return reports
