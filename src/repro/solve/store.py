"""Persistent, content-addressed solve cache shared across runs.

The in-process :class:`~repro.solve.planner.SolvePlanner` dedups the
ILP sweep of *one* estimator; this store extends the dedup across
processes, CLI invocations, test sessions and CI runs.  Entries are
keyed by a SHA-256 digest of everything that determines a solve's
outcome:

* the store schema version (bumped on any format or semantics change);
* the CFG digest (blocks, instruction addresses, edges, loop bounds —
  see :meth:`repro.cfg.graph.CFG.digest`);
* the cache geometry and timing model of the estimation run;
* the canonical objective, expressed over *variable names* (not
  indices), so the key is independent of variable creation order;
* the solver mode (exact ILP vs LP relaxation).

Storage is a directory of append-only JSONL shard files, one shard per
writer process, under a schema-versioned subdirectory.  Appends are
single ``write`` calls of one line each, so concurrent writers — e.g.
:meth:`SolvePlanner.prime` pool workers or parallel ``run_suite``
benchmark tasks — never corrupt each other; at worst the same entry is
recorded twice, which is harmless because values are deterministic.
Every line carries a CRC-32 of its payload: truncated tails (a killed
writer), garbage bytes and checksum mismatches are skipped on load and
simply re-solved, never propagated.

Control knob: ``REPRO_CACHE`` (canonical; ``REPRO_SOLVE_CACHE`` is a
deprecated alias, honoured with a one-time warning) —

* unset: the default user cache directory
  (``$XDG_CACHE_HOME``/``~/.cache`` ``/repro/solve``);
* ``off`` (or ``0``/``none``): persistent caching disabled;
* any other value: used as the store directory.

``EstimatorConfig(cache=...)`` / ``--cache`` override the environment
per run.  ``REPRO_REMOTE_STORE=<url>`` / ``--remote`` additionally
layers a :class:`~repro.remote.client.RemoteStoreClient` under every
resolved store: local misses fetch from a shard server, local writes
push back, and a dead or flaky server degrades to local-only
(:mod:`repro.remote`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
import uuid
import warnings
import zlib
from dataclasses import dataclass, field

from repro.testing import faultinject

#: Bump on ANY change to the entry format, the key derivation, or the
#: meaning of stored values.  Old entries live under another ``v<N>``
#: subdirectory and are never even loaded.
SCHEMA_VERSION = 1

#: Environment variable controlling the default store location.
CACHE_ENV = "REPRO_CACHE"

#: Pre-unification name of :data:`CACHE_ENV`; honoured as a
#: deprecated alias because the knob has governed all three stores
#: (not just the solve store) since the classification store landed.
LEGACY_CACHE_ENV = "REPRO_SOLVE_CACHE"

#: Environment variable selecting a remote shard server (the client
#: lives in :mod:`repro.remote.client`; the name is defined here so
#: resolution can check it without importing that module).
REMOTE_ENV = "REPRO_REMOTE_STORE"

#: Values of :data:`CACHE_ENV` that disable persistence entirely.
_OFF_VALUES = frozenset({"off", "0", "none", "disabled"})

_WARNED_LEGACY = False


def cache_env_value() -> str | None:
    """The cache root configured in the environment, if any.

    ``REPRO_CACHE`` is canonical and wins; ``REPRO_SOLVE_CACHE`` is
    consulted as a deprecated fallback, warning once per process.
    """
    global _WARNED_LEGACY
    value = os.environ.get(CACHE_ENV)
    if value is not None:
        return value
    value = os.environ.get(LEGACY_CACHE_ENV)
    if value is not None and not _WARNED_LEGACY:
        _WARNED_LEGACY = True
        warnings.warn(
            f"{LEGACY_CACHE_ENV} is deprecated; set {CACHE_ENV} instead",
            DeprecationWarning, stacklevel=3)
    return value


def attach_remote(store: "ShardedStore") -> "ShardedStore":
    """(Re-)attach the remote client selected by the environment.

    Runs on every ``resolve()`` so long-lived processes and tests can
    flip ``REPRO_REMOTE_STORE`` between runs; client handles are
    memoised per URL on their side.  The import is lazy both to avoid
    the ``repro.pipeline`` import cycle and to keep purely local runs
    from paying for the remote stack.
    """
    url = os.environ.get(REMOTE_ENV, "")
    if not url.strip() or url.strip().lower() in _OFF_VALUES:
        store.remote = None
        return store
    from repro.remote.client import RemoteStoreClient
    store.remote = RemoteStoreClient.resolve()
    return store


def default_cache_dir() -> pathlib.Path:
    """The XDG-style default store location."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(base) if base else pathlib.Path.home() / ".cache"
    return root / "repro" / "solve"


def solve_key(context: str, named_objective, relaxed: bool,
              kind: str = "value") -> str:
    """Content address of one solve.

    ``named_objective`` is an iterable of ``(variable name, weight)``
    pairs; it is canonicalised (sorted by name) here so callers may
    pass any order.  ``kind`` separates integer optima (``"value"``)
    from full solution vectors (``"solution"``).
    """
    payload = json.dumps(
        [SCHEMA_VERSION, kind, context, sorted(named_objective),
         bool(relaxed)],
        separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def store_context(cfg_digest: str, geometry, timing) -> str:
    """The per-estimator key prefix of the ISSUE/ROADMAP design.

    Keys a solve by (CFG digest, geometry, timing model); the schema
    version, canonical objective and solver mode are folded in by
    :func:`solve_key`.
    """
    return json.dumps({
        "cfg": cfg_digest,
        "geometry": [geometry.sets, geometry.ways, geometry.block_bytes],
        "timing": [timing.hit_cycles, timing.memory_cycles],
    }, sort_keys=True, separators=(",", ":"))


@dataclass
class StoreStats:
    """Load/serve counters of one store handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries loaded from shards (after dedup across shards).
    loaded: int = 0
    #: Lines dropped on load: bad JSON, bad checksum, missing fields.
    corrupt_skipped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "loaded": self.loaded,
                "corrupt_skipped": self.corrupt_skipped}


def _checksum(kind: str, key: str, value_text: str) -> int:
    return zlib.crc32(f"{kind}|{key}|{value_text}".encode("utf-8"))


def encode_shard_line(kind: str, key: str, value: object) -> str:
    """One checksummed shard line (shared by both stores and gc).

    The canonical value text feeds both the checksum and the line
    itself — dumping the value once, not twice — so the line is
    assembled around it.  The splice is byte-identical to
    ``json.dumps({"c": ..., "k": ..., "t": ..., "v": value},
    sort_keys=True, separators=(",", ":"))``: the keys are already in
    sorted order and the value occupies one canonical-form slot.
    """
    value_text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    checksum = _checksum(kind, key, value_text)
    return (f'{{"c":{checksum},"k":{json.dumps(key)},'
            f'"t":{json.dumps(kind)},"v":{value_text}}}\n')


def parse_shard_line(line: str) -> tuple[str, str, object] | None:
    """Validate one shard line; ``None`` when unreadable.

    The single definition of what counts as a valid line — JSON shape
    plus CRC-32 over (kind, key, canonical value) — used by the solve
    store, the classification store and ``repro cache gc``, so the
    three readers can never drift apart in what they accept.
    """
    line = line.strip()
    if not line:
        return None
    try:
        entry = json.loads(line)
        kind, key, value, checksum = (entry["t"], entry["k"], entry["v"],
                                      entry["c"])
    except (ValueError, TypeError, KeyError):
        return None
    if not isinstance(kind, str) or not isinstance(key, str):
        return None
    value_text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    if checksum != _checksum(kind, key, value_text):
        return None
    return kind, key, value


#: Handles memoised by :meth:`SolveStore.resolve`, keyed by absolute
#: store directory.  Forked pool workers inherit the open shard file
#: descriptors, which stays safe because appends are single O_APPEND
#: writes of whole lines.
_RESOLVED: dict[str, "SolveStore"] = {}


class ShardedStore:
    """Shared shard lifecycle of the persistent stores.

    One schema-versioned directory of append-only JSONL shards, one
    shard per writer process, every line checksummed
    (:func:`encode_shard_line` / :func:`parse_shard_line`).  Appends
    are single ``O_APPEND`` writes of whole lines, so concurrent
    writers interleave safely; an unwritable directory degrades to
    in-memory memoisation.  Subclasses supply the in-memory index via
    :meth:`_reset_index` / :meth:`_index_entry`.
    """

    def __init__(self, root: str | os.PathLike, subdir: str) -> None:
        self.root = pathlib.Path(root)
        self._shard_dir = self.root / subdir
        self._shard = None  # lazily opened append handle
        self._shard_name: str | None = None
        self._loaded = False
        #: Bytes of each shard already indexed, for :meth:`refresh`.
        self._offsets: dict[str, int] = {}
        #: Optional :class:`~repro.remote.client.RemoteStoreClient`
        #: layered under this store (:func:`attach_remote`).
        self.remote = None

    # -- index hooks (subclass responsibility) -------------------------
    def _reset_index(self) -> None:
        raise NotImplementedError

    def _index_entry(self, parsed: tuple[str, str, object] | None) -> None:
        """One validated line (``None`` = corrupt/unreadable)."""
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------
    def _ensure_loaded(self) -> bool:
        """Scan every shard once per handle; True on the first call."""
        if self._loaded:
            return False
        self._loaded = True
        self._reset_index()
        self._offsets = {}
        if not self._shard_dir.is_dir():
            return True
        for shard in sorted(self._shard_dir.glob("shard-*.jsonl")):
            self._read_shard(shard, final=True)
        return True

    def _read_shard(self, shard: pathlib.Path, *,
                    final: bool = False) -> None:
        """Index the unread tail of one shard, complete lines only.

        Reads from the last recorded byte offset.  A trailing partial
        line is a writer mid-append during a :meth:`refresh` — left
        unconsumed for the next refresh rather than counted corrupt —
        but on the initial full load (``final=True``) it is a killed
        writer's truncated tail and counts as corrupt (the offset
        still stops before it, so a later completion is not lost).
        """
        offset = self._offsets.get(shard.name, 0)
        if faultinject.fire("store", self._shard_dir.name,
                            actions=("read_error",)) is not None:
            # Injected unreadable shard: same degradation as the
            # OSError path below — skip this pass, recompute later.
            return
        try:
            with open(shard, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            return
        cut = data.rfind(b"\n") + 1
        self._offsets[shard.name] = offset + cut
        text = data[:cut].decode("utf-8", errors="replace")
        for line in text.splitlines():
            if line.strip():
                self._index_entry(parse_shard_line(line))
        if final and data[cut:].strip():
            self._index_entry(
                parse_shard_line(data[cut:].decode("utf-8",
                                                   errors="replace")))

    def refresh(self) -> None:
        """Fold shard lines appended since the last load into the index.

        Cheap (tail reads from per-shard offsets) and idempotent: the
        pipeline calls it at stage entry so writes from pool workers or
        work-stealing peers become visible deterministically.  A shard
        that *shrank* (``repro cache gc`` rewrote it in place) forces a
        full rescan.  A handle that never loaded stays lazy.
        """
        if not self._loaded:
            return
        if self._shard_dir.is_dir():
            shards = sorted(self._shard_dir.glob("shard-*.jsonl"))
        else:
            shards = []
        for shard in shards:
            try:
                size = shard.stat().st_size
            except OSError:
                continue
            if size < self._offsets.get(shard.name, 0):
                self._loaded = False  # rewritten in place: rescan all
                self._ensure_loaded()
                return
        for shard in shards:
            self._read_shard(shard)

    def _append(self, kind: str, key: str, value: object) -> bool:
        line = encode_shard_line(kind, key, value)
        try:
            if self._shard is None:
                self._shard_dir.mkdir(parents=True, exist_ok=True)
                # Zero-padded creation time first: shards sort (and
                # load) oldest-first, so "last occurrence wins" means
                # *newest* wins deterministically — a repair entry
                # appended after a corrupt one reliably overrides it.
                # (The gc shard's all-zero prefix keeps sorting first.)
                name = (f"shard-{time.time_ns():020d}-{os.getpid()}-"
                        f"{uuid.uuid4().hex[:8]}.jsonl")
                # O_APPEND + one os.write per line: concurrent writers
                # interleave whole lines, never bytes.
                self._shard = os.open(self._shard_dir / name,
                                      os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                                      0o644)
                self._shard_name = name
            data = line.encode("utf-8")
            if faultinject.fire("store", self._shard_dir.name,
                                actions=("truncate_tail",)) is not None:
                # Injected torn write: persist only half the line and
                # drop the shard handle, exactly what a writer killed
                # mid-append leaves behind.  A fresh load discards the
                # truncated tail as corrupt and recomputes the entry.
                os.write(self._shard, data[:max(1, len(data) // 2)])
                self.close()
                return False
            os.write(self._shard, data)
            # Our own appends are already in the index, so advance the
            # read offset past them — otherwise every refresh()
            # re-parses everything this handle ever wrote.  Advance
            # only when the shard grew by exactly this write: forked
            # pool workers share the fd, and an interleaved foreign
            # line must stay ahead of the offset so refresh() still
            # reads it (re-reading our own lines too — correct, merely
            # the old behaviour).
            if self._loaded and self._shard_name is not None:
                expected = self._offsets.get(self._shard_name, 0)
                try:
                    size = os.fstat(self._shard).st_size
                except OSError:
                    size = -1
                if size == expected + len(data):
                    self._offsets[self._shard_name] = size
            return True
        except OSError:
            # A read-only or full cache directory degrades to in-memory
            # caching; never fail the estimation over persistence.
            return False

    # -- remote layer --------------------------------------------------
    def _remote_fetch(self, kind: str, key: str) -> object | None:
        """Fetch-on-miss through the attached remote client, if any.

        A fetched entry is appended to the local shard too: the local
        store stays the store of record, so a later remote outage (or
        a tripped breaker) still serves the entry and a degraded run
        remains byte-identical to an undisturbed one.  The caller
        indexes the returned value (kind-specific validation lives
        there).
        """
        client = self.remote
        if client is None:
            return None
        value = client.fetch(self._shard_dir.name, kind, key)
        if value is not None:
            self._append(kind, key, value)
        return value

    def _remote_push(self, kind: str, key: str, value: object) -> None:
        """Push-on-write through the attached client; best-effort —
        remote unavailability never fails a local write."""
        client = self.remote
        if client is not None:
            client.push(self._shard_dir.name, kind, key, value)

    def invalidate(self) -> None:
        """Drop the in-memory index; the next read rescans every shard.

        The hook external shard writers (``repro cache import``) use
        to make new entries visible to already-memoised handles.
        """
        self._loaded = False

    def close(self) -> None:
        """Close the append handle; idempotent and safe on instances
        whose ``__init__`` never completed (``getattr``: ``__del__``
        may run with no ``_shard`` attribute at all)."""
        shard = getattr(self, "_shard", None)
        self._shard = None
        self._shard_name = getattr(self, "_shard_name", None)
        if shard is not None:
            try:
                os.close(shard)
            except OSError:
                pass

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        # Interpreter shutdown may collect a partially-initialised
        # instance or run after module globals are gone; never let a
        # destructor raise.
        try:
            self.close()
        except Exception:
            pass


class SolveStore(ShardedStore):
    """Disk-backed map of solve keys to optima / solution artefacts.

    ``get``/``put`` handle integer optima (the FMM cells and primed
    batches); ``get_artefact``/``put_artefact`` handle JSON documents
    (the WCET's full solution vector).  All reads go through one lazy
    in-memory index built by scanning every shard once per handle.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__(root, f"v{SCHEMA_VERSION}")
        self._values: dict[str, int] = {}
        self._artefacts: dict[str, object] = {}
        self.stats = StoreStats()

    # -- resolution ----------------------------------------------------
    @classmethod
    def resolve(cls, override: str | None = None) -> "SolveStore | None":
        """The store selected by ``override`` or the environment.

        ``override`` follows the same convention as the environment
        variable (``"off"`` disables, anything else is a directory);
        ``None`` defers to ``REPRO_CACHE`` (or its deprecated alias
        ``REPRO_SOLVE_CACHE``), and an unset environment selects the
        default user cache directory.

        Handles are memoised per resolved directory: the hundreds of
        estimators of a suite or sweep share one in-memory index (one
        shard scan) and one append shard, instead of re-reading the
        store and opening a fresh shard file each.
        """
        value = override if override is not None \
            else cache_env_value()
        if value is None or not value.strip():
            root = default_cache_dir()
        elif value.strip().lower() in _OFF_VALUES:
            return None
        else:
            root = pathlib.Path(value)
        key = os.path.abspath(root)
        store = _RESOLVED.get(key)
        if store is None:
            store = _RESOLVED[key] = cls(root)
        attach_remote(store)
        return store

    # -- loading -------------------------------------------------------
    def _ensure_loaded(self) -> bool:
        if super()._ensure_loaded():
            self.stats.loaded = len(self._values) + len(self._artefacts)
            return True
        return False

    def _reset_index(self) -> None:
        self._values = {}
        self._artefacts = {}

    def _index_entry(self, parsed: tuple[str, str, object] | None) -> None:
        if parsed is None:
            self.stats.corrupt_skipped += 1
            return
        kind, key, value = parsed
        if kind == "solve" and isinstance(value, int):
            self._values[key] = value
        elif kind == "artefact":
            self._artefacts[key] = value
        else:
            self.stats.corrupt_skipped += 1

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> int | None:
        self._ensure_loaded()
        value = self._values.get(key)
        if value is None and self.remote is not None:
            fetched = self._remote_fetch("solve", key)
            if isinstance(fetched, int) and not isinstance(fetched, bool):
                self._values[key] = fetched
                value = fetched
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def get_artefact(self, key: str) -> object | None:
        self._ensure_loaded()
        value = self._artefacts.get(key)
        if value is None and self.remote is not None:
            value = self._remote_fetch("artefact", key)
            if value is not None:
                self._artefacts[key] = value
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    # -- writes --------------------------------------------------------
    def put(self, key: str, value: int) -> None:
        self._ensure_loaded()
        if self._values.get(key) == value:
            return  # already persisted by this or another run
        self._values[key] = value
        if self._append("solve", key, value):
            self.stats.writes += 1
        self._remote_push("solve", key, value)

    def put_artefact(self, key: str, value: object) -> None:
        self._ensure_loaded()
        if key in self._artefacts:
            return
        self._artefacts[key] = value
        if self._append("artefact", key, value):
            self.stats.writes += 1
        self._remote_push("artefact", key, value)

    # -- maintenance ---------------------------------------------------
    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._values) + len(self._artefacts)
