"""Batched solve planning for the IPET/FMM linear programs.

The pipeline's dominant cost is the per-(set, fault count) ILP sweep
behind the Fault Miss Map (paper §II-C): hundreds of small maximisation
problems over one shared flow polytope.  This package turns those
solves from eager calls into *planned* work:

``request``
    :class:`SolveRequest` — a declarative, canonically-keyed
    description of one maximisation (objective + relaxation mode).
    Two requests with the same key provably have the same optimum.

``backend``
    Frozen solver inputs.  :class:`ProgramSnapshot` captures a
    :class:`~repro.ipet.ilp.LinearProgram`'s constraint system once
    (CSC matrix, bounds, row bounds) and the backends solve many
    objectives against it without rebuilding anything: a persistent
    HiGHS model (cost vector swapped in place) when scipy's vendored
    ``highspy`` is usable, else a frozen ``scipy.optimize.milp`` path.

``planner``
    :class:`SolvePlanner` — dedupes requests by canonical key,
    prunes FMM columns with monotonicity + a solver-free structural
    pre-screen (loop-bound products; the LP-relaxation screen remains
    opt-in), short-circuits empty objectives, batch-solves unique
    requests across a ``concurrent.futures`` process pool, and keeps
    :class:`SolveStats` counters for benchmarking.

``store``
    :class:`SolveStore` — the disk-backed, content-addressed cache
    that extends the dedup across runs: solved objectives are keyed by
    (schema version, CFG digest, geometry, timing model, canonical
    named objective, solver mode) and persisted as append-only,
    checksummed JSONL shards (``REPRO_CACHE=off|<path>``), so a
    warm rerun of a whole suite performs zero backend ILP solves.

``gc``
    Offline shard compaction (``repro cache gc``): folds the
    append-only shards of both persistent stores (solve +
    classification) into one sorted, checksummed file each.

Lifecycle: callers build requests (cheap, no solver involved), hand
them to a planner bound to the shared program, and read integer bounds
back; identical objectives — within one mechanism's symmetric sets or
across mechanisms sharing degraded classifications — are solved once.
"""

from repro.solve.backend import (ProgramSnapshot, SolverBackend,
                                 available_backends, make_backend)
from repro.solve.gc import CompactionReport, gc_cache
from repro.solve.planner import SolvePlanner, SolveStats
from repro.solve.request import SolveRequest, canonical_objective
from repro.solve.store import (SolveStore, default_cache_dir, solve_key,
                               store_context)

__all__ = [
    "CompactionReport",
    "gc_cache",
    "ProgramSnapshot",
    "SolverBackend",
    "available_backends",
    "make_backend",
    "SolvePlanner",
    "SolveStats",
    "SolveRequest",
    "canonical_objective",
    "SolveStore",
    "default_cache_dir",
    "solve_key",
    "store_context",
]
