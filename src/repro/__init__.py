"""repro — fault-aware probabilistic WCET estimation.

A from-scratch reproduction of *"Probabilistic WCET estimation in
presence of hardware for mitigating the impact of permanent faults"*
(Hardy, Puaut, Sazeides — DATE 2016), including every substrate the
paper depends on: a MIPS-like toolchain, abstract-interpretation cache
analysis, IPET via integer linear programming, the fault-miss-map
machinery of Hardy & Puaut 2015, and the RW / SRB reliability
mechanisms with their analyses.

Quickstart::

    from repro import (Program, Function, Compute, Loop, compile_program,
                       PWCETEstimator)

    program = Program([Function("main", [Loop(100, [Compute(24)])])])
    estimator = PWCETEstimator(compile_program(program))
    estimate = estimator.estimate("rw")
    print(estimate.pwcet(1e-15))
"""

from repro.analysis import CacheAnalysis, Chmc, Classification
from repro.cache import CacheGeometry, FaultMap, LRUCache
from repro.cfg import CFG, PathWalker, find_loops
from repro.faults import FaultProbabilityModel, sample_fault_maps
from repro.fmm import FaultMissMap, compute_fault_miss_map
from repro.ipet import TimingModel, compute_wcet
from repro.minic import (Call, CompiledProgram, Compute, Function, If, Loop,
                         Program, compile_program)
from repro.pwcet import (DiscreteDistribution, EstimatorConfig,
                         ExceedanceCurve, PWCETEstimate, PWCETEstimator)
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.reliability import (MECHANISMS, NoProtection, ReliableWay,
                               SharedReliableBuffer, mechanism_by_name)
from repro.solve import SolvePlanner, SolveRequest, SolveStats, SolveStore
from repro.sweep import SweepResult, pareto_front, run_sweep

__version__ = "1.0.0"

__all__ = [
    "CacheAnalysis",
    "Chmc",
    "Classification",
    "CacheGeometry",
    "FaultMap",
    "LRUCache",
    "CFG",
    "PathWalker",
    "find_loops",
    "FaultProbabilityModel",
    "sample_fault_maps",
    "FaultMissMap",
    "compute_fault_miss_map",
    "TimingModel",
    "compute_wcet",
    "Call",
    "CompiledProgram",
    "Compute",
    "Function",
    "If",
    "Loop",
    "Program",
    "compile_program",
    "DiscreteDistribution",
    "EstimatorConfig",
    "ExceedanceCurve",
    "PWCETEstimate",
    "PWCETEstimator",
    "TARGET_EXCEEDANCE",
    "MECHANISMS",
    "NoProtection",
    "ReliableWay",
    "SharedReliableBuffer",
    "mechanism_by_name",
    "SolvePlanner",
    "SolveRequest",
    "SolveStats",
    "SolveStore",
    "SweepResult",
    "pareto_front",
    "run_sweep",
    "__version__",
]
