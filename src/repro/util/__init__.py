"""Small shared helpers used across the library."""

from repro.util.validate import (
    check_positive_int,
    check_power_of_two,
    check_probability,
    ilog2,
)

__all__ = [
    "check_positive_int",
    "check_power_of_two",
    "check_probability",
    "ilog2",
]
