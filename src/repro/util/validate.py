"""Input validation helpers.

These helpers centralise the defensive checks used by public
constructors so that error messages are uniform across the library and
each check is implemented (and tested) exactly once.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a strictly positive ``int``.

    Raises :class:`ConfigurationError` otherwise.  Booleans are rejected
    even though they subclass ``int`` because passing ``True`` for a
    count is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Return ``value`` if it is a positive power of two."""
    check_positive_int(value, name)
    if value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value


def check_probability(value: float, name: str, *, allow_zero: bool = True,
                      allow_one: bool = True) -> float:
    """Return ``value`` if it is a probability in ``[0, 1]``.

    The ``allow_zero`` / ``allow_one`` switches tighten the interval for
    quantities that must be strictly inside ``(0, 1)``, such as a target
    exceedance probability.
    """
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a float, got {value!r}") from exc
    if value != value:  # NaN
        raise ConfigurationError(f"{name} must not be NaN")
    low_ok = value > 0.0 or (allow_zero and value == 0.0)
    high_ok = value < 1.0 or (allow_one and value == 1.0)
    if not (low_ok and high_ok):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def ilog2(value: int, name: str = "value") -> int:
    """Integer log2 of a power of two."""
    check_power_of_two(value, name)
    return value.bit_length() - 1
