"""Figure 4 — normalised pWCETs, behaviour categories, gain statistics.

For every benchmark the paper reports the pWCET at exceedance 1e-15 of
a fault-free architecture, the SRB and the RW, normalised to the
no-protection pWCET, and groups the benchmarks into four behaviour
categories (§IV-B):

1. both mechanisms restore the fault-free WCET (spatial locality only);
2. the RW restores it, the SRB does not (MRU-position temporal
   locality);
3. both gain about the same (temporal locality beyond the MRU
   position, unprotectable);
4. a mix of the above.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass

from repro.experiments.runner import BenchmarkResult, run_suite
from repro.pwcet import EstimatorConfig
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.suite import EVALUATED_BENCHMARKS


class Category(enum.IntEnum):
    """The four behaviour categories of Figure 4."""

    FULLY_MASKED = 1
    MRU_TEMPORAL = 2
    DEEP_TEMPORAL = 3
    MIXED = 4


#: A mechanism's pWCET counts as "equal to fault-free" when it recovers
#: at least this share of the no-protection degradation.
_RECOVERY_EQ = 0.995
#: SRB and RW count as "similar gain" when their normalised pWCETs
#: differ by at most this fraction of the no-protection pWCET.
_SIMILAR_GAP = 0.03


@dataclass(frozen=True)
class Fig4Row:
    """One stacked bar of Figure 4."""

    name: str
    wcet_fault_free: int
    pwcet_none: int
    pwcet_srb: int
    pwcet_rw: int
    category: Category

    @property
    def normalized_fault_free(self) -> float:
        return self.wcet_fault_free / self.pwcet_none

    @property
    def normalized_srb(self) -> float:
        return self.pwcet_srb / self.pwcet_none

    @property
    def normalized_rw(self) -> float:
        return self.pwcet_rw / self.pwcet_none

    @property
    def gain_srb(self) -> float:
        return 1.0 - self.normalized_srb

    @property
    def gain_rw(self) -> float:
        return 1.0 - self.normalized_rw


def classify_category(wcet_fault_free: int, pwcet_none: int,
                      pwcet_srb: int, pwcet_rw: int) -> Category:
    """Apply the paper's four-way grouping to one benchmark's numbers."""
    degradation = pwcet_none - wcet_fault_free
    if degradation <= 0:
        return Category.FULLY_MASKED  # faults never hurt this program

    def recovers(pwcet: int) -> bool:
        return (pwcet_none - pwcet) / degradation >= _RECOVERY_EQ

    rw_full, srb_full = recovers(pwcet_rw), recovers(pwcet_srb)
    if rw_full and srb_full:
        return Category.FULLY_MASKED
    if rw_full:
        return Category.MRU_TEMPORAL
    if (pwcet_srb - pwcet_rw) / pwcet_none <= _SIMILAR_GAP:
        return Category.DEEP_TEMPORAL
    return Category.MIXED


@dataclass(frozen=True)
class GainSummary:
    """The in-text statistics of §IV-B."""

    average_gain_srb: float
    average_gain_rw: float
    min_gain_srb: float
    min_gain_srb_benchmark: str
    min_gain_rw: float
    min_gain_rw_benchmark: str

    def format(self) -> str:
        return (
            f"SRB gain vs no protection: avg {self.average_gain_srb:.1%}, "
            f"min {self.min_gain_srb:.1%} ({self.min_gain_srb_benchmark})\n"
            f"RW  gain vs no protection: avg {self.average_gain_rw:.1%}, "
            f"min {self.min_gain_rw:.1%} ({self.min_gain_rw_benchmark})\n"
            f"(paper: SRB avg 40%, min 25% on ud; "
            f"RW avg 48%, min 26% on fft)")


def fig4_rows(config: EstimatorConfig | None = None, *,
              target_probability: float = TARGET_EXCEEDANCE,
              benchmarks: tuple[str, ...] = EVALUATED_BENCHMARKS,
              retry=None) -> list[Fig4Row]:
    """Compute Figure 4's bars for the whole suite.

    ``retry`` overrides the suite's default
    :class:`~repro.pipeline.resilience.RetryPolicy`; this strict path
    raises on permanent failures (the CLI's ``--partial`` mode calls
    :func:`~repro.experiments.runner.run_suite` directly instead).
    """
    rows = []
    for result in run_suite(config, target_probability=target_probability,
                            benchmarks=benchmarks, retry=retry):
        rows.append(row_of(result))
    return rows


def row_of(result: BenchmarkResult) -> Fig4Row:
    """One benchmark result → its Figure 4 bar (used directly by the
    ``--partial`` suite path, which renders the completed benchmarks
    and lists the failed ones separately)."""
    pwcet_none = result.pwcet("none")
    pwcet_srb = result.pwcet("srb")
    pwcet_rw = result.pwcet("rw")
    return Fig4Row(
        name=result.name,
        wcet_fault_free=result.wcet_fault_free,
        pwcet_none=pwcet_none, pwcet_srb=pwcet_srb, pwcet_rw=pwcet_rw,
        category=classify_category(result.wcet_fault_free, pwcet_none,
                                   pwcet_srb, pwcet_rw))


def gain_summary(rows: list[Fig4Row]) -> GainSummary:
    """The average/min gain statistics the paper quotes in the text."""
    srb_gains = {row.name: row.gain_srb for row in rows}
    rw_gains = {row.name: row.gain_rw for row in rows}
    min_srb = min(srb_gains, key=srb_gains.__getitem__)
    min_rw = min(rw_gains, key=rw_gains.__getitem__)
    return GainSummary(
        average_gain_srb=statistics.mean(srb_gains.values()),
        average_gain_rw=statistics.mean(rw_gains.values()),
        min_gain_srb=srb_gains[min_srb], min_gain_srb_benchmark=min_srb,
        min_gain_rw=rw_gains[min_rw], min_gain_rw_benchmark=min_rw)


def format_fig4(rows: list[Fig4Row]) -> str:
    """Printable Figure 4 (grouped by category, like the paper)."""
    lines = [
        "Figure 4 -- pWCET at 1e-15, normalised to no protection",
        f"{'benchmark':14s} {'cat':>3s} {'fault-free':>10s} "
        f"{'SRB':>7s} {'RW':>7s} {'gainSRB':>8s} {'gainRW':>7s}",
    ]
    lines.append("-" * len(lines[-1]))
    for category in Category:
        members = [row for row in rows if row.category == category]
        if not members:
            continue
        lines.append(f"-- category {category.value} "
                     f"({category.name.lower().replace('_', ' ')}) --")
        for row in sorted(members, key=lambda r: r.name):
            lines.append(
                f"{row.name:14s} {row.category.value:3d} "
                f"{row.normalized_fault_free:10.3f} "
                f"{row.normalized_srb:7.3f} {row.normalized_rw:7.3f} "
                f"{row.gain_srb:8.1%} {row.gain_rw:7.1%}")
    lines.append("")
    lines.append(gain_summary(rows).format())
    return "\n".join(lines)
