"""Experiment drivers regenerating the paper's figures and statistics.

One module per evaluation artefact (see DESIGN.md §3):

* :mod:`repro.experiments.fig1` — the FMM / convolution walkthrough;
* :mod:`repro.experiments.fig3` — adpcm exceedance curves;
* :mod:`repro.experiments.fig4` — the 25-benchmark survey, category
  classification and gain statistics;
* :mod:`repro.experiments.ablations` — pfail sweep, geometry sweep,
  ILP-vs-LP-relaxation comparison.
"""

from repro.experiments.runner import BenchmarkResult, run_benchmark, run_suite
from repro.experiments.fig3 import exceedance_curves, format_fig3
from repro.experiments.fig4 import (
    Category,
    Fig4Row,
    GainSummary,
    classify_category,
    fig4_rows,
    format_fig4,
    gain_summary,
)

__all__ = [
    "BenchmarkResult",
    "run_benchmark",
    "run_suite",
    "exceedance_curves",
    "format_fig3",
    "Category",
    "Fig4Row",
    "GainSummary",
    "classify_category",
    "fig4_rows",
    "format_fig4",
    "gain_summary",
]
