"""Figure 3 — complementary cumulative distributions for adpcm.

The paper plots, for benchmark ``adpcm`` at ``pfail = 1e-4``, the
exceedance function of the pWCET under no protection, the SRB and the
RW.  :func:`exceedance_curves` returns the three curves;
:func:`format_fig3` renders them as aligned series (one row per
support point, one column per mechanism) plus the pWCET read-outs at
the paper's 1e-15 target.
"""

from __future__ import annotations

from repro.experiments.runner import run_benchmark
from repro.pwcet import EstimatorConfig, ExceedanceCurve
from repro.pwcet.estimator import TARGET_EXCEEDANCE

#: The paper's Figure 3 benchmark.
FIG3_BENCHMARK = "adpcm"
#: Mechanisms in the paper's plotting order.
FIG3_MECHANISMS = ("none", "srb", "rw")


def exceedance_curves(benchmark: str = FIG3_BENCHMARK,
                      config: EstimatorConfig | None = None
                      ) -> dict[str, ExceedanceCurve]:
    """The three exceedance curves of Figure 3."""
    result = run_benchmark(benchmark, config)
    return {mechanism: result.estimates[mechanism].exceedance_curve()
            for mechanism in FIG3_MECHANISMS}


def format_fig3(benchmark: str = FIG3_BENCHMARK,
                config: EstimatorConfig | None = None, *,
                probabilities: tuple[float, ...] = (
                    1e-3, 1e-6, 1e-9, 1e-12, TARGET_EXCEEDANCE)) -> str:
    """Printable Figure 3: pWCET at decreasing exceedance levels."""
    curves = exceedance_curves(benchmark, config)
    result = run_benchmark(benchmark, config)
    lines = [
        f"Figure 3 -- exceedance curves, benchmark {benchmark!r} "
        f"(pfail = {(config or EstimatorConfig()).pfail:g})",
        f"fault-free WCET = {result.wcet_fault_free} cycles",
        "",
        f"{'P(WCET > x)':>12s} | " + " | ".join(
            f"{name:>10s}" for name in FIG3_MECHANISMS),
    ]
    lines.append("-" * len(lines[-1]))
    for probability in probabilities:
        cells = " | ".join(
            f"{curves[name].pwcet(probability):10d}"
            for name in FIG3_MECHANISMS)
        lines.append(f"{probability:12.0e} | {cells}")
    lines.append("")
    lines.append("curve support sizes: " + ", ".join(
        f"{name}={len(curves[name])}" for name in FIG3_MECHANISMS))
    return "\n".join(lines)
