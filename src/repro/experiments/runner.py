"""Shared benchmark execution and caching for the experiment drivers.

All figure generators need the same per-benchmark artefacts (fault-free
WCET, the three pWCET estimates); this module computes them once per
(benchmark, configuration) and caches in process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pwcet import EstimatorConfig, PWCETEstimate, PWCETEstimator
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.suite import EVALUATED_BENCHMARKS, load


@dataclass(frozen=True)
class BenchmarkResult:
    """The paper-facing numbers of one benchmark run."""

    name: str
    wcet_fault_free: int
    estimates: dict[str, PWCETEstimate]  # keyed by mechanism name
    target_probability: float

    def pwcet(self, mechanism: str) -> int:
        return self.estimates[mechanism].pwcet(self.target_probability)

    def normalized(self, mechanism: str) -> float:
        """pWCET normalised to the no-protection pWCET (Figure 4)."""
        return self.pwcet(mechanism) / self.pwcet("none")

    @property
    def normalized_fault_free(self) -> float:
        return self.wcet_fault_free / self.pwcet("none")

    def gain(self, mechanism: str) -> float:
        """Relative pWCET reduction vs. no protection (in [0, 1])."""
        return 1.0 - self.normalized(mechanism)


_CACHE: dict[tuple[str, EstimatorConfig, float], BenchmarkResult] = {}


def run_benchmark(name: str, config: EstimatorConfig | None = None, *,
                  target_probability: float = TARGET_EXCEEDANCE
                  ) -> BenchmarkResult:
    """Full pipeline for one benchmark (memoised per configuration)."""
    if config is None:
        config = EstimatorConfig()
    key = (name, config, target_probability)
    if key not in _CACHE:
        estimator = PWCETEstimator(load(name), config, name=name)
        _CACHE[key] = BenchmarkResult(
            name=name,
            wcet_fault_free=estimator.fault_free_wcet(),
            estimates=estimator.estimate_all(),
            target_probability=target_probability)
    return _CACHE[key]


def run_suite(config: EstimatorConfig | None = None, *,
              target_probability: float = TARGET_EXCEEDANCE,
              benchmarks: tuple[str, ...] = EVALUATED_BENCHMARKS
              ) -> list[BenchmarkResult]:
    """Run the whole 25-benchmark suite (Figure 4's input data)."""
    return [run_benchmark(name, config,
                          target_probability=target_probability)
            for name in benchmarks]
