"""Shared benchmark execution and caching for the experiment drivers.

All figure generators need the same per-benchmark artefacts (fault-free
WCET, the three pWCET estimates); this module computes them once per
(benchmark, configuration) and caches in process.  The suite can also
fan benchmarks out over a ``concurrent.futures`` process pool
(``run_suite(workers=...)`` or ``EstimatorConfig(workers=...)``);
results are bit-identical to the sequential path and land in the same
cache.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.pwcet import EstimatorConfig, PWCETEstimate, PWCETEstimator
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.suite import EVALUATED_BENCHMARKS, load


@dataclass(frozen=True)
class BenchmarkResult:
    """The paper-facing numbers of one benchmark run."""

    name: str
    wcet_fault_free: int
    estimates: dict[str, PWCETEstimate]  # keyed by mechanism name
    target_probability: float
    #: Planner + cache-analysis counters of the run that produced this
    #: result (``None`` for results materialised before stats plumbing
    #: existed).  Lets suite/sweep drivers prove properties like "the
    #: warm rerun solved zero backend ILPs and ran zero fixpoints".
    solver_stats: dict[str, float] | None = None

    def pwcet(self, mechanism: str) -> int:
        return self.estimates[mechanism].pwcet(self.target_probability)

    def normalized(self, mechanism: str) -> float:
        """pWCET normalised to the no-protection pWCET (Figure 4)."""
        return self.pwcet(mechanism) / self.pwcet("none")

    @property
    def normalized_fault_free(self) -> float:
        return self.wcet_fault_free / self.pwcet("none")

    def gain(self, mechanism: str) -> float:
        """Relative pWCET reduction vs. no protection (in [0, 1])."""
        return 1.0 - self.normalized(mechanism)


_CACHE: dict[tuple[str, EstimatorConfig, float], BenchmarkResult] = {}


def run_benchmark(name: str, config: EstimatorConfig | None = None, *,
                  target_probability: float = TARGET_EXCEEDANCE
                  ) -> BenchmarkResult:
    """Full pipeline for one benchmark (memoised per configuration)."""
    if config is None:
        config = EstimatorConfig()
    key = (name, config, target_probability)
    if key not in _CACHE:
        estimator = PWCETEstimator(load(name), config, name=name)
        _CACHE[key] = BenchmarkResult(
            name=name,
            wcet_fault_free=estimator.fault_free_wcet(),
            estimates=estimator.estimate_all(),
            target_probability=target_probability,
            solver_stats=estimator.stats_summary())
    return _CACHE[key]


def run_suite(config: EstimatorConfig | None = None, *,
              target_probability: float = TARGET_EXCEEDANCE,
              benchmarks: tuple[str, ...] = EVALUATED_BENCHMARKS,
              workers: int | None = None) -> list[BenchmarkResult]:
    """Run the whole 25-benchmark suite (Figure 4's input data).

    ``workers`` (default: the configuration's ``workers`` field) > 1
    distributes whole benchmarks over a process pool; each worker runs
    the full pipeline for its benchmark and ships the pickled result
    back, so outputs match the sequential path exactly.
    """
    if config is None:
        config = EstimatorConfig()
    if workers is None:
        workers = config.workers
    pending = [name for name in benchmarks
               if (name, config, target_probability) not in _CACHE]
    if workers > 1 and len(pending) > 1:
        items = [(name, config, target_probability) for name in pending]
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            for name, result in zip(pending,
                                    pool.map(_run_benchmark_task, items)):
                _CACHE[(name, config, target_probability)] = result
    return [run_benchmark(name, config,
                          target_probability=target_probability)
            for name in benchmarks]


def reset_cache() -> None:
    """Forget memoised results (fresh-invocation semantics for tests,
    benchmarks and warm/cold comparisons)."""
    _CACHE.clear()


@contextmanager
def fresh_results():
    """Scope with an empty result memo; the outer memo is restored.

    Inside the scope every ``run_benchmark`` computes (or reads the
    persistent store) instead of reusing results memoised by earlier
    drivers — so the scope's ``solver_stats`` describe exactly the
    work it performed.  On exit the outer memo returns, updated with
    the scope's results, so surrounding drivers keep their reuse.
    """
    saved = dict(_CACHE)
    _CACHE.clear()
    try:
        yield
    finally:
        produced = dict(_CACHE)
        _CACHE.clear()
        _CACHE.update(saved)
        _CACHE.update(produced)


def solver_totals(results: list[BenchmarkResult]) -> dict[str, float]:
    """Sum the planner counters over a list of results.

    Rate-style entries (``*_rate``) do not sum and are recomputed from
    the totals where meaningful.
    """
    totals: dict[str, float] = {}
    for result in results:
        for key, value in (result.solver_stats or {}).items():
            if not key.endswith("_rate"):
                totals[key] = totals.get(key, 0) + value
    solves = totals.get("ilp_solved", 0) + totals.get("store_hits", 0)
    totals["store_hit_rate"] = (
        totals.get("store_hits", 0) / solves if solves else 0.0)
    return totals


def _run_benchmark_task(item: tuple[str, EstimatorConfig, float]
                        ) -> BenchmarkResult:
    """Pool entry point: one whole benchmark per task.

    The child runs single-worker — benchmark-level parallelism already
    owns the pool, so nesting per-ILP pools would only add overhead.
    """
    name, config, target_probability = item
    return run_benchmark(name, replace(config, workers=1),
                         target_probability=target_probability)
