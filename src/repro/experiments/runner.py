"""Shared benchmark execution and caching for the experiment drivers.

All figure generators need the same per-benchmark artefacts (fault-free
WCET, the three pWCET estimates); this module computes them once per
(benchmark, configuration) and caches in process.  Execution goes
through the unified pipeline (:mod:`repro.pipeline`): every benchmark
expands into a classification stage and an estimation stage, and
``run_suite(workers=N)`` runs the whole suite's DAG on one shared
process pool — solve stages of early benchmarks overlap the
classification fixpoints of later ones, with no phase barrier and no
private pool.  Results are bit-identical to the sequential path and
land in the same cache.

Stats are scoped per pipeline run: each
:class:`~repro.experiments.runner.BenchmarkResult` snapshots the
counters of the run that computed it, and callers that need the
aggregate of exactly one invocation pass their own
:class:`~repro.pipeline.scheduler.PipelineStats` — re-entering
``run_suite`` can neither zero nor double-count a previous run's
numbers (see ``tests/test_pipeline_suite.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.pipeline.resilience import RetryPolicy, TaskFailure
from repro.pipeline.scheduler import PipelineStats
from repro.pipeline.stages import suite_pipeline
from repro.pwcet import EstimatorConfig, PWCETEstimate
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.suite import EVALUATED_BENCHMARKS


@dataclass(frozen=True)
class BenchmarkResult:
    """The paper-facing numbers of one benchmark run."""

    name: str
    wcet_fault_free: int
    estimates: dict[str, PWCETEstimate]  # keyed by mechanism name
    target_probability: float
    #: Planner + cache-analysis counters of the pipeline run that
    #: produced this result (``None`` for results materialised before
    #: stats plumbing existed).  A snapshot, never live state: the
    #: numbers describe the run that computed the result and stay
    #: valid however often drivers re-enter ``run_suite``.
    solver_stats: dict[str, float] | None = None

    def pwcet(self, mechanism: str) -> int:
        return self.estimates[mechanism].pwcet(self.target_probability)

    def normalized(self, mechanism: str) -> float:
        """pWCET normalised to the no-protection pWCET (Figure 4)."""
        return self.pwcet(mechanism) / self.pwcet("none")

    @property
    def normalized_fault_free(self) -> float:
        return self.wcet_fault_free / self.pwcet("none")

    def gain(self, mechanism: str) -> float:
        """Relative pWCET reduction vs. no protection (in [0, 1])."""
        return 1.0 - self.normalized(mechanism)


@dataclass(frozen=True)
class FailedBenchmark:
    """A benchmark a ``strict=False`` suite run could not complete.

    Returned in place of a :class:`BenchmarkResult`: ``failure`` is
    the terminal :class:`~repro.pipeline.resilience.TaskFailure` of
    the benchmark's result task (for cascades, ``failure.root_key``
    names the quarantined stage).  Failed benchmarks are never
    memoised — the next run retries them from scratch.
    """

    name: str
    failure: TaskFailure


_CACHE: dict[tuple[str, EstimatorConfig, float], BenchmarkResult] = {}


def run_benchmark(name: str, config: EstimatorConfig | None = None, *,
                  target_probability: float = TARGET_EXCEEDANCE,
                  schedule: str = "cell") -> BenchmarkResult:
    """Full pipeline for one benchmark (memoised per configuration)."""
    if config is None:
        config = EstimatorConfig()
    key = (name, config, target_probability)
    if key not in _CACHE:
        _CACHE[key] = suite_pipeline((name,), config, target_probability,
                                     workers=1, schedule=schedule)[name]
    return _CACHE[key]


def run_suite(config: EstimatorConfig | None = None, *,
              target_probability: float = TARGET_EXCEEDANCE,
              benchmarks: tuple[str, ...] = EVALUATED_BENCHMARKS,
              workers: int | None = None,
              pipeline_stats: PipelineStats | None = None,
              schedule: str = "cell",
              batch_pfails=None,
              batch_geometries=None,
              strict: bool = True,
              retry: RetryPolicy | None = None
              ) -> list[BenchmarkResult | FailedBenchmark]:
    """Run the whole 25-benchmark suite (Figure 4's input data).

    ``workers`` (default: the configuration's ``workers`` field) > 1
    executes the suite DAG on a shared process pool: classification
    and estimation stages of different benchmarks interleave freely
    (only each benchmark's own artifact dependency is enforced), so
    outputs match the sequential path exactly while no worker idles on
    another benchmark's fixpoints.  ``pipeline_stats`` scopes the
    counters of exactly this invocation — benchmarks served from the
    in-process memo contribute nothing to it.  ``schedule`` selects
    the cell-granular DAG (default; incremental via the persistent
    cell store) or the monolithic per-benchmark reference schedule —
    results are bit-identical either way.  ``batch_pfails``
    (mechanism → pfail axis; cell schedule only) lets each cell stage
    prefill its sibling pfail rows through the batched distribution
    kernel — the sweep's axis amortisation — and ``batch_geometries``
    (the line-size group of ``config.geometry``; cell schedule only)
    lets each classify stage prefill its sibling geometries' tables
    through the geometry-batched stacked kernel; see
    :func:`~repro.pipeline.stages.benchmark_dag`.

    Resilience: transient faults (killed workers, broken pools) are
    retried under ``retry`` (default policy) in both modes.  With
    ``strict=False`` a benchmark whose failure is permanent (or whose
    retries are exhausted) comes back as a :class:`FailedBenchmark`
    while the others complete normally; ``pipeline_stats
    .failure_report`` carries the per-task ledger.
    """
    if config is None:
        config = EstimatorConfig()
    if workers is None:
        workers = config.workers
    pending = [name for name in benchmarks
               if (name, config, target_probability) not in _CACHE]
    failed: dict[str, FailedBenchmark] = {}
    if pending:
        computed = suite_pipeline(tuple(pending), config,
                                  target_probability,
                                  workers=workers, stats=pipeline_stats,
                                  schedule=schedule,
                                  batch_pfails=batch_pfails,
                                  batch_geometries=batch_geometries,
                                  strict=strict, retry=retry)
        for name in pending:
            value = computed[name]
            if isinstance(value, TaskFailure):
                # Never memoised: the next invocation retries from
                # scratch instead of replaying the failure.
                failed[name] = FailedBenchmark(name=name, failure=value)
            else:
                _CACHE[(name, config, target_probability)] = value
    return [failed[name] if name in failed
            else run_benchmark(name, config,
                               target_probability=target_probability)
            for name in benchmarks]


def reset_cache() -> None:
    """Forget memoised results (fresh-invocation semantics for tests,
    benchmarks and warm/cold comparisons).

    Only the result memo is dropped: per-result ``solver_stats`` are
    immutable snapshots of their own pipeline run, so results already
    handed out keep accurate numbers.
    """
    _CACHE.clear()


@contextmanager
def fresh_results():
    """Scope with an empty result memo; the outer memo is restored.

    Inside the scope every ``run_benchmark`` computes (or reads the
    persistent store) instead of reusing results memoised by earlier
    drivers — so the scope's ``solver_stats`` describe exactly the
    work it performed.  On exit the outer memo returns, updated with
    the scope's results, so surrounding drivers keep their reuse.
    """
    saved = dict(_CACHE)
    _CACHE.clear()
    try:
        yield
    finally:
        produced = dict(_CACHE)
        _CACHE.clear()
        _CACHE.update(saved)
        _CACHE.update(produced)


def solver_totals(results: list[BenchmarkResult]) -> dict[str, float]:
    """Sum the planner counters over a list of results.

    Rate-style entries (``*_rate``) do not sum and are recomputed from
    the totals where meaningful.
    """
    stats = PipelineStats()
    for result in results:
        # FailedBenchmark entries of a partial run carry no counters.
        stats.merge_counters(getattr(result, "solver_stats", None))
    return stats.totals()
