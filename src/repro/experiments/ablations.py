"""Ablation studies around the paper's fixed experimental choices.

The paper pins ``pfail = 1e-4`` ("representative of the highest assumed
probability of cell failure") and the 1 KB / 4-way / 16 B geometry
("the one leading to the smallest pWCET in [1]").  These drivers sweep
both choices, plus the ILP-vs-LP-relaxation engineering trade-off, on a
configurable subset of the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cache import CacheGeometry
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.suite import load

#: Small representative subset (one per category) for sweep ablations.
DEFAULT_SUBSET = ("nsichneu", "fibcall", "ud", "adpcm")


@dataclass(frozen=True)
class SweepPoint:
    """One (benchmark, parameter) observation of a sweep."""

    benchmark: str
    parameter: str
    value: float | str
    wcet_fault_free: int
    pwcet_none: int
    pwcet_srb: int
    pwcet_rw: int

    def gains(self) -> tuple[float, float]:
        return (1 - self.pwcet_srb / self.pwcet_none,
                1 - self.pwcet_rw / self.pwcet_none)


def _observe(benchmark: str, config: EstimatorConfig, parameter: str,
             value: float | str,
             probability: float = TARGET_EXCEEDANCE) -> SweepPoint:
    estimator = PWCETEstimator(load(benchmark), config, name=benchmark)
    return SweepPoint(
        benchmark=benchmark, parameter=parameter, value=value,
        wcet_fault_free=estimator.fault_free_wcet(),
        pwcet_none=estimator.estimate("none").pwcet(probability),
        pwcet_srb=estimator.estimate("srb").pwcet(probability),
        pwcet_rw=estimator.estimate("rw").pwcet(probability))


def pfail_sweep(pfails: tuple[float, ...] = (1e-3, 1e-4, 1e-5, 1e-6),
                benchmarks: tuple[str, ...] = DEFAULT_SUBSET
                ) -> list[SweepPoint]:
    """ABL-PFAIL: pWCET sensitivity to the cell failure probability."""
    base = EstimatorConfig()
    return [_observe(benchmark, replace(base, pfail=pfail), "pfail", pfail)
            for benchmark in benchmarks for pfail in pfails]


def geometry_sweep(geometries: tuple[CacheGeometry, ...] = (
        CacheGeometry.from_size(1024, 1, 16),
        CacheGeometry.from_size(1024, 2, 16),
        CacheGeometry.from_size(1024, 4, 16),
        CacheGeometry.from_size(1024, 8, 16),
        CacheGeometry.from_size(1024, 4, 32),
), benchmarks: tuple[str, ...] = DEFAULT_SUBSET) -> list[SweepPoint]:
    """ABL-CFG: pWCET across cache organisations of equal capacity."""
    base = EstimatorConfig()
    return [
        _observe(benchmark, replace(base, geometry=geometry), "geometry",
                 f"{geometry.sets}x{geometry.ways}x{geometry.block_bytes}B")
        for benchmark in benchmarks for geometry in geometries
    ]


def solver_comparison(benchmarks: tuple[str, ...] = DEFAULT_SUBSET
                      ) -> list[tuple[SweepPoint, SweepPoint]]:
    """ABL-SOLVER: exact ILP vs (sound) LP relaxation, paired."""
    exact = EstimatorConfig(relaxed=False)
    relaxed = EstimatorConfig(relaxed=True)
    return [(_observe(benchmark, exact, "solver", "ilp"),
             _observe(benchmark, relaxed, "solver", "lp-relaxed"))
            for benchmark in benchmarks]


def format_sweep(points: list[SweepPoint]) -> str:
    """Render a sweep as an aligned table."""
    lines = [f"{'benchmark':14s} {'param':>9s} {'value':>12s} "
             f"{'wcet_ff':>10s} {'none':>10s} {'srb':>10s} {'rw':>10s} "
             f"{'gSRB':>6s} {'gRW':>6s}"]
    lines.append("-" * len(lines[0]))
    for point in points:
        gain_srb, gain_rw = point.gains()
        lines.append(
            f"{point.benchmark:14s} {point.parameter:>9s} "
            f"{point.value!s:>12s} {point.wcet_fault_free:10d} "
            f"{point.pwcet_none:10d} {point.pwcet_srb:10d} "
            f"{point.pwcet_rw:10d} {gain_srb:6.1%} {gain_rw:6.1%}")
    return "\n".join(lines)
