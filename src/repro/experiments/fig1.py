"""Figure 1 — the didactic FMM and convolution walkthrough.

The paper's Figure 1 shows (a) a fault miss map for a 4-set cache and
(b) how the per-set penalty distributions (three points each: 0, one
faulty block, two faulty blocks) are combined by convolution.  This
module reproduces the walkthrough on a real (small) program: it prints
the FMM, the per-set distributions, and the running convolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry
from repro.fmm import FaultMissMap, compute_fault_miss_map
from repro.faults import FaultProbabilityModel
from repro.minic import CompiledProgram, Compute, Function, If, Loop, Program
from repro.minic import compile_program
from repro.pwcet import DiscreteDistribution
from repro.reliability import NoProtection


def example_program() -> CompiledProgram:
    """A small two-loop program driving a 4-set, 2-way cache."""
    program = Program([Function("main", [
        Compute(8, "setup"),
        Loop(10, [Compute(10, "hot kernel A"),
                  If([Compute(6, "branchy part")])]),
        Loop(13, [Compute(14, "hot kernel B")]),
    ])], name="fig1_example")
    return compile_program(program)


@dataclass(frozen=True)
class Fig1Data:
    """Everything Figure 1 shows."""

    fmm: FaultMissMap
    per_set: list[DiscreteDistribution]
    combined: DiscreteDistribution
    model: FaultProbabilityModel


def compute_fig1(pfail: float = 1e-4) -> Fig1Data:
    """Compute the FMM and the penalty convolution of the example."""
    geometry = CacheGeometry(sets=4, ways=2, block_bytes=16)
    compiled = example_program()
    analysis = CacheAnalysis(compiled.cfg, geometry)
    fmm = compute_fault_miss_map(analysis, NoProtection())
    model = FaultProbabilityModel(geometry=geometry, pfail=pfail)

    per_set = []
    for set_index in range(geometry.sets):
        points: dict[int, float] = {}
        for fault_count in range(geometry.ways + 1):
            penalty = fmm.misses(set_index, fault_count)
            points[penalty] = points.get(penalty, 0.0) + model.pwf(fault_count)
        per_set.append(DiscreteDistribution.from_points(points))
    combined = DiscreteDistribution.convolve_all(per_set)
    return Fig1Data(fmm=fmm, per_set=per_set, combined=combined, model=model)


def format_fig1(data: Fig1Data) -> str:
    """Printable version of both halves of Figure 1."""
    lines = ["Figure 1.a -- fault miss map (misses per set and fault count)",
             data.fmm.format_table(), "",
             "Figure 1.b -- penalty distributions and their convolution"]
    for set_index, distribution in enumerate(data.per_set):
        points = {value: float(distribution.pmf[value])
                  for value in range(distribution.support_max + 1)
                  if distribution.pmf[value] > 0}
        rendered = ", ".join(f"P(penalty={v})={p:.3e}"
                             for v, p in sorted(points.items()))
        lines.append(f"set {set_index}: {rendered}")
    lines.append("")
    lines.append(f"combined support: [0, {data.combined.support_max}] "
                 f"misses; mass = {data.combined.total_mass:.12f}")
    quantile = data.combined.quantile_exceedance(1e-15)
    lines.append(f"penalty quantile at 1e-15: {quantile} misses")
    return "\n".join(lines)
