"""The one-shot reproduction report.

Collects every regenerated artefact — Figures 1/3/4, the gain
statistics, and the extension tables (refined SRB, hardware cost) —
into a single markdown document, used by ``python -m repro report``
and by the documentation pipeline.
"""

from __future__ import annotations

from repro.experiments.fig1 import compute_fig1, format_fig1
from repro.experiments.fig3 import format_fig3
from repro.experiments.fig4 import fig4_rows, format_fig4
from repro.hwcost.tradeoff import format_tradeoff, tradeoff_points
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.reliability.refined_srb import excluded_probability
from repro.suite import load

#: Benchmarks used for the extension sections (kept small for speed).
EXTENSION_SUBSET = ("fibcall", "bsort100", "ud", "adpcm")


def refined_srb_section(config: EstimatorConfig,
                        probability: float = 1e-9) -> str:
    """The refined-SRB comparison table (extension EXT-SRB+)."""
    lines = [f"pWCET at exceedance {probability:.0e}:",
             f"{'benchmark':12s} {'srb':>10s} {'srb+':>10s} {'rw':>10s}"]
    for name in EXTENSION_SUBSET:
        estimator = PWCETEstimator(load(name), config, name=name)
        lines.append(
            f"{name:12s} "
            f"{estimator.estimate('srb').pwcet(probability):10d} "
            f"{estimator.estimate('srb+').pwcet(probability):10d} "
            f"{estimator.estimate('rw').pwcet(probability):10d}")
    floor = excluded_probability(config.fault_model(), config.geometry.sets)
    lines.append(f"(refinement floor: P(>=2 sets entirely faulty) "
                 f"= {floor:.2e})")
    return "\n".join(lines)


def sweep_section(config: EstimatorConfig,
                  benchmarks: tuple[str, ...] = EXTENSION_SUBSET) -> str:
    """Design-space sweep summary: Pareto fronts over a compact grid.

    The report keeps the grid to one line-size axis (8 geometries) and
    the extension subset so ``repro report`` stays interactive; the
    full 16-geometry grid over all 25 benchmarks is ``repro sweep``'s
    job.  Warm solve-cache entries make reruns of either near-free.
    """
    from repro.sweep import format_pareto_fronts, geometry_grid, run_sweep

    result = run_sweep(geometry_grid(lines=(16,)), benchmarks=benchmarks,
                       config=config)
    totals = result.solver_totals
    reuse = (f"(solver: {totals.get('ilp_solved', 0):.0f} ILPs solved, "
             f"{totals.get('store_hits', 0):.0f} from the persistent "
             f"cache)")
    return format_pareto_fronts(result) + "\n" + reuse


def full_report(config: EstimatorConfig | None = None) -> str:
    """Every artefact, as one markdown document (runs the whole suite)."""
    if config is None:
        config = EstimatorConfig()
    sections = [
        "# Reproduction report — Hardy, Puaut & Sazeides, DATE 2016",
        "",
        f"Configuration: {config.geometry}, pfail = {config.pfail:g}, "
        f"hit {config.timing.hit_cycles} cyc / "
        f"memory {config.timing.memory_cycles} cyc.",
        "",
        "## Figure 1 — fault miss map walkthrough",
        "```", format_fig1(compute_fig1(config.pfail)), "```",
        "",
        "## Figure 3 — adpcm exceedance curves",
        "```", format_fig3(config=config), "```",
        "",
        "## Figure 4 — 25-benchmark survey",
        "```", format_fig4(fig4_rows(config)), "```",
        "",
        "## Extension: refined SRB analysis (paper future work)",
        "```", refined_srb_section(config), "```",
        "",
        "## Extension: pWCET/cost trade-off (paper future work)",
        "```",
        format_tradeoff(tradeoff_points(EXTENSION_SUBSET, config)),
        "```",
        "",
        "## Extension: multi-geometry design-space sweep",
        "```", sweep_section(config), "```",
    ]
    return "\n".join(sections)
