"""Extreme value theory fits (GEV block maxima, GPD peaks-over-threshold).

Thin, explicit wrappers over scipy's ``genextreme`` and ``genpareto``
with the conventions MBPTA tools (e.g. chronovise) use:

* block maxima: split the sample into blocks, keep each block's max,
  fit a GEV; the pWCET at exceedance ``p`` is the GEV quantile at
  ``1 - p * block_size`` (one activation is one sample, a block max
  covers ``block_size`` activations);
* POT: keep exceedances over a high quantile threshold, fit a GPD;
  the pWCET uses the standard POT tail formula with the empirical
  exceedance rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import EstimationError


@dataclass(frozen=True)
class BlockMaximaFit:
    """A fitted GEV model over block maxima."""

    shape: float  # scipy's c; xi = -c in the usual GEV convention
    location: float
    scale: float
    block_size: int
    n_blocks: int

    def quantile(self, exceedance: float) -> float:
        """pWCET estimate at per-activation exceedance probability."""
        if not 0.0 < exceedance < 1.0:
            raise EstimationError(
                f"exceedance must be in (0, 1), got {exceedance}")
        # Per-block exceedance: a block maximum exceeds x only if at
        # least one of the block's activations does.
        block_exceedance = min(1.0 - 1e-12, exceedance * self.block_size)
        return float(stats.genextreme.ppf(
            1.0 - block_exceedance, self.shape, loc=self.location,
            scale=self.scale))

    @property
    def xi(self) -> float:
        """Tail index in the standard GEV parameterisation."""
        return -self.shape


@dataclass(frozen=True)
class PeaksOverThresholdFit:
    """A fitted GPD model over threshold exceedances."""

    shape: float  # scipy's c == xi for genpareto
    scale: float
    threshold: float
    exceedance_rate: float  # fraction of samples above the threshold
    n_exceedances: int

    def quantile(self, exceedance: float) -> float:
        """pWCET estimate at per-activation exceedance probability."""
        if not 0.0 < exceedance < 1.0:
            raise EstimationError(
                f"exceedance must be in (0, 1), got {exceedance}")
        if exceedance >= self.exceedance_rate:
            # Inside the empirical body; the threshold already covers it.
            return self.threshold
        tail_quantile = 1.0 - exceedance / self.exceedance_rate
        return float(self.threshold + stats.genpareto.ppf(
            tail_quantile, self.shape, loc=0.0, scale=self.scale))


def fit_block_maxima(samples: np.ndarray,
                     block_size: int = 50) -> BlockMaximaFit:
    """Fit a GEV to the block maxima of an execution-time sample."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or len(samples) < 2 * block_size:
        raise EstimationError(
            f"need at least {2 * block_size} samples for block maxima, "
            f"got {samples.size}")
    n_blocks = len(samples) // block_size
    maxima = samples[:n_blocks * block_size].reshape(
        n_blocks, block_size).max(axis=1)
    if np.allclose(maxima, maxima[0]):
        # Degenerate sample (single execution time): point distribution.
        return BlockMaximaFit(shape=0.0, location=float(maxima[0]),
                              scale=1e-9, block_size=block_size,
                              n_blocks=n_blocks)
    shape, location, scale = stats.genextreme.fit(maxima)
    return BlockMaximaFit(shape=float(shape), location=float(location),
                          scale=float(scale), block_size=block_size,
                          n_blocks=n_blocks)


def fit_peaks_over_threshold(samples: np.ndarray, *,
                             threshold_quantile: float = 0.9
                             ) -> PeaksOverThresholdFit:
    """Fit a GPD to the exceedances over an empirical quantile."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size < 50:
        raise EstimationError(
            f"need at least 50 samples for POT, got {samples.size}")
    if not 0.5 <= threshold_quantile < 1.0:
        raise EstimationError(
            f"threshold quantile must be in [0.5, 1), got "
            f"{threshold_quantile}")
    threshold = float(np.quantile(samples, threshold_quantile))
    excesses = samples[samples > threshold] - threshold
    if excesses.size < 10:
        raise EstimationError(
            f"only {excesses.size} exceedances over the threshold; "
            "lower threshold_quantile or add samples")
    if np.allclose(excesses, excesses[0]):
        return PeaksOverThresholdFit(
            shape=0.0, scale=max(float(excesses[0]), 1e-9),
            threshold=threshold,
            exceedance_rate=excesses.size / samples.size,
            n_exceedances=int(excesses.size))
    shape, _location, scale = stats.genpareto.fit(excesses, floc=0.0)
    return PeaksOverThresholdFit(
        shape=float(shape), scale=float(scale), threshold=threshold,
        exceedance_rate=excesses.size / samples.size,
        n_exceedances=int(excesses.size))
