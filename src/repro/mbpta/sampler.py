"""Execution-time sampling across random fault maps and paths.

Each sample models one "measurement run" of the degraded-test-mode
family [7]: draw a chip (a fault map from the block-failure model),
draw an execution (a structurally feasible path), and measure the
end-to-end time on the concrete cache with the mechanism's hardware
behaviour.
"""

from __future__ import annotations

import random

import numpy as np

from repro.cache import CacheGeometry, FaultMap
from repro.cfg import CFG, PathWalker
from repro.faults import FaultProbabilityModel
from repro.ipet import TimingModel
from repro.reliability import ReliabilityMechanism
from repro.reliability.mechanism import ReliableWay
from repro.sim import TraceExecutor


class ExecutionTimeSampler:
    """Draws (chip, path) execution-time samples for one program."""

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 timing: TimingModel, fault_model: FaultProbabilityModel,
                 mechanism: ReliabilityMechanism) -> None:
        self._cfg = cfg
        self._geometry = geometry
        self._timing = timing
        self._fault_model = fault_model
        self._mechanism = mechanism
        self._walker = PathWalker(cfg)

    def sample(self, count: int, rng: random.Random, *,
               maximize_iterations: bool = True) -> np.ndarray:
        """Return ``count`` execution times in cycles.

        ``maximize_iterations`` drives every loop to its bound (the
        usual MBPTA practice of measuring with worst-case inputs);
        branch directions remain random, so the sample still explores
        the path space.
        """
        reliable_ways = 1 if isinstance(self._mechanism, ReliableWay) else 0
        times = np.empty(count, dtype=np.float64)
        for index in range(count):
            fault_map = FaultMap.sample(
                self._geometry, self._fault_model.pbf, rng,
                reliable_ways=reliable_ways)
            executor = TraceExecutor(self._geometry, self._timing,
                                     self._mechanism, fault_map)
            walk = self._walker.walk(
                rng, maximize_iterations=maximize_iterations)
            times[index] = executor.run(walk.addresses).cycles
        return times
