"""Measurement-based probabilistic timing analysis (MBPTA) baseline.

The paper contrasts its *static* probabilistic method (SPTA) with the
measurement-based family of Slijepcevic et al. [7].  This package
implements that comparator: collect execution-time samples over random
fault maps and paths, fit an extreme-value model with scipy, and read
the pWCET off the fitted tail.  Unlike SPTA it carries no guarantee of
having seen the worst path — which is exactly the comparison point the
ABL-MBPTA experiment of DESIGN.md makes.
"""

from repro.mbpta.evt import (
    BlockMaximaFit,
    PeaksOverThresholdFit,
    fit_block_maxima,
    fit_peaks_over_threshold,
)
from repro.mbpta.sampler import ExecutionTimeSampler
from repro.mbpta.mbpta import MBPTAEstimator, MBPTAResult

__all__ = [
    "BlockMaximaFit",
    "PeaksOverThresholdFit",
    "fit_block_maxima",
    "fit_peaks_over_threshold",
    "ExecutionTimeSampler",
    "MBPTAEstimator",
    "MBPTAResult",
]
