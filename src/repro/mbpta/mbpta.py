"""The MBPTA estimator: samples + EVT fit = measured pWCET."""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.cfg import CFG
from repro.errors import EstimationError
from repro.faults import FaultProbabilityModel
from repro.ipet import TimingModel
from repro.mbpta.evt import (BlockMaximaFit, fit_block_maxima,
                             fit_peaks_over_threshold)
from repro.mbpta.sampler import ExecutionTimeSampler
from repro.pwcet import EstimatorConfig
from repro.reliability import ReliabilityMechanism, mechanism_by_name


@dataclass(frozen=True)
class MBPTAResult:
    """A measurement-based pWCET estimate."""

    program_name: str
    mechanism_name: str
    method: str  # "block-maxima" or "pot"
    pwcet: float
    samples_max: float
    samples_mean: float
    n_samples: int
    tail_shape: float

    def summary(self) -> str:
        return (f"{self.program_name}/{self.mechanism_name} "
                f"[{self.method}] pWCET={self.pwcet:.0f} "
                f"(max sample {self.samples_max:.0f}, "
                f"xi={self.tail_shape:+.3f}, n={self.n_samples})")


class MBPTAEstimator:
    """Measurement-based comparator to the paper's static estimator."""

    def __init__(self, cfg: CFG, config: EstimatorConfig | None = None,
                 name: str = "program") -> None:
        if config is None:
            config = EstimatorConfig()
        self._cfg = cfg
        self._config = config
        self._name = name

    def estimate(self, mechanism: ReliabilityMechanism | str,
                 exceedance: float, *, n_samples: int = 1000,
                 method: str = "block-maxima",
                 seed: int = 2016) -> MBPTAResult:
        """Sample, fit, and return the measured pWCET.

        ``method`` selects the EVT route: ``"block-maxima"`` (GEV) or
        ``"pot"`` (GPD peaks-over-threshold).
        """
        if isinstance(mechanism, str):
            mechanism = mechanism_by_name(mechanism)
        fault_model = FaultProbabilityModel(
            geometry=self._config.geometry, pfail=self._config.pfail)
        sampler = ExecutionTimeSampler(
            self._cfg, self._config.geometry, self._config.timing,
            fault_model, mechanism)
        rng = random.Random(seed)
        samples = sampler.sample(n_samples, rng)

        if method == "block-maxima":
            fit = fit_block_maxima(samples)
            pwcet = fit.quantile(exceedance)
            shape = fit.xi
        elif method == "pot":
            fit = fit_peaks_over_threshold(samples)
            pwcet = fit.quantile(exceedance)
            shape = fit.shape
        else:
            raise EstimationError(
                f"unknown EVT method {method!r}; "
                "use 'block-maxima' or 'pot'")

        # An EVT extrapolation below the observed maximum is a red
        # flag for the fit; clamp so the result is at least plausible.
        pwcet = max(pwcet, float(samples.max()))
        return MBPTAResult(
            program_name=self._name, mechanism_name=mechanism.name,
            method=method, pwcet=float(pwcet),
            samples_max=float(samples.max()),
            samples_mean=float(samples.mean()),
            n_samples=int(samples.size), tail_shape=float(shape))
