"""Trace execution on a faulty cache, with RW / SRB semantics.

This is the ground truth the static estimates must dominate: given a
concrete fault map and a structurally feasible path, the executor
replays every instruction fetch against the LRU cache — honouring the
reliability mechanism's hardware behaviour — and accumulates cycles.

Mechanism semantics (paper §III-A):

* no protection: a set with all ways faulty never hits;
* RW: way 0 of every set is hardened, so a fault map for RW simply
  never disables way 0 (use ``reliable_ways=1`` when sampling) — the
  executor itself needs no special case;
* SRB: when the referenced set has zero working ways, the lookup goes
  to the single shared buffer: hit iff the buffer currently holds the
  block, which is (re)loaded on miss.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass

from repro.cache import CacheGeometry, FaultMap, LRUCache
from repro.cfg import CFG, PathWalker
from repro.errors import SimulationError
from repro.ipet import TimingModel
from repro.reliability import ReliabilityMechanism
from repro.reliability.mechanism import ReliableWay


@dataclass(frozen=True)
class ExecutionOutcome:
    """Cycle/miss accounting of one simulated path."""

    cycles: int
    fetches: int
    hits: int
    misses: int
    srb_hits: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.fetches if self.fetches else 0.0


class TraceExecutor:
    """Replays fetch traces against a concrete (possibly faulty) cache."""

    def __init__(self, geometry: CacheGeometry, timing: TimingModel,
                 mechanism: ReliabilityMechanism,
                 fault_map: FaultMap | None = None) -> None:
        if fault_map is None:
            fault_map = FaultMap.fault_free(geometry)
        if isinstance(mechanism, ReliableWay):
            blocked = [frame for frame in fault_map.faulty_frames
                       if frame[1] == 0]
            if blocked:
                raise SimulationError(
                    "RW fault maps must keep way 0 fault-free (sample "
                    "with reliable_ways=1); offending frames: "
                    f"{sorted(blocked)[:4]}")
        self._geometry = geometry
        self._timing = timing
        self._mechanism = mechanism
        self._fault_map = fault_map
        self._cache = LRUCache(geometry, fault_map)
        self._srb_block: int | None = None

    @property
    def cache(self) -> LRUCache:
        return self._cache

    def reset(self) -> None:
        """Cold-start state: empty cache and empty SRB."""
        self._cache.flush()
        self._srb_block = None

    def fetch(self, address: int) -> tuple[bool, bool]:
        """One instruction fetch; returns (hit, used_srb)."""
        geometry = self._geometry
        block = geometry.block_of(address)
        set_index = geometry.set_of_block(block)
        if (self._mechanism.uses_srb
                and self._fault_map.working_ways_in_set(set_index) == 0):
            hit = self._srb_block == block
            if not hit:
                self._srb_block = block
            return hit, True
        return self._cache.access(block), False

    def run(self, addresses: Iterable[int], *,
            cold_start: bool = True) -> ExecutionOutcome:
        """Replay a fetch trace; returns the outcome."""
        if cold_start:
            self.reset()
        timing = self._timing
        cycles = fetches = hits = misses = srb_hits = 0
        for address in addresses:
            hit, used_srb = self.fetch(address)
            fetches += 1
            if hit:
                hits += 1
                srb_hits += int(used_srb)
                cycles += timing.hit_cycles
            else:
                misses += 1
                cycles += timing.miss_cycles
        return ExecutionOutcome(cycles=cycles, fetches=fetches, hits=hits,
                                misses=misses, srb_hits=srb_hits)

    def run_random_path(self, cfg: CFG, rng: random.Random, *,
                        walker: PathWalker | None = None,
                        maximize_iterations: bool = False
                        ) -> ExecutionOutcome:
        """Sample a structurally feasible path of ``cfg`` and replay it."""
        if walker is None:
            walker = PathWalker(cfg)
        walk = walker.walk(rng, maximize_iterations=maximize_iterations)
        return self.run(walk.addresses)
