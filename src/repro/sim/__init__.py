"""Concrete fault-injected execution, for validating the analyses."""

from repro.sim.executor import ExecutionOutcome, TraceExecutor

__all__ = ["ExecutionOutcome", "TraceExecutor"]
