"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was built with inconsistent or unsupported parameters.

    Examples: a cache whose size is not a power of two, a negative
    latency, an exceedance probability outside ``(0, 1)``.
    """


class CompilationError(ReproError):
    """The MiniC compiler rejected a program (e.g. unknown callee)."""


class RecursionUnsupportedError(CompilationError):
    """Virtual inlining met a recursive call chain.

    Static WCET analysis in the reproduced toolchain (Heptane) requires
    bounded, non-recursive call graphs; we reject recursion explicitly
    instead of looping forever.
    """


class CFGStructureError(ReproError):
    """A control-flow graph violates a structural requirement.

    Examples: unreachable blocks, a back edge without a loop bound,
    an exit block with successors.
    """


class AnalysisError(ReproError):
    """A static analysis failed to reach a sound result."""


class SolverError(ReproError):
    """The ILP backend failed (infeasible model, solver error status)."""


class DistributionError(ReproError):
    """A probability distribution operation received invalid input."""


class SimulationError(ReproError):
    """The concrete simulator was driven with inconsistent state."""


class EstimationError(ReproError):
    """End-to-end pWCET estimation could not be completed."""


class PipelineError(ReproError):
    """A pipeline DAG is malformed (duplicate key, missing or cyclic
    dependency) or a stage task failed to execute."""
