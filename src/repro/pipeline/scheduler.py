"""The dependency-DAG scheduler shared by estimator, runner and sweep.

One :class:`PipelineScheduler` owns one worker pool and executes a DAG
of stage tasks: fixpoint/classification stages, ILP solve stages, and
whole sweep-cell groups all land on the *same* pool, so solve workers
start on one benchmark's ILPs while another benchmark's cache analysis
is still running — there is no phase barrier between stages, only the
declared artifact dependencies.

Execution model
---------------

* Tasks are added with :meth:`PipelineScheduler.add` — a key, a
  callable, static args, dependency keys, and whether the task may run
  on the process pool.  Dependency results are appended to the task's
  positional arguments in declared order.
* :meth:`run` first applies the *invalidation plan* (:meth:`plan`):
  every task registered with a ``probe`` asks its persistent store by
  content address, and probe hits whose results are still demanded are
  completed from the store before any worker starts — while tasks
  nobody demands any more (their only dependents were all satisfied)
  are skipped outright.  Editing one suite program therefore
  recomputes only that benchmark's stages; everything else is
  satisfied-from-store.
* Ready tasks are dispatched in ``(order key, insertion index)``
  order — stage tasks carry their *artifact key* as the order key, so
  dispatch order (and with it the streamed progress and merged
  counters) is reproducible across runs and Python hash seeds.  The
  ``workers=1`` inline path is thereby a deterministic sequential
  program — the property the bit-identity guarantees lean on.
* At most ``workers`` pool tasks are in flight; the scheduler keeps
  the rest queued itself instead of handing them to the executor, so
  a freshly unblocked low-order task is never stuck behind a wall of
  queued high-order ones.  When every worker is busy and no inline
  task is ready, the parent *steals* the next queued pool task and
  runs it in-process — small cells of one benchmark backfill the
  otherwise-idle parent while another benchmark's long ILP batch
  occupies the pool.
* Inline tasks (closures over in-process state — the estimator's own
  stages) run in the parent while pool futures are outstanding.

Besides DAG tasks the scheduler doubles as the *solve executor* of
:class:`~repro.solve.planner.SolvePlanner`:
:meth:`map_solves` fans batched ILP objectives over the same pool
(workers memoise the rebuilt backend per program token), so a single
pool serves both the coarse stage tasks and the fine solve batches.

Per-run work is accounted in a fresh :class:`PipelineStats` — the
merge of the solver's and the analysis' counters, scoped to one
:meth:`run` invocation so re-entrant drivers can never double-count or
silently zero a previous run's numbers.
"""

from __future__ import annotations

import heapq
import time
import uuid
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor, Future,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.pipeline.resilience import (CASCADED, TRANSIENT, FailureReport,
                                       RetryPolicy, StageTimeout,
                                       TaskFailure, classify_failure)
from repro.testing import faultinject


@dataclass
class PipelineStats:
    """Counters of one pipeline run: stage tasks + merged work counters.

    ``counters`` is the union of the solver family
    (:class:`~repro.solve.planner.SolveStats`) and the analysis family
    (:class:`~repro.analysis.classify.AnalysisStats`), summed over
    every stage of the run; rate-style entries (``*_rate``) are never
    summed and are recomputed from the totals in :meth:`totals`.
    Scope is one run: a fresh instance per :meth:`PipelineScheduler
    .run` (or one passed in by the driver), never shared module state.
    """

    #: Completed tasks per stage name.
    tasks: dict[str, int] = field(default_factory=dict)
    #: Tasks satisfied from a persistent store by the plan pass,
    #: per stage name — these never ran.
    from_store: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds spent *executing* each stage's tasks (pool
    #: tasks report their in-worker time; concurrent stages therefore
    #: sum to more than ``wall_seconds``).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Summed work counters of every stage (solver + analysis).
    counters: dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds spent inside :meth:`PipelineScheduler.run`.
    wall_seconds: float = 0.0
    #: Resilience ledger: terminal task failures plus retry / timeout /
    #: pool-rebuild counters (empty on a clean run).
    failure_report: FailureReport = field(default_factory=FailureReport)
    #: Remote-store wire outcomes of this run (``remote_fetch_hits``,
    #: ``remote_retries``, ``remote_breaker_trips``, ...): the delta of
    #: :func:`repro.remote.client.remote_stats_totals` across
    #: :meth:`PipelineScheduler.run`.  Empty when no remote store is
    #: configured.
    remote: dict[str, int] = field(default_factory=dict)

    @property
    def partial(self) -> bool:
        """True when some task terminally failed (``strict=False``)."""
        return bool(self.failure_report.failures)

    def count_task(self, stage: str) -> None:
        self.tasks[stage] = self.tasks.get(stage, 0) + 1

    def count_from_store(self, stage: str) -> None:
        self.from_store[stage] = self.from_store.get(stage, 0) + 1

    def add_stage_seconds(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = (self.stage_seconds.get(stage, 0.0)
                                     + seconds)

    def merge_counters(self, counters: dict[str, float] | None) -> None:
        """Fold one stage's counter dict in (rates are skipped).

        ``fault_pmf_*`` keys are process-scope memo snapshots, not
        per-run work — summing them would double-count across stages,
        so they are dropped (mirrors ``_merged_counters``); likewise
        the ``*_corrupt_skipped`` store-repair snapshots surfaced by
        ``stats_summary()``.
        """
        for key, value in (counters or {}).items():
            if not key.endswith("_rate") \
                    and not key.endswith("_corrupt_skipped") \
                    and not key.startswith("fault_pmf_"):
                self.counters[key] = self.counters.get(key, 0) + value

    def totals(self) -> dict[str, float]:
        """The summed counters with ``store_hit_rate`` recomputed."""
        totals = dict(self.counters)
        solves = totals.get("ilp_solved", 0) + totals.get("store_hits", 0)
        totals["store_hit_rate"] = (
            totals.get("store_hits", 0) / solves if solves else 0.0)
        return totals

    @property
    def tasks_run(self) -> int:
        return sum(self.tasks.values())

    # -- cell accounting (the "cell" stage of the cell-granular DAG) ---
    @property
    def cells_recomputed(self) -> int:
        """(mechanism, pfail) cells that actually ran this run."""
        return self.tasks.get("cell", 0)

    @property
    def cells_from_store(self) -> int:
        """Cells the plan pass answered from the persistent cell store."""
        return self.from_store.get("cell", 0)

    @property
    def cells_total(self) -> int:
        return self.cells_recomputed + self.cells_from_store

    @property
    def cells_batched(self) -> int:
        """Sibling pfail rows the batched distribution kernel computed
        alongside running cells and prefilled into the cell store."""
        return int(self.counters.get("dist_batched_rows", 0))

    @property
    def classify_batched_rows(self) -> int:
        """Sibling geometries the stacked classification kernel served
        alongside running classify stages (tables + SRB hit sets
        prefilled into the classification store)."""
        return int(self.counters.get("classify_batched_rows", 0))

    @property
    def geometry_groups(self) -> int:
        """Line-size groups whose classify stages ran batched."""
        return int(self.counters.get("geometry_groups", 0))


def _remote_totals() -> dict[str, int]:
    """Process-wide remote-store counters (empty without a remote).

    Imported lazily: the remote client pulls this package in through
    ``repro.pipeline.resilience``, and purely local runs should not
    pay for the HTTP stack at all.
    """
    try:
        from repro.remote.client import remote_stats_totals
    except ImportError:  # pragma: no cover - stdlib http always present
        return {}
    return remote_stats_totals()


@dataclass
class _Task:
    key: str
    stage: str
    fn: Callable
    args: tuple
    deps: tuple[str, ...]
    pool: bool
    index: int
    #: Dispatch order within the ready set (before the insertion
    #: index).  Stage tasks pass their artifact key so dispatch is
    #: reproducible across hash seeds; the default ``""`` preserves
    #: pure insertion order (and sorts ahead of any hex digest).
    order: str = ""
    #: Store probe of the plan pass: returns the finished result when
    #: the stage's persistent store already holds it, else ``None``.
    probe: Callable[[], object] | None = None


def _run_pool_task(fn: Callable, args: tuple) -> tuple[object, float]:
    """Pool entry point for stage tasks (keeps ``fn`` a plain pickle).

    Returns ``(value, seconds)`` so the parent can attribute in-worker
    wall-clock to the task's stage.
    """
    faultinject.worker_hook(getattr(fn, "__name__", str(fn)))
    started = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - started


#: Worker-side backends rebuilt from program snapshots, memoised per
#: planner token so one long-lived pool serves many programs without
#: rebuilding on every chunk.  Bounded: oldest entry evicted beyond
#: :data:`_MAX_WORKER_BACKENDS`.
_WORKER_BACKENDS: dict[str, object] = {}
_MAX_WORKER_BACKENDS = 4


def _solve_chunk(token: str, snapshot: object,
                 items: Sequence[tuple[tuple, bool]]) -> list[int]:
    """Solve one chunk of (objective, relaxed) payloads in a worker."""
    # Imported here, not at module level: repro.solve imports the
    # planner, which imports this module — the lazy import keeps the
    # package graph acyclic (and only workers ever pay it).
    from repro.solve.backend import ceil_bound, make_backend

    backend = _WORKER_BACKENDS.get(token)
    if backend is None:
        while len(_WORKER_BACKENDS) >= _MAX_WORKER_BACKENDS:
            _WORKER_BACKENDS.pop(next(iter(_WORKER_BACKENDS)))
        backend = _WORKER_BACKENDS[token] = make_backend(snapshot)
    values = []
    for objective, relaxed in items:
        value, _ = backend.solve(dict(objective), sign=-1.0,
                                 relaxed=relaxed)
        values.append(ceil_bound(value) if relaxed else int(round(value)))
    return values


class PipelineScheduler:
    """Executes typed-artifact DAGs over one shared worker pool."""

    def __init__(self, workers: int = 1, *,
                 retry: RetryPolicy | None = None,
                 strict: bool = True) -> None:
        self.workers = max(1, int(workers))
        #: Resilience policy; ``None`` disables retry/timeout handling
        #: entirely — failures propagate raw, exactly the pre-policy
        #: behaviour.
        self.retry = retry
        #: ``strict=True`` re-raises the original error on the first
        #: quarantine; ``strict=False`` completes the run with
        #: :class:`TaskFailure` sentinels in the result dict.
        self.strict = bool(strict)
        self._tasks: dict[str, _Task] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._running = False
        #: The running :class:`FailureReport` (``map_solves`` charges
        #: its pool rebuilds here while a DAG run is active).
        self._report: FailureReport | None = None
        #: Distinguishes this scheduler's snapshots in worker memos.
        self._token = uuid.uuid4().hex

    # -- DAG construction ----------------------------------------------
    def add(self, key: str, fn: Callable, *, args: tuple = (),
            deps: Sequence[str] = (), stage: str = "task",
            pool: bool = False, order_key: str | None = None,
            probe: Callable[[], object] | None = None) -> str:
        """Register one stage task; returns ``key`` for chaining.

        ``fn`` is called as ``fn(*args, *dep_results)`` with dependency
        results in declared order.  ``pool=True`` allows execution on
        the process pool (``fn`` and every argument must pickle);
        forward references in ``deps`` are fine — the DAG is validated
        at :meth:`run`.  ``order_key`` (conventionally the artifact
        key) ranks the task within the ready set ahead of the insertion
        index, making dispatch hash-seed independent; ``probe`` lets
        the plan pass satisfy the task from its persistent store
        (it returns the finished result, or ``None`` to run normally).
        """
        if key in self._tasks:
            raise PipelineError(f"duplicate pipeline task key {key!r}")
        self._tasks[key] = _Task(
            key=key, stage=stage, fn=fn, args=tuple(args),
            deps=tuple(deps), pool=bool(pool) and self.workers > 1,
            index=len(self._tasks),
            order=order_key if order_key is not None else "",
            probe=probe)
        return key

    # -- planning -------------------------------------------------------
    def _plan(self, tasks: dict[str, _Task]
              ) -> tuple[dict[str, object], dict[str, bool],
                         dict[str, bool]]:
        """The incremental-invalidation pass over one task set.

        Probes every probed task's persistent store by content
        address, then walks the DAG in reverse topological order to
        decide, per task: *satisfied* (probe hit — complete from store
        without running), *run* (somebody still needs a fresh result),
        or neither (skipped — every transitive dependent was
        satisfied).  A task is demanded iff it is a sink or some
        dependent will run; tasks on a cycle are conservatively left
        to run so :meth:`run` reports the deadlock as before.

        Returns ``(satisfied results, demanded flags, will-run
        flags)`` keyed by task key.
        """
        for task in tasks.values():
            for dep in task.deps:
                if dep not in tasks:
                    raise PipelineError(
                        f"task {task.key!r} depends on unknown task "
                        f"{dep!r}")
        dependents: dict[str, list[str]] = {key: [] for key in tasks}
        indegree: dict[str, int] = {}
        for task in tasks.values():
            indegree[task.key] = len(task.deps)
            for dep in task.deps:
                dependents[dep].append(task.key)
        queue = [key for key, count in indegree.items() if count == 0]
        order: list[str] = []
        while queue:
            key = queue.pop()
            order.append(key)
            for dependent in dependents[key]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    queue.append(dependent)
        satisfied: dict[str, object] = {}
        for key in order:
            task = tasks[key]
            if task.probe is not None:
                value = task.probe()
                if value is not None:
                    satisfied[key] = value
        demanded: dict[str, bool] = {}
        will_run: dict[str, bool] = {}
        if len(order) < len(tasks):
            for key in set(tasks) - set(order):
                demanded[key] = True  # cyclic: let run() raise
                will_run[key] = True
        for key in reversed(order):
            demanded[key] = (not dependents[key]
                             or any(will_run[dependent]
                                    for dependent in dependents[key]))
            will_run[key] = demanded[key] and key not in satisfied
        return satisfied, demanded, will_run

    def plan(self) -> dict[str, tuple[str, ...]]:
        """Dry-run the invalidation pass over the pending task set.

        Returns the keys partitioned into ``"from_store"`` (probe hits
        that will be completed from their persistent store),
        ``"run"`` (tasks that will execute), and ``"skipped"`` (tasks
        no remaining dependent demands).  The task set is *not*
        consumed; :meth:`run` re-applies the same pass.
        """
        satisfied, demanded, will_run = self._plan(self._tasks)
        return {
            "from_store": tuple(sorted(
                key for key in satisfied if demanded[key])),
            "run": tuple(sorted(
                key for key, runs in will_run.items() if runs)),
            "skipped": tuple(sorted(
                key for key, need in demanded.items() if not need)),
        }

    # -- execution ------------------------------------------------------
    def run(self, *, stats: PipelineStats | None = None,
            on_task: Callable[[str, object, int, int], None] | None = None
            ) -> dict[str, object]:
        """Execute every added task; return results keyed by task key.

        The task set is consumed: the scheduler is immediately reusable
        for the next DAG (the estimator adds a fresh stage graph per
        estimation batch).  ``stats`` scopes the run's counters;
        ``on_task(key, result, completed, total)`` streams completions
        (deterministic submission order inline, completion order with
        a pool).
        """
        tasks, self._tasks = self._tasks, {}
        if stats is None:
            stats = PipelineStats()
        policy = self.retry
        report = stats.failure_report
        self._report = report
        self._running = True
        started = time.perf_counter()
        remote_before = _remote_totals()
        satisfied, demanded, _will_run = self._plan(tasks)
        # Tasks nobody demands any more (every transitive dependent is
        # satisfied from a store) are skipped outright.
        tasks = {key: task for key, task in tasks.items()
                 if demanded[key]}

        dependents: dict[str, list[str]] = {key: [] for key in tasks}
        missing: dict[str, int] = {}
        for task in tasks.values():
            live = [dep for dep in task.deps if dep in tasks]
            missing[task.key] = len(live)
            for dep in live:
                dependents[dep].append(task.key)

        ready_pool: list[tuple[str, int, str]] = []
        ready_inline: list[tuple[str, int, str]] = []

        def push_ready(task: _Task) -> None:
            heap = ready_pool if task.pool else ready_inline
            heapq.heappush(heap, (task.order, task.index, task.key))

        results: dict[str, object] = {}
        in_flight: dict[Future, str] = {}
        #: Failed execution attempts charged per task key.
        attempts: dict[str, int] = {}
        #: Monotonic wall-clock deadline per in-flight future (only
        #: futures whose stage has a timeout budget appear here).
        deadlines: dict[Future, float] = {}

        def retry_sleep(attempt: int) -> None:
            """Jittered backoff, clamped to the nearest in-flight
            stage deadline so a retry pause never sleeps through a
            timeout it is supposed to enforce."""
            policy.sleep_backoff(
                attempt,
                deadline=min(deadlines.values()) if deadlines else None)

        def unblock(key: str) -> None:
            for dependent in dependents[key]:
                missing[dependent] -= 1
                if missing[dependent] == 0 \
                        and dependent not in satisfied:
                    dep_failure = next(
                        (results[dep] for dep in tasks[dependent].deps
                         if isinstance(results.get(dep), TaskFailure)),
                        None)
                    if dep_failure is not None:
                        cascade(dependent, dep_failure)
                    else:
                        push_ready(tasks[dependent])

        def cascade(key: str, dep_failure: TaskFailure) -> None:
            """Fail a task whose dependency terminally failed."""
            # A cascade's error already names the quarantined root
            # (transitively); a fresh one records the root's cause so
            # report annotations show *why*, not just *where*.
            message = dep_failure.error if dep_failure.cascaded else (
                f"dependency {dep_failure.key!r} failed "
                f"({dep_failure.error})")
            complete(key, TaskFailure(
                key=key, stage=tasks[key].stage,
                classification=CASCADED, attempts=0,
                error=message,
                root_key=dep_failure.root_key or dep_failure.key))

        def quarantine(key: str, error: BaseException,
                       classification: str,
                       elapsed: float = 0.0) -> None:
            """Terminally fail a task: raise (strict) or record."""
            failure = TaskFailure(
                key=key, stage=tasks[key].stage,
                classification=classification,
                attempts=attempts.get(key, 0),
                error=f"{type(error).__name__}: {error}",
                elapsed=elapsed)
            if self.strict:
                report.failures.append(failure)
                raise error
            complete(key, failure)

        def complete(key: str, value: object) -> None:
            results[key] = value
            if isinstance(value, TaskFailure):
                report.failures.append(value)
            else:
                stats.count_task(tasks[key].stage)
            unblock(key)
            if on_task is not None:
                on_task(key, value, len(results), len(tasks))

        def run_inline(key: str) -> None:
            task = tasks[key]
            while True:
                stage_started = time.perf_counter()
                try:
                    value = task.fn(*task.args,
                                    *(results[dep] for dep in task.deps))
                except Exception as error:
                    elapsed = time.perf_counter() - stage_started
                    stats.add_stage_seconds(task.stage, elapsed)
                    if policy is None:
                        raise
                    attempts[key] = attempts.get(key, 0) + 1
                    if (classify_failure(error) == TRANSIENT
                            and attempts[key] < policy.max_attempts):
                        report.retries += 1
                        retry_sleep(attempts[key])
                        continue
                    quarantine(key, error, classify_failure(error),
                               elapsed)
                    return
                stats.add_stage_seconds(
                    task.stage, time.perf_counter() - stage_started)
                complete(key, value)
                return

        def pool_break(first_key: str, error: BaseException) -> None:
            """A worker died and broke the pool: every in-flight
            future is lost and the victim is unknowable, so each one
            is charged an attempt, the pool is rebuilt, and survivors
            of the attempt budget are resubmitted."""
            report.pool_rebuilds += 1
            victims = [first_key] + list(in_flight.values())
            in_flight.clear()
            deadlines.clear()
            self._discard_pool()
            for key in victims:
                attempts[key] = attempts.get(key, 0) + 1
                if attempts[key] < policy.max_attempts:
                    report.retries += 1
                    push_ready(tasks[key])
                else:
                    quarantine(key, error, TRANSIENT)

        def worker_error(key: str, error: BaseException) -> None:
            """The stage body raised inside a live worker."""
            attempts[key] = attempts.get(key, 0) + 1
            if (classify_failure(error) == TRANSIENT
                    and attempts[key] < policy.max_attempts):
                report.retries += 1
                retry_sleep(attempts[key])
                push_ready(tasks[key])
            else:
                quarantine(key, error, classify_failure(error))

        def expire_timeouts() -> None:
            now = time.monotonic()
            expired = {future for future, deadline in deadlines.items()
                       if deadline <= now and not future.done()}
            if not expired:
                return
            # A running pool task cannot be cancelled — kill the
            # workers and rebuild.  Innocent in-flight tasks are not
            # charged an attempt: finished ones are harvested, the
            # rest resubmitted.
            report.pool_rebuilds += 1
            harvested: list[tuple[str, object, float]] = []
            resubmit: list[str] = []
            expired_keys: list[str] = []
            for future, key in in_flight.items():
                if future in expired:
                    expired_keys.append(key)
                elif (future.done() and not future.cancelled()
                        and future.exception() is None):
                    value, seconds = future.result()
                    harvested.append((key, value, seconds))
                else:
                    resubmit.append(key)
            in_flight.clear()
            deadlines.clear()
            self._kill_pool()
            for key, value, seconds in harvested:
                stats.add_stage_seconds(tasks[key].stage, seconds)
                complete(key, value)
            for key in resubmit:
                push_ready(tasks[key])
            for key in sorted(expired_keys):
                report.timeouts += 1
                attempts[key] = attempts.get(key, 0) + 1
                budget = policy.timeout_for(tasks[key].stage)
                error = StageTimeout(
                    f"stage task {key!r} exceeded its {budget:g}s "
                    f"timeout budget")
                if attempts[key] < policy.max_attempts:
                    report.retries += 1
                    push_ready(tasks[key])
                else:
                    quarantine(key, error, TRANSIENT)

        def drain(block: bool) -> None:
            if not in_flight:
                return
            timeout = None if block else 0.0
            if deadlines:
                budget = max(0.0, min(deadlines.values())
                             - time.monotonic())
                timeout = budget if timeout is None \
                    else min(timeout, budget)
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED,
                           timeout=timeout)
            for future in done:
                key = in_flight.pop(future, None)
                if key is None:
                    continue  # reaped by a pool break in this batch
                deadlines.pop(future, None)
                try:
                    value, seconds = future.result()
                except Exception as error:
                    if policy is None:
                        raise
                    if isinstance(error, BrokenExecutor):
                        pool_break(key, error)
                        continue
                    worker_error(key, error)
                    continue
                stats.add_stage_seconds(tasks[key].stage, seconds)
                complete(key, value)
            if policy is not None and deadlines:
                expire_timeouts()

        # Initially-ready runnable tasks first (their missing count is
        # 0 from the start, so the unblock path below never re-pushes
        # them), then satisfied tasks complete from their stores
        # before any worker starts — dependents see the decoded
        # results verbatim and are pushed exactly once, by unblock.
        for task in tasks.values():
            if missing[task.key] == 0 and task.key not in satisfied:
                push_ready(task)
        for key in sorted(satisfied,
                          key=lambda k: (tasks[k].order, tasks[k].index)
                          if k in tasks else ("", -1)):
            if key not in tasks:
                continue  # satisfied but undemanded: skipped entirely
            results[key] = satisfied[key]
            stats.count_from_store(tasks[key].stage)
            unblock(key)

        try:
            while len(results) < len(tasks):
                drain(block=False)
                while ready_pool and len(in_flight) < self.workers:
                    _, _, key = heapq.heappop(ready_pool)
                    task = tasks[key]
                    payload = task.args + tuple(results[dep]
                                                for dep in task.deps)
                    try:
                        future = self._ensure_pool().submit(
                            _run_pool_task, task.fn, payload)
                    except BrokenExecutor as error:
                        # A worker died between drain() and this
                        # submit: the executor refuses new work before
                        # the in-flight futures have surfaced the
                        # break.  Same recovery as a future-side break.
                        if policy is None:
                            raise
                        pool_break(key, error)
                        continue
                    in_flight[future] = key
                    budget = (policy.timeout_for(task.stage)
                              if policy is not None else None)
                    if budget is not None:
                        deadlines[future] = time.monotonic() + budget
                if ready_inline:
                    _, _, key = heapq.heappop(ready_inline)
                    run_inline(key)
                elif ready_pool:
                    # Every worker is busy and more pool tasks are
                    # queued: steal the next one and run it here
                    # instead of idling until a future resolves.
                    _, _, key = heapq.heappop(ready_pool)
                    run_inline(key)
                elif in_flight:
                    drain(block=True)
                elif len(results) < len(tasks):
                    stuck = sorted(key for key in tasks
                                   if key not in results)
                    raise PipelineError(
                        "pipeline deadlock: cyclic dependencies among "
                        f"{stuck}")
        finally:
            stats.wall_seconds += time.perf_counter() - started
            for name, total in _remote_totals().items():
                delta = total - remote_before.get(name, 0)
                if delta:
                    stats.remote[name] = stats.remote.get(name, 0) + delta
            self._running = False
            self._report = None
            self._close_pool()
        return results

    # -- the shared solve executor (SolvePlanner integration) -----------
    def map_solves(self, token: str, snapshot: object,
                   payload: Sequence[tuple[tuple, bool]], *,
                   chunksize: int = 1,
                   workers: int | None = None) -> list[int]:
        """Batch-solve ILP payloads on the shared pool, in order.

        ``token`` keys the worker-side backend memo (one rebuild per
        worker per program, however many chunks follow).  Called from
        inside a running DAG — an inline estimator stage priming its
        planner — this opens (or reuses) the run's shared pool, which
        then serves every later batch of the run and is reaped when
        :meth:`run` returns: one pool for all of an estimation's
        mechanisms and stages (an explicit ``workers`` request cannot
        resize an open shared pool).  Standalone calls (a planner
        primed outside any DAG) use a transient pool sized by
        ``workers`` (default: the scheduler's width) so nothing
        lingers past the call.
        """
        chunks = [list(payload[i:i + max(1, chunksize)])
                  for i in range(0, len(payload), max(1, chunksize))]
        scoped_token = f"{self._token}:{token}"
        if self._pool is not None or self._running:
            return self._map_on_shared_pool(scoped_token, snapshot,
                                            chunks)
        with ProcessPoolExecutor(
                max_workers=min(workers or self.workers,
                                len(chunks))) as pool:
            futures = [pool.submit(_solve_chunk, scoped_token, snapshot,
                                   chunk) for chunk in chunks]
            return [value for future in futures
                    for value in future.result()]

    def _map_on_shared_pool(self, scoped_token: str, snapshot: object,
                            chunks: list[list]) -> list[int]:
        """Run solve chunks on the shared pool, rebuilding on breaks.

        A killed solve worker breaks the whole pool; with a retry
        policy the pool is rebuilt and only the unfinished chunks are
        resubmitted (order is preserved by chunk slot).  Without a
        policy the break propagates raw, as before.
        """
        slots: list[list[int] | None] = [None] * len(chunks)
        batch_attempts = 0
        while any(slot is None for slot in slots):
            pool = self._ensure_pool()
            broken: BaseException | None = None
            futures: dict[Future, int] = {}
            for index, slot in enumerate(slots):
                if slot is not None:
                    continue
                try:
                    futures[pool.submit(_solve_chunk, scoped_token,
                                        snapshot, chunks[index])] = index
                except BrokenExecutor as error:
                    # The shared pool broke (a DAG stage's worker was
                    # killed) before this batch fully submitted; the
                    # chunks already in are harvested below, the rest
                    # resubmit on the rebuilt pool.
                    broken = error
                    break
            for future, index in futures.items():
                if broken is None:
                    try:
                        slots[index] = future.result()
                        continue
                    except BrokenExecutor as error:
                        broken = error
                # The pool already broke: harvest chunks that
                # finished before the break, leave the rest unfilled.
                if (future.done() and not future.cancelled()
                        and future.exception() is None):
                    slots[index] = future.result()
            if broken is None:
                break
            batch_attempts += 1
            allowed = (self.retry.max_attempts
                       if self.retry is not None else 1)
            if batch_attempts >= allowed:
                raise broken
            if self._report is not None:
                self._report.pool_rebuilds += 1
                self._report.retries += 1
            self._discard_pool()
        return [value for slot in slots for value in slot]

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _discard_pool(self) -> None:
        """Drop a broken pool (its workers are already dead); the next
        ``_ensure_pool`` builds a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _kill_pool(self) -> None:
        """Forcibly terminate the pool's workers — the escape hatch
        for a hung stage (a running pool task cannot be cancelled)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list((getattr(pool, "_processes", None)
                             or {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)
