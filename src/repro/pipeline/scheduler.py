"""The dependency-DAG scheduler shared by estimator, runner and sweep.

One :class:`PipelineScheduler` owns one worker pool and executes a DAG
of stage tasks: fixpoint/classification stages, ILP solve stages, and
whole sweep-cell groups all land on the *same* pool, so solve workers
start on one benchmark's ILPs while another benchmark's cache analysis
is still running — there is no phase barrier between stages, only the
declared artifact dependencies.

Execution model
---------------

* Tasks are added with :meth:`PipelineScheduler.add` — a key, a
  callable, static args, dependency keys, and whether the task may run
  on the process pool.  Dependency results are appended to the task's
  positional arguments in declared order.
* :meth:`run` executes the DAG.  Ready tasks are started in submission
  order (a min-heap over the insertion index), which makes the
  ``workers=1`` inline path a deterministic sequential program — the
  property the bit-identity guarantees lean on — and makes a
  dependent task (a solve) jump ahead of unrelated later stages the
  moment its inputs are complete.
* At most ``workers`` pool tasks are in flight; the scheduler keeps
  the rest queued itself instead of handing them to the executor, so
  a freshly unblocked low-index task is never stuck behind a wall of
  queued high-index ones.
* Inline tasks (closures over in-process state — the estimator's own
  stages) run in the parent while pool futures are outstanding.

Besides DAG tasks the scheduler doubles as the *solve executor* of
:class:`~repro.solve.planner.SolvePlanner`:
:meth:`map_solves` fans batched ILP objectives over the same pool
(workers memoise the rebuilt backend per program token), so a single
pool serves both the coarse stage tasks and the fine solve batches.

Per-run work is accounted in a fresh :class:`PipelineStats` — the
merge of the solver's and the analysis' counters, scoped to one
:meth:`run` invocation so re-entrant drivers can never double-count or
silently zero a previous run's numbers.
"""

from __future__ import annotations

import heapq
import time
import uuid
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, field

from repro.errors import PipelineError


@dataclass
class PipelineStats:
    """Counters of one pipeline run: stage tasks + merged work counters.

    ``counters`` is the union of the solver family
    (:class:`~repro.solve.planner.SolveStats`) and the analysis family
    (:class:`~repro.analysis.classify.AnalysisStats`), summed over
    every stage of the run; rate-style entries (``*_rate``) are never
    summed and are recomputed from the totals in :meth:`totals`.
    Scope is one run: a fresh instance per :meth:`PipelineScheduler
    .run` (or one passed in by the driver), never shared module state.
    """

    #: Completed tasks per stage name.
    tasks: dict[str, int] = field(default_factory=dict)
    #: Summed work counters of every stage (solver + analysis).
    counters: dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds spent inside :meth:`PipelineScheduler.run`.
    wall_seconds: float = 0.0

    def count_task(self, stage: str) -> None:
        self.tasks[stage] = self.tasks.get(stage, 0) + 1

    def merge_counters(self, counters: dict[str, float] | None) -> None:
        """Fold one stage's counter dict in (rates are skipped)."""
        for key, value in (counters or {}).items():
            if not key.endswith("_rate"):
                self.counters[key] = self.counters.get(key, 0) + value

    def totals(self) -> dict[str, float]:
        """The summed counters with ``store_hit_rate`` recomputed."""
        totals = dict(self.counters)
        solves = totals.get("ilp_solved", 0) + totals.get("store_hits", 0)
        totals["store_hit_rate"] = (
            totals.get("store_hits", 0) / solves if solves else 0.0)
        return totals

    @property
    def tasks_run(self) -> int:
        return sum(self.tasks.values())


@dataclass
class _Task:
    key: str
    stage: str
    fn: Callable
    args: tuple
    deps: tuple[str, ...]
    pool: bool
    index: int


def _run_pool_task(fn: Callable, args: tuple) -> object:
    """Pool entry point for stage tasks (keeps ``fn`` a plain pickle)."""
    return fn(*args)


#: Worker-side backends rebuilt from program snapshots, memoised per
#: planner token so one long-lived pool serves many programs without
#: rebuilding on every chunk.  Bounded: oldest entry evicted beyond
#: :data:`_MAX_WORKER_BACKENDS`.
_WORKER_BACKENDS: dict[str, object] = {}
_MAX_WORKER_BACKENDS = 4


def _solve_chunk(token: str, snapshot: object,
                 items: Sequence[tuple[tuple, bool]]) -> list[int]:
    """Solve one chunk of (objective, relaxed) payloads in a worker."""
    # Imported here, not at module level: repro.solve imports the
    # planner, which imports this module — the lazy import keeps the
    # package graph acyclic (and only workers ever pay it).
    from repro.solve.backend import ceil_bound, make_backend

    backend = _WORKER_BACKENDS.get(token)
    if backend is None:
        while len(_WORKER_BACKENDS) >= _MAX_WORKER_BACKENDS:
            _WORKER_BACKENDS.pop(next(iter(_WORKER_BACKENDS)))
        backend = _WORKER_BACKENDS[token] = make_backend(snapshot)
    values = []
    for objective, relaxed in items:
        value, _ = backend.solve(dict(objective), sign=-1.0,
                                 relaxed=relaxed)
        values.append(ceil_bound(value) if relaxed else int(round(value)))
    return values


class PipelineScheduler:
    """Executes typed-artifact DAGs over one shared worker pool."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self._tasks: dict[str, _Task] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._running = False
        #: Distinguishes this scheduler's snapshots in worker memos.
        self._token = uuid.uuid4().hex

    # -- DAG construction ----------------------------------------------
    def add(self, key: str, fn: Callable, *, args: tuple = (),
            deps: Sequence[str] = (), stage: str = "task",
            pool: bool = False) -> str:
        """Register one stage task; returns ``key`` for chaining.

        ``fn`` is called as ``fn(*args, *dep_results)`` with dependency
        results in declared order.  ``pool=True`` allows execution on
        the process pool (``fn`` and every argument must pickle);
        forward references in ``deps`` are fine — the DAG is validated
        at :meth:`run`.
        """
        if key in self._tasks:
            raise PipelineError(f"duplicate pipeline task key {key!r}")
        self._tasks[key] = _Task(
            key=key, stage=stage, fn=fn, args=tuple(args),
            deps=tuple(deps), pool=bool(pool) and self.workers > 1,
            index=len(self._tasks))
        return key

    # -- execution ------------------------------------------------------
    def run(self, *, stats: PipelineStats | None = None,
            on_task: Callable[[str, object, int, int], None] | None = None
            ) -> dict[str, object]:
        """Execute every added task; return results keyed by task key.

        The task set is consumed: the scheduler is immediately reusable
        for the next DAG (the estimator adds a fresh stage graph per
        estimation batch).  ``stats`` scopes the run's counters;
        ``on_task(key, result, completed, total)`` streams completions
        (deterministic submission order inline, completion order with
        a pool).
        """
        tasks, self._tasks = self._tasks, {}
        if stats is None:
            stats = PipelineStats()
        self._running = True
        started = time.perf_counter()
        for task in tasks.values():
            for dep in task.deps:
                if dep not in tasks:
                    raise PipelineError(
                        f"task {task.key!r} depends on unknown task "
                        f"{dep!r}")

        dependents: dict[str, list[str]] = {key: [] for key in tasks}
        missing: dict[str, int] = {}
        for task in tasks.values():
            missing[task.key] = len(task.deps)
            for dep in task.deps:
                dependents[dep].append(task.key)

        ready_pool: list[tuple[int, str]] = []
        ready_inline: list[tuple[int, str]] = []
        for task in tasks.values():
            if missing[task.key] == 0:
                heap = ready_pool if task.pool else ready_inline
                heapq.heappush(heap, (task.index, task.key))

        results: dict[str, object] = {}
        in_flight: dict[Future, str] = {}

        def complete(key: str, value: object) -> None:
            results[key] = value
            stats.count_task(tasks[key].stage)
            for dependent in dependents[key]:
                missing[dependent] -= 1
                if missing[dependent] == 0:
                    task = tasks[dependent]
                    heap = ready_pool if task.pool else ready_inline
                    heapq.heappush(heap, (task.index, task.key))
            if on_task is not None:
                on_task(key, value, len(results), len(tasks))

        def drain(block: bool) -> None:
            if not in_flight:
                return
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED,
                           timeout=None if block else 0)
            for future in done:
                complete(in_flight.pop(future), future.result())

        try:
            while len(results) < len(tasks):
                drain(block=False)
                while ready_pool and len(in_flight) < self.workers:
                    _, key = heapq.heappop(ready_pool)
                    task = tasks[key]
                    payload = task.args + tuple(results[dep]
                                                for dep in task.deps)
                    future = self._ensure_pool().submit(
                        _run_pool_task, task.fn, payload)
                    in_flight[future] = key
                if ready_inline:
                    _, key = heapq.heappop(ready_inline)
                    task = tasks[key]
                    complete(key, task.fn(*task.args,
                                          *(results[dep]
                                            for dep in task.deps)))
                elif in_flight:
                    drain(block=True)
                elif len(results) < len(tasks):
                    stuck = sorted(key for key in tasks
                                   if key not in results)
                    raise PipelineError(
                        "pipeline deadlock: cyclic dependencies among "
                        f"{stuck}")
        finally:
            stats.wall_seconds += time.perf_counter() - started
            self._running = False
            self._close_pool()
        return results

    # -- the shared solve executor (SolvePlanner integration) -----------
    def map_solves(self, token: str, snapshot: object,
                   payload: Sequence[tuple[tuple, bool]], *,
                   chunksize: int = 1,
                   workers: int | None = None) -> list[int]:
        """Batch-solve ILP payloads on the shared pool, in order.

        ``token`` keys the worker-side backend memo (one rebuild per
        worker per program, however many chunks follow).  Called from
        inside a running DAG — an inline estimator stage priming its
        planner — this opens (or reuses) the run's shared pool, which
        then serves every later batch of the run and is reaped when
        :meth:`run` returns: one pool for all of an estimation's
        mechanisms and stages (an explicit ``workers`` request cannot
        resize an open shared pool).  Standalone calls (a planner
        primed outside any DAG) use a transient pool sized by
        ``workers`` (default: the scheduler's width) so nothing
        lingers past the call.
        """
        chunks = [list(payload[i:i + max(1, chunksize)])
                  for i in range(0, len(payload), max(1, chunksize))]
        scoped_token = f"{self._token}:{token}"
        if self._pool is not None or self._running:
            pool = self._ensure_pool()
            futures = [pool.submit(_solve_chunk, scoped_token,
                                   snapshot, chunk)
                       for chunk in chunks]
            return [value for future in futures
                    for value in future.result()]
        with ProcessPoolExecutor(
                max_workers=min(workers or self.workers,
                                len(chunks))) as pool:
            futures = [pool.submit(_solve_chunk, scoped_token, snapshot,
                                   chunk) for chunk in chunks]
            return [value for future in futures
                    for value in future.result()]

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
