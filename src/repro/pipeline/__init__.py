"""The unified estimation pipeline: typed artifacts + one DAG scheduler.

The paper's estimation flow (program → CFG → cache classification →
FMM → ILP solve → pWCET distribution) used to be orchestrated three
different ways — inside the estimator, again in the experiment runner,
and a third time in the sweep service, each with its own worker pool.
This package makes the pipeline an explicit, schedulable artifact
graph instead of a call stack:

``artifacts``
    Frozen stage outputs (:class:`CfgArtifact`,
    :class:`ClassificationArtifact`, :class:`SolveArtifact`,
    :class:`FmmArtifact`, :class:`DistributionArtifact`,
    :class:`CellArtifact`), each keyed by the digest its stage's
    persistent store already uses.

``scheduler``
    :class:`PipelineScheduler` — the dependency-DAG executor with one
    shared worker pool that interleaves classification fixpoints with
    ILP solve batches across benchmarks, geometries and fault counts,
    steals queued pool tasks into the parent when every worker is
    busy, and runs an incremental-invalidation ``plan()`` pass that
    satisfies content-addressed stages from their persistent stores;
    :class:`PipelineStats` — per-run merged solver + analysis
    counters plus cell/from-store accounting and per-stage timings.

``stages``
    Pool-safe stage task bodies and the suite DAG builders
    (:func:`~repro.pipeline.stages.suite_pipeline`,
    :func:`~repro.pipeline.stages.benchmark_dag`).

``resilience``
    :class:`~repro.pipeline.resilience.RetryPolicy` (attempt budget,
    deterministic exponential backoff, per-stage timeouts),
    failure classification (transient worker crashes vs permanent
    solver errors) and the structured
    :class:`~repro.pipeline.resilience.FailureReport` that
    ``strict=False`` partial runs attach to their
    :class:`PipelineStats`.

``cellstore``
    :class:`~repro.pipeline.cellstore.CellStore` — the persistent,
    content-addressed store of finished (mechanism, pfail) cells the
    plan pass probes.

The estimator (:mod:`repro.pwcet.estimator`), the suite runner
(:mod:`repro.experiments.runner`) and the sweep service
(:mod:`repro.sweep.service`) all execute through this scheduler;
outputs are bit-identical to the historical phase-barriered paths.
"""

from repro.pipeline.artifacts import (CELL_SCHEMA_VERSION, CellArtifact,
                                      CfgArtifact, ClassificationArtifact,
                                      DistributionArtifact, FmmArtifact,
                                      SolveArtifact, StageArtifact)
from repro.pipeline.resilience import (DEFAULT_RETRY_POLICY, FailureReport,
                                       RetryPolicy, StageTimeout,
                                       TaskFailure, classify_failure)
from repro.pipeline.scheduler import PipelineScheduler, PipelineStats
from repro.pipeline.stages import (SUITE_MECHANISMS, benchmark_dag,
                                   cell_stage, classify_stage,
                                   estimate_stage, result_stage,
                                   solve_stage, suite_pipeline)

__all__ = [
    "CELL_SCHEMA_VERSION",
    "CellArtifact",
    "CfgArtifact",
    "ClassificationArtifact",
    "DistributionArtifact",
    "FmmArtifact",
    "SolveArtifact",
    "StageArtifact",
    "PipelineScheduler",
    "PipelineStats",
    "DEFAULT_RETRY_POLICY",
    "FailureReport",
    "RetryPolicy",
    "StageTimeout",
    "TaskFailure",
    "classify_failure",
    "SUITE_MECHANISMS",
    "benchmark_dag",
    "cell_stage",
    "classify_stage",
    "estimate_stage",
    "result_stage",
    "solve_stage",
    "suite_pipeline",
]
