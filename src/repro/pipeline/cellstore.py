"""Persistent, content-addressed store of finished estimation cells.

The third disk-backed store of the pipeline, completing the stage
coverage: the solve store persists ILP optima, the classification
store persists CHMC tables, and this one persists whole *(mechanism,
pfail)* cells — the cell-granular pipeline's unit of fan-out
(:class:`~repro.pipeline.artifacts.CellArtifact`).  Keys are the
:meth:`~repro.pipeline.artifacts.DistributionArtifact.derive_key`
digest over CFG digest × geometry × timing × mechanism × pfail ×
:data:`~repro.pipeline.artifacts.CELL_SCHEMA_VERSION`, so a persisted
cell is addressed exactly like the running stage that would recompute
it — ``PipelineScheduler.plan()`` probes this store by content address
and marks up-stream-clean cells satisfied before any worker starts.

Entries hold everything a :class:`~repro.pwcet.estimator.PWCETEstimate`
needs (fault-free WCET, exact penalty pmf, exceedance correction, FMM
rows), so a warm run reconstructs estimates without touching the
solver, the analysis, or even the other two stores.  Values round-trip
exactly: the pmf is stored as base64 of its sparse support's raw
IEEE-754 bytes (schema v2), so a decoded cell is bit-for-bit
indistinguishable from a computed one — and encoding never repr's a
float, which used to dominate the whole cell stage's wall-clock.

Storage shares the shard conventions of the sibling stores
(append-only checksummed JSONL under ``cells-v<N>`` next to ``v<N>``
and ``classify-v<N>``; same ``REPRO_CACHE`` / ``--cache`` knob;
corrupt or foreign-schema entries degrade to recomputation).
"""

from __future__ import annotations

import base64
import os

import numpy as np

from repro.errors import ConfigurationError, DistributionError
from repro.fmm import FaultMissMap
from repro.pipeline.artifacts import CELL_SCHEMA_VERSION
from repro.pwcet.distribution import DiscreteDistribution
from repro.pwcet.estimator import PWCETEstimate
from repro.solve.store import ShardedStore, SolveStore, attach_remote


def _packed(array: np.ndarray, dtype: str) -> str:
    """Base64 of the array's raw little-endian bytes."""
    packed = np.ascontiguousarray(np.asarray(array, dtype=dtype))
    return base64.b64encode(packed.tobytes()).decode("ascii")


def encode_cell(estimate: PWCETEstimate) -> dict:
    """JSON-serialisable form of one finished estimation cell.

    The penalty pmf is stored sparsely and packed (schema v2): suite
    distributions reach hundreds of thousands of grid points at a few
    percent density, and a JSON float list — repr'd one float at a
    time — dominated the whole cell stage's wall-clock.  The support
    and its probabilities travel as base64 of the raw little-endian
    ``int64`` / ``float64`` bytes instead: the decoded dense array is
    bit-identical by construction (no text round-trip at all), and
    encode/decode are single C-speed passes.
    """
    pmf = estimate.penalty_misses.pmf
    support = np.flatnonzero(pmf)
    return {
        "program": estimate.program_name,
        "mechanism": estimate.mechanism_name,
        "wcet": estimate.wcet_fault_free,
        "width": len(pmf),
        "support": _packed(support, "<i8"),
        "pmf": _packed(pmf[support], "<f8"),
        "correction": float(estimate.exceedance_correction),
        "fmm": [list(row) for row in estimate.fmm.rows],
        "fmm_mechanism": estimate.fmm.mechanism_name,
    }


def decode_cell(value: object, *, name: str, mechanism: str,
                config, pfail: float) -> PWCETEstimate | None:
    """Inverse of :func:`encode_cell`; ``None`` on any malformation.

    ``None`` degrades to recomputation, exactly like a corrupt shard
    line — a truncated, bit-rotted or foreign entry can never become a
    wrong estimate.  The caller supplies the estimation context
    (name, mechanism, geometry, timing) because the key already binds
    it; the embedded names are cross-checked as one more guard.
    """
    try:
        if value["mechanism"] != mechanism:
            return None
        width = int(value["width"])
        support = np.frombuffer(base64.b64decode(value["support"],
                                                 validate=True),
                                dtype="<i8").astype(np.int64)
        weights = np.frombuffer(base64.b64decode(value["pmf"],
                                                 validate=True),
                                dtype="<f8").astype(np.float64)
        if width < 1 or support.shape != weights.shape:
            return None
        if support.size and (support[0] < 0 or support[-1] >= width
                             or np.any(np.diff(support) <= 0)):
            return None
        pmf = np.zeros(width)
        pmf[support] = weights
        fmm = FaultMissMap(
            geometry=config.geometry,
            rows=tuple(tuple(int(cell) for cell in row)
                       for row in value["fmm"]),
            mechanism_name=str(value["fmm_mechanism"]))
        return PWCETEstimate(
            program_name=name,
            mechanism_name=mechanism,
            wcet_fault_free=int(value["wcet"]),
            penalty_misses=DiscreteDistribution(pmf, normalized=False),
            timing=config.timing,
            fmm=fmm,
            exceedance_correction=float(value["correction"]))
    except (TypeError, ValueError, KeyError, IndexError,
            ConfigurationError, DistributionError):
        return None


#: Handles memoised per resolved root, like the sibling stores'.
_RESOLVED: dict[str, "CellStore"] = {}


class CellStore(ShardedStore):
    """Disk-backed map of cell keys to encoded estimation cells."""

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__(root, f"cells-v{CELL_SCHEMA_VERSION}")
        self._entries: dict[str, object] = {}
        self.corrupt_skipped = 0

    @classmethod
    def resolve(cls, override: str | None = None) -> "CellStore | None":
        """The store selected by ``override`` or ``REPRO_CACHE``.

        Same convention — and same *root* — as
        :meth:`~repro.solve.store.SolveStore.resolve`: all three stores
        live side by side under one cache directory.
        """
        solve_store = SolveStore.resolve(override)
        if solve_store is None:
            return None
        key = os.path.abspath(solve_store.root)
        store = _RESOLVED.get(key)
        if store is None:
            store = _RESOLVED[key] = cls(solve_store.root)
        attach_remote(store)
        return store

    # -- index hooks ---------------------------------------------------
    def _reset_index(self) -> None:
        self._entries = {}

    def _index_entry(self, parsed: tuple[str, str, object] | None) -> None:
        if parsed is None or parsed[0] != "cell":
            self.corrupt_skipped += 1
            return
        _kind, key, value = parsed
        self._entries[key] = value

    # -- reads / writes ------------------------------------------------
    def get(self, key: str) -> object | None:
        self._ensure_loaded()
        value = self._entries.get(key)
        if value is None and self.remote is not None:
            value = self._remote_fetch("cell", key)
            if value is not None:
                self._entries[key] = value
        return value

    def put(self, key: str, value: object) -> None:
        self._ensure_loaded()
        # Identical entries are skipped; a decode-failed occupant must
        # still be overwritten so load-time last-wins repairs the
        # store (same policy as the classification store).
        if self._entries.get(key) == value:
            return
        self._entries[key] = value
        self._append("cell", key, value)
        self._remote_push("cell", key, value)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)
