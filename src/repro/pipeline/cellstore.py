"""Persistent, content-addressed store of finished estimation cells.

The third disk-backed store of the pipeline, completing the stage
coverage: the solve store persists ILP optima, the classification
store persists CHMC tables, and this one persists whole *(mechanism,
pfail)* cells — the cell-granular pipeline's unit of fan-out
(:class:`~repro.pipeline.artifacts.CellArtifact`).  Keys are the
:meth:`~repro.pipeline.artifacts.DistributionArtifact.derive_key`
digest over CFG digest × geometry × timing × mechanism × pfail ×
:data:`~repro.pipeline.artifacts.CELL_SCHEMA_VERSION`, so a persisted
cell is addressed exactly like the running stage that would recompute
it — ``PipelineScheduler.plan()`` probes this store by content address
and marks up-stream-clean cells satisfied before any worker starts.

Entries hold everything a :class:`~repro.pwcet.estimator.PWCETEstimate`
needs (fault-free WCET, exact penalty pmf, exceedance correction, FMM
rows), so a warm run reconstructs estimates without touching the
solver, the analysis, or even the other two stores.  Values round-trip
exactly: Python floats survive JSON encode/decode bit-for-bit, so a
decoded cell is indistinguishable from a computed one.

Storage shares the shard conventions of the sibling stores
(append-only checksummed JSONL under ``cells-v<N>`` next to ``v<N>``
and ``classify-v<N>``; same ``REPRO_SOLVE_CACHE`` / ``--cache`` knob;
corrupt or foreign-schema entries degrade to recomputation).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, DistributionError
from repro.fmm import FaultMissMap
from repro.pipeline.artifacts import CELL_SCHEMA_VERSION
from repro.pwcet.distribution import DiscreteDistribution
from repro.pwcet.estimator import PWCETEstimate
from repro.solve.store import ShardedStore, SolveStore


def encode_cell(estimate: PWCETEstimate) -> dict:
    """JSON-serialisable form of one finished estimation cell."""
    return {
        "program": estimate.program_name,
        "mechanism": estimate.mechanism_name,
        "wcet": estimate.wcet_fault_free,
        "pmf": [float(p) for p in estimate.penalty_misses.pmf],
        "correction": float(estimate.exceedance_correction),
        "fmm": [list(row) for row in estimate.fmm.rows],
        "fmm_mechanism": estimate.fmm.mechanism_name,
    }


def decode_cell(value: object, *, name: str, mechanism: str,
                config, pfail: float) -> PWCETEstimate | None:
    """Inverse of :func:`encode_cell`; ``None`` on any malformation.

    ``None`` degrades to recomputation, exactly like a corrupt shard
    line — a truncated, bit-rotted or foreign entry can never become a
    wrong estimate.  The caller supplies the estimation context
    (name, mechanism, geometry, timing) because the key already binds
    it; the embedded names are cross-checked as one more guard.
    """
    try:
        if value["mechanism"] != mechanism:
            return None
        fmm = FaultMissMap(
            geometry=config.geometry,
            rows=tuple(tuple(int(cell) for cell in row)
                       for row in value["fmm"]),
            mechanism_name=str(value["fmm_mechanism"]))
        return PWCETEstimate(
            program_name=name,
            mechanism_name=mechanism,
            wcet_fault_free=int(value["wcet"]),
            penalty_misses=DiscreteDistribution(
                np.asarray(value["pmf"], dtype=np.float64),
                normalized=False),
            timing=config.timing,
            fmm=fmm,
            exceedance_correction=float(value["correction"]))
    except (TypeError, ValueError, KeyError, ConfigurationError,
            DistributionError):
        return None


#: Handles memoised per resolved root, like the sibling stores'.
_RESOLVED: dict[str, "CellStore"] = {}


class CellStore(ShardedStore):
    """Disk-backed map of cell keys to encoded estimation cells."""

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__(root, f"cells-v{CELL_SCHEMA_VERSION}")
        self._entries: dict[str, object] = {}
        self.corrupt_skipped = 0

    @classmethod
    def resolve(cls, override: str | None = None) -> "CellStore | None":
        """The store selected by ``override`` or ``REPRO_SOLVE_CACHE``.

        Same convention — and same *root* — as
        :meth:`~repro.solve.store.SolveStore.resolve`: all three stores
        live side by side under one cache directory.
        """
        solve_store = SolveStore.resolve(override)
        if solve_store is None:
            return None
        key = os.path.abspath(solve_store.root)
        store = _RESOLVED.get(key)
        if store is None:
            store = _RESOLVED[key] = cls(solve_store.root)
        return store

    # -- index hooks ---------------------------------------------------
    def _reset_index(self) -> None:
        self._entries = {}

    def _index_entry(self, parsed: tuple[str, str, object] | None) -> None:
        if parsed is None or parsed[0] != "cell":
            self.corrupt_skipped += 1
            return
        _kind, key, value = parsed
        self._entries[key] = value

    # -- reads / writes ------------------------------------------------
    def get(self, key: str) -> object | None:
        self._ensure_loaded()
        return self._entries.get(key)

    def put(self, key: str, value: object) -> None:
        self._ensure_loaded()
        # Identical entries are skipped; a decode-failed occupant must
        # still be overwritten so load-time last-wins repairs the
        # store (same policy as the classification store).
        if self._entries.get(key) == value:
            return
        self._entries[key] = value
        self._append("cell", key, value)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)
