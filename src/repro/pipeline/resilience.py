"""Retry, timeout and failure-classification policy for the pipeline.

The paper computes safe bounds *in the presence of faults*; this
module applies the same discipline to the pipeline's own runtime.
Failures are split along pandaop's taxonomy (PAPERS.md) into

*transient* faults of the execution substrate — a killed or broken
pool worker (``BrokenProcessPool``), a stage that overran its timeout
budget, a torn IPC pipe — which are worth retrying: the pool is
rebuilt and every in-flight task resubmitted; and

*permanent* faults raised deterministically by the stage body itself
(:class:`~repro.errors.SolverError`, bad input): the pipeline is a
deterministic function of content-addressed inputs, so rerunning
reproduces them.  After ``max_attempts`` the task is *quarantined* —
recorded as a :class:`TaskFailure` — and only its dependent DAG
subtree is marked failed (``cascaded``); independent subtrees run to
completion, so a ``strict=False`` driver reports sound partial
results rather than nothing.

Recovery never changes results: stages are pure functions of their
content-addressed inputs, so a replayed stage produces the same bytes
and a recovered run stays byte-identical to an undisturbed one (the
chaos CI job diffs exactly this).
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

from repro.errors import PipelineError

#: Classification labels carried by :class:`TaskFailure`.
TRANSIENT = "transient"
PERMANENT = "permanent"
CASCADED = "cascaded"


class StageTimeout(PipelineError):
    """A pool stage exceeded its timeout budget and was killed."""


#: Substrate failures worth retrying.  ``BrokenExecutor`` covers
#: ``BrokenProcessPool`` (worker SIGKILL / OOM-kill); Connection /
#: EOF / pipe errors are torn executor IPC, not stage semantics.
_TRANSIENT_TYPES = (BrokenExecutor, StageTimeout, TimeoutError,
                    ConnectionError, EOFError, InterruptedError)


def classify_failure(error: BaseException) -> str:
    """``"transient"`` (retry) or ``"permanent"`` (quarantine)."""
    return TRANSIENT if isinstance(error, _TRANSIENT_TYPES) \
        else PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler retries, backs off and times stages out.

    :meth:`backoff` is deterministic (pure exponential): retry ``n``'s
    *ceiling* is ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds.
    The actual sleep (:meth:`sleep_backoff`) subtracts a random
    ``jitter`` fraction of that ceiling, so a fleet of tasks felled by
    one shared cause (a pool rebuild, a remote store outage) does not
    retry in lockstep — and it is *interruptible*: given a deadline it
    sleeps at most until then instead of sleeping through it.
    ``timeout`` bounds every pool stage's wall-clock;
    ``stage_timeouts`` overrides it per stage name (inline stages
    cannot be preempted and are not timed out).  ``sleep`` and ``rng``
    are injectable so tests retry instantly and deterministically.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    timeout: float | None = None
    stage_timeouts: dict[str, float] | None = None
    sleep: Callable[[float], None] = time.sleep
    #: Fraction of the backoff ceiling randomised away: the sleep is
    #: uniform in ``[backoff * (1 - jitter), backoff]``.  ``0`` keeps
    #: the legacy deterministic schedule.
    jitter: float = 0.5
    rng: Callable[[], float] = random.random

    def backoff(self, attempt: int) -> float:
        """Ceiling seconds to wait after the ``attempt``-th failure
        (1-based); deterministic, jitter applies in
        :meth:`sleep_backoff` only."""
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (max(1, attempt) - 1)))

    def sleep_backoff(self, attempt: int, *,
                      deadline: float | None = None) -> float:
        """Sleep the jittered backoff for ``attempt``; returns the
        seconds actually slept.

        ``deadline`` is a ``time.monotonic`` instant (e.g. the nearest
        in-flight stage timeout): the sleep is clamped so the caller
        wakes in time to act on it rather than sleeping through it.
        """
        duration = self.backoff(attempt)
        if self.jitter > 0:
            duration -= duration * self.jitter * self.rng()
        if deadline is not None:
            duration = min(duration, max(0.0, deadline - time.monotonic()))
        if duration > 0:
            self.sleep(duration)
            return duration
        return 0.0

    def timeout_for(self, stage: str) -> float | None:
        if self.stage_timeouts and stage in self.stage_timeouts:
            return self.stage_timeouts[stage]
        return self.timeout


#: The drivers' default: transient recovery on, no stage timeouts.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure record standing in for a task's result.

    In ``strict=False`` runs the scheduler's result dict maps a
    quarantined task's key to one of these instead of a stage value;
    dependent tasks receive a ``cascaded`` failure pointing at the
    quarantined root via ``root_key``.
    """

    key: str
    stage: str
    #: ``transient`` / ``permanent`` / ``cascaded``.
    classification: str
    #: Execution attempts charged to this task (0 for cascades).
    attempts: int
    #: ``TypeName: message`` of the final error.
    error: str
    #: In-stage seconds of the final failing attempt (0 when unknown —
    #: e.g. the victim of a pool break cannot report its time).
    elapsed: float = 0.0
    #: For cascades: the quarantined task this failure descends from.
    root_key: str | None = None

    @property
    def cascaded(self) -> bool:
        return self.classification == CASCADED

    def as_dict(self) -> dict:
        """JSON-serialisable form (stable field names)."""
        return {"key": self.key, "stage": self.stage,
                "classification": self.classification,
                "attempts": self.attempts, "error": self.error,
                "elapsed": self.elapsed, "root_key": self.root_key}

    @classmethod
    def from_dict(cls, value: dict) -> "TaskFailure":
        return cls(key=str(value["key"]), stage=str(value["stage"]),
                   classification=str(value["classification"]),
                   attempts=int(value["attempts"]),
                   error=str(value["error"]),
                   elapsed=float(value.get("elapsed", 0.0)),
                   root_key=value.get("root_key"))


@dataclass
class FailureReport:
    """Structured resilience accounting of one pipeline run.

    Lives on :class:`~repro.pipeline.scheduler.PipelineStats`, so
    every driver that already threads ``pipeline_stats`` gets the
    failure ledger for free.  ``failures`` lists terminal records only
    (quarantines and their cascades) — a retried-then-recovered task
    shows up solely in the ``retries`` counter, keeping clean-run
    reports structurally empty.
    """

    failures: list[TaskFailure] = field(default_factory=list)
    #: Resubmissions after a transient failure.
    retries: int = 0
    #: Pool stages killed for overrunning their timeout budget.
    timeouts: int = 0
    #: Worker-pool rebuilds (pool breaks + timeout kills).
    pool_rebuilds: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def quarantined(self) -> tuple[TaskFailure, ...]:
        """Root failures only (cascades excluded)."""
        return tuple(failure for failure in self.failures
                     if failure.classification != CASCADED)

    def summary(self) -> dict[str, int]:
        return {
            "failed_tasks": len(self.failures),
            "quarantined": len(self.quarantined),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
        }

    def as_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`.

        Lets drivers persist the failure ledger alongside a partial
        report and lets a wrapping service return it over the wire.
        """
        return {"failures": [failure.as_dict()
                             for failure in self.failures],
                "retries": self.retries, "timeouts": self.timeouts,
                "pool_rebuilds": self.pool_rebuilds}

    @classmethod
    def from_dict(cls, value: dict) -> "FailureReport":
        return cls(failures=[TaskFailure.from_dict(item)
                             for item in value.get("failures", ())],
                   retries=int(value.get("retries", 0)),
                   timeouts=int(value.get("timeouts", 0)),
                   pool_rebuilds=int(value.get("pool_rebuilds", 0)))
