"""Retry, timeout and failure-classification policy for the pipeline.

The paper computes safe bounds *in the presence of faults*; this
module applies the same discipline to the pipeline's own runtime.
Failures are split along pandaop's taxonomy (PAPERS.md) into

*transient* faults of the execution substrate — a killed or broken
pool worker (``BrokenProcessPool``), a stage that overran its timeout
budget, a torn IPC pipe — which are worth retrying: the pool is
rebuilt and every in-flight task resubmitted; and

*permanent* faults raised deterministically by the stage body itself
(:class:`~repro.errors.SolverError`, bad input): the pipeline is a
deterministic function of content-addressed inputs, so rerunning
reproduces them.  After ``max_attempts`` the task is *quarantined* —
recorded as a :class:`TaskFailure` — and only its dependent DAG
subtree is marked failed (``cascaded``); independent subtrees run to
completion, so a ``strict=False`` driver reports sound partial
results rather than nothing.

Recovery never changes results: stages are pure functions of their
content-addressed inputs, so a replayed stage produces the same bytes
and a recovered run stays byte-identical to an undisturbed one (the
chaos CI job diffs exactly this).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

from repro.errors import PipelineError

#: Classification labels carried by :class:`TaskFailure`.
TRANSIENT = "transient"
PERMANENT = "permanent"
CASCADED = "cascaded"


class StageTimeout(PipelineError):
    """A pool stage exceeded its timeout budget and was killed."""


#: Substrate failures worth retrying.  ``BrokenExecutor`` covers
#: ``BrokenProcessPool`` (worker SIGKILL / OOM-kill); Connection /
#: EOF / pipe errors are torn executor IPC, not stage semantics.
_TRANSIENT_TYPES = (BrokenExecutor, StageTimeout, TimeoutError,
                    ConnectionError, EOFError, InterruptedError)


def classify_failure(error: BaseException) -> str:
    """``"transient"`` (retry) or ``"permanent"`` (quarantine)."""
    return TRANSIENT if isinstance(error, _TRANSIENT_TYPES) \
        else PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler retries, backs off and times stages out.

    Backoff is deterministic (pure exponential, no jitter): retry
    ``n`` waits ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds,
    so a recovered run's retry schedule is reproducible.  ``timeout``
    bounds every pool stage's wall-clock; ``stage_timeouts`` overrides
    it per stage name (inline stages cannot be preempted and are not
    timed out).  ``sleep`` is injectable so tests retry instantly.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    timeout: float | None = None
    stage_timeouts: dict[str, float] | None = None
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, attempt: int) -> float:
        """Seconds to wait after the ``attempt``-th failure (1-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (max(1, attempt) - 1)))

    def timeout_for(self, stage: str) -> float | None:
        if self.stage_timeouts and stage in self.stage_timeouts:
            return self.stage_timeouts[stage]
        return self.timeout


#: The drivers' default: transient recovery on, no stage timeouts.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure record standing in for a task's result.

    In ``strict=False`` runs the scheduler's result dict maps a
    quarantined task's key to one of these instead of a stage value;
    dependent tasks receive a ``cascaded`` failure pointing at the
    quarantined root via ``root_key``.
    """

    key: str
    stage: str
    #: ``transient`` / ``permanent`` / ``cascaded``.
    classification: str
    #: Execution attempts charged to this task (0 for cascades).
    attempts: int
    #: ``TypeName: message`` of the final error.
    error: str
    #: In-stage seconds of the final failing attempt (0 when unknown —
    #: e.g. the victim of a pool break cannot report its time).
    elapsed: float = 0.0
    #: For cascades: the quarantined task this failure descends from.
    root_key: str | None = None

    @property
    def cascaded(self) -> bool:
        return self.classification == CASCADED


@dataclass
class FailureReport:
    """Structured resilience accounting of one pipeline run.

    Lives on :class:`~repro.pipeline.scheduler.PipelineStats`, so
    every driver that already threads ``pipeline_stats`` gets the
    failure ledger for free.  ``failures`` lists terminal records only
    (quarantines and their cascades) — a retried-then-recovered task
    shows up solely in the ``retries`` counter, keeping clean-run
    reports structurally empty.
    """

    failures: list[TaskFailure] = field(default_factory=list)
    #: Resubmissions after a transient failure.
    retries: int = 0
    #: Pool stages killed for overrunning their timeout budget.
    timeouts: int = 0
    #: Worker-pool rebuilds (pool breaks + timeout kills).
    pool_rebuilds: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def quarantined(self) -> tuple[TaskFailure, ...]:
        """Root failures only (cascades excluded)."""
        return tuple(failure for failure in self.failures
                     if failure.classification != CASCADED)

    def summary(self) -> dict[str, int]:
        return {
            "failed_tasks": len(self.failures),
            "quarantined": len(self.quarantined),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
        }
