"""Typed, content-addressed stage artifacts of the estimation pipeline.

The paper's flow — program → CFG → cache classification → FMM → ILP
solve → pWCET distribution — runs as a DAG of *stages*; each stage's
output is one of the frozen dataclasses below.  Every artifact carries
``key``: the digest its stage's persistent store already uses (the CFG
digest for :class:`CfgArtifact`, a
:func:`repro.analysis.store.classification_key` for
:class:`ClassificationArtifact`, digests over the solve store's
:func:`repro.solve.store.store_context` for the solve-side stages), so
an artifact is *identified* the same way it is *persisted* — the
stores are read/write-through layers at the artifact boundary, not a
separate caching concern.

Artifacts are plain picklable data: a pool stage computes one in a
worker process and ships it back; the scheduler hands it to dependent
stages verbatim.  Stages that run in-process may omit bulky payloads
(``ClassificationArtifact.tables is None`` means the tables stay
resident in the producing analysis) — the key and counters always
travel.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


def _digest(*parts: object) -> str:
    """SHA-256 over a canonical JSON encoding of ``parts``."""
    payload = json.dumps(list(parts), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Schema of persisted pWCET cells (:mod:`repro.pipeline.cellstore`).
#: Folded into every :meth:`DistributionArtifact.derive_key` /
#: :meth:`CellArtifact.derive_key`, so bumping it invalidates every
#: stored cell without touching the solve or classification stores.
#: v2: sparse (width, support, values) pmf encoding — wide suite
#: distributions are mostly zero, and the dense float list dominated
#: warm-decode and write-through time.
CELL_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class StageArtifact:
    """Base of every stage output: the stage's content-address."""

    #: Digest key of this artifact, in the key family of the stage's
    #: persistent store (see module docstring).
    key: str


@dataclass(frozen=True)
class CfgArtifact(StageArtifact):
    """Stage 1: a compiled program's control-flow graph.

    ``key`` is :meth:`repro.cfg.graph.CFG.digest` — the prefix every
    downstream store key embeds.
    """

    name: str


@dataclass(frozen=True)
class ClassificationArtifact(StageArtifact):
    """Stage 2: CHMC tables (and SRB hit set) of one (CFG, geometry).

    ``key`` is the nominal-associativity
    :func:`~repro.analysis.store.classification_key`;
    ``table_keys`` maps every carried associativity to its own store
    key.  ``tables`` holds the store-encoded tables
    (:func:`~repro.analysis.store.encode_table` form) when the
    artifact crosses a process boundary, or ``None`` when they stay
    resident in the producing :class:`~repro.analysis.CacheAnalysis`.
    """

    cfg: CfgArtifact
    table_keys: dict[int, str] = field(repr=False)
    tables: dict[int, object] | None = field(repr=False)
    #: Sorted reference keys guaranteed to hit the SRB (``None`` when
    #: no requested mechanism consults the buffer).
    srb_hits: tuple | None = field(repr=False)
    #: :class:`~repro.analysis.classify.AnalysisStats` counters of the
    #: stage run that produced this artifact.
    stats: dict[str, float] = field(repr=False)
    #: In-process hand-off: the producing
    #: :class:`~repro.analysis.CacheAnalysis` itself, set only when
    #: producer and consumer share a process (inline stages) so the
    #: consumer reuses the object instead of decoding ``tables``.
    #: Always ``None`` on artifacts that cross a process boundary.
    analysis: object | None = field(default=None, repr=False,
                                    compare=False)


@dataclass(frozen=True)
class SolveArtifact(StageArtifact):
    """Stage 3a: the fault-free IPET WCET of one estimation context.

    ``key`` digests the solve store's context string plus the kind —
    the same inputs :func:`repro.solve.store.solve_key` folds into the
    persisted solution-artefact entry.
    """

    wcet_cycles: int

    @staticmethod
    def derive_key(store_context: str) -> str:
        return _digest("wcet", store_context)


@dataclass(frozen=True)
class FmmArtifact(StageArtifact):
    """Stage 3b: one mechanism's Fault Miss Map.

    ``key`` digests the solve store context plus the mechanism name —
    the FMM's cells are persisted individually under per-objective
    solve keys sharing exactly that context.
    """

    mechanism: str
    fmm: object = field(repr=False)  # :class:`repro.fmm.FaultMissMap`

    @staticmethod
    def derive_key(store_context: str, mechanism: str) -> str:
        return _digest("fmm", store_context, mechanism)


@dataclass(frozen=True)
class DistributionArtifact(StageArtifact):
    """Stage 4: the whole-cache fault penalty distribution (in misses).

    ``key`` extends the FMM key with the fault probability and the
    cell schema version — the digest over CFG digest × geometry ×
    mechanism × pfail × schema that also addresses the persisted cell
    (:class:`CellArtifact` shares the derivation).
    """

    mechanism: str
    pfail: float
    distribution: object = field(repr=False)

    @staticmethod
    def derive_key(store_context: str, mechanism: str,
                   pfail: float) -> str:
        return _digest("distribution", store_context, mechanism, pfail,
                       CELL_SCHEMA_VERSION)


@dataclass(frozen=True)
class CellArtifact(StageArtifact):
    """Stage 4': one finished (mechanism, pfail) estimation cell.

    The cell-granular pipeline's unit of fan-out *and* of persistence:
    ``key`` is the :meth:`DistributionArtifact.derive_key` digest (CFG
    digest × geometry × timing × mechanism × pfail × schema), which is
    exactly the key the :class:`~repro.pipeline.cellstore.CellStore`
    persists the finished estimate under — `plan()` probes the store by
    this address to satisfy up-stream-clean cells without running them.
    """

    mechanism: str
    pfail: float
    #: The finished :class:`~repro.pwcet.estimator.PWCETEstimate`.
    estimate: object = field(repr=False)
    #: Merged solver+analysis counters of the benchmark's solve stage,
    #: carried by exactly one cell per benchmark (the others ``None``)
    #: so downstream merges count each solve once.  ``None`` on every
    #: store-served cell: a served cell ran nothing.
    counters: dict | None = field(repr=False)
    #: True when ``plan()`` answered this cell from the cell store.
    from_store: bool = False
    #: Sibling pfail rows this cell's stage computed alongside its own
    #: (the batched distribution kernel's pfail-axis fan-in) and wrote
    #: through to the cell store; 0 when the cell ran unbatched.
    batched_rows: int = 0

    derive_key = staticmethod(DistributionArtifact.derive_key)
