"""Stage functions of the estimation pipeline (pool-safe, picklable).

These are the module-level task bodies the
:class:`~repro.pipeline.scheduler.PipelineScheduler` executes:

``classify_stage``
    program → :class:`~repro.pipeline.artifacts.ClassificationArtifact`.
    Runs the abstract-interpretation fixpoints (or decodes warm tables
    from the :class:`~repro.analysis.store.ClassificationStore` — the
    store is the stage's read/write-through layer) for exactly the
    associativities the requested mechanisms will degrade to, plus the
    SRB hit set when a mechanism consults the buffer.

``estimate_stage``
    (program, classification artifact) →
    :class:`~repro.experiments.runner.BenchmarkResult`.  Seeds a fresh
    estimator with the artifact's tables (zero further fixpoints) and
    runs the WCET + FMM + distribution stages; every ILP goes through
    the :class:`~repro.solve.store.SolveStore` read/write-through
    planner.

``suite_pipeline``
    Builds and runs the benchmark-suite DAG: one classify and one
    estimate task per benchmark, dependency-chained, all on one shared
    pool — so solve stages of early benchmarks overlap the
    classification of later ones instead of waiting on a phase
    barrier.  A ``phase_barrier=True`` mode (every estimate waits for
    *every* classification) exists solely as the benchmarking baseline.

The stage split is counter-transparent: an artifact-seeded estimator
performs no classification work and no classification-store traffic,
so the merged per-benchmark counters (classify stage + estimate stage)
are identical to the historical fused run — which keeps suite and
sweep reports bit-identical.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import CacheAnalysis
from repro.analysis.store import classification_key
from repro.pipeline.artifacts import CfgArtifact, ClassificationArtifact
from repro.pipeline.scheduler import PipelineScheduler, PipelineStats
from repro.reliability import ReliabilityMechanism, mechanism_by_name
from repro.suite import load

#: The paper's three configurations, in presentation order — the
#: mechanism set of every suite/sweep estimation.
SUITE_MECHANISMS = ("none", "srb", "rw")


def required_classifications(mechanisms, ways: int
                             ) -> tuple[tuple[int, ...], bool]:
    """Associativities (in first-demand order) a mechanism set needs.

    Mirrors the lazy demand order of the fused estimator exactly —
    nominal first, then each mechanism's degraded tables ``W-1, W-2,
    …`` — so a classify stage issues the same store traffic the
    estimator historically did.  The flag reports whether any
    mechanism consults the SRB (its all-faulty column replaces the
    associativity-0 table with the buffer's hit set).
    """
    assocs: list[int] = [ways]
    seen = {ways}
    needs_srb = False
    for mechanism in mechanisms:
        if not isinstance(mechanism, ReliabilityMechanism):
            mechanism = mechanism_by_name(mechanism)
        counts = mechanism.fault_counts(ways)
        for fault_count in range(1, max(counts) + 1):
            if mechanism.uses_srb and fault_count == ways:
                needs_srb = True
                continue
            assoc = ways - fault_count
            if assoc not in seen:
                seen.add(assoc)
                assocs.append(assoc)
    return tuple(assocs), needs_srb


def classification_artifact(analysis: CacheAnalysis, name: str,
                            mechanisms, *, carry_tables: bool
                            ) -> ClassificationArtifact:
    """Run (or decode) the classification stage on ``analysis``.

    The analysis object is the read/write-through boundary: warm
    tables decode from the persistent store, cold ones run the
    fixpoint engine and are written through.  ``carry_tables`` embeds
    the store-encoded tables in the artifact (required whenever the
    artifact crosses a process boundary); without it the artifact
    hands the analysis object itself to same-process consumers.
    """
    ways = analysis.geometry.ways
    assocs, needs_srb = required_classifications(mechanisms, ways)
    tables = {} if carry_tables else None
    for assoc in assocs:
        table = analysis.classification(assoc)
        if tables is not None:
            tables[assoc] = table.encoded()
    srb_hits = None
    if needs_srb:
        srb_hits = tuple(sorted(analysis.srb_always_hits()))
    digest = analysis.cfg.digest()
    return ClassificationArtifact(
        key=classification_key(digest, analysis.geometry, ways),
        cfg=CfgArtifact(key=digest, name=name),
        table_keys={assoc: classification_key(digest, analysis.geometry,
                                              assoc)
                    for assoc in assocs},
        tables=tables,
        srb_hits=srb_hits,
        stats=analysis.stats.as_dict(),
        analysis=None if carry_tables else analysis)


def classify_stage(name: str, config, mechanisms=SUITE_MECHANISMS,
                   carry_tables: bool = True) -> ClassificationArtifact:
    """Stage task: full classification stage of one suite benchmark.

    As a pool task (``carry_tables=True``) the artifact embeds the
    store-encoded tables; inline it hands the analysis object over
    directly, so the estimation stage reuses it with zero re-decoding.
    """
    program = load(name)
    analysis = CacheAnalysis(program.cfg, config.geometry,
                             cache=config.cache)
    return classification_artifact(analysis, name, mechanisms,
                                   carry_tables=carry_tables)


def estimate_stage(name: str, config, target_probability: float,
                   estimator_workers: int,
                   artifact: ClassificationArtifact,
                   *_barrier_artifacts) -> "object":
    """Stage task: WCET + FMM + distribution stages of one benchmark.

    ``estimator_workers`` is the per-ILP pool width of the inner
    estimator: 1 when this stage itself runs on the task pool
    (task-level parallelism owns the workers — nesting would only add
    overhead), the configuration's own width when the stage runs
    inline.  Extra positional artifacts (the ``phase_barrier``
    benchmarking mode depends on every classification) are ignored;
    only this benchmark's artifact seeds the estimator.
    """
    from repro.experiments.runner import BenchmarkResult
    from repro.pwcet import PWCETEstimator

    stage_config = replace(config, workers=estimator_workers)
    if artifact.analysis is not None:
        # Same-process hand-off: the classify stage's analysis serves
        # the estimator directly (its stats already include the
        # classification work, so nothing is merged twice).
        estimator = PWCETEstimator(artifact.analysis.cfg, stage_config,
                                   name=name, analysis=artifact.analysis)
        stage_stats: dict[str, float] = {}
    else:
        estimator = PWCETEstimator(load(name), stage_config, name=name)
        estimator.analysis.preload(artifact.tables, artifact.srb_hits)
        stage_stats = artifact.stats
    result = BenchmarkResult(
        name=name,
        wcet_fault_free=estimator.fault_free_wcet(),
        estimates=estimator.estimate_all(),
        target_probability=target_probability,
        solver_stats=_merged_counters(estimator.stats_summary(),
                                      stage_stats))
    return result


def _merged_counters(summary: dict[str, float],
                     stage_stats: dict[str, float]) -> dict[str, float]:
    """Fold a prior stage's counters into an estimator summary.

    Count-style keys sum; rate-style keys keep the estimator's value
    (rates never sum — drivers recompute them from totals).
    """
    merged = dict(summary)
    for key, value in stage_stats.items():
        if not key.endswith("_rate"):
            merged[key] = merged.get(key, 0) + value
    return merged


def suite_pipeline(benchmarks, config, target_probability: float, *,
                   workers: int = 1,
                   scheduler: PipelineScheduler | None = None,
                   stats: PipelineStats | None = None,
                   phase_barrier: bool = False) -> dict[str, object]:
    """Run the suite DAG; returns BenchmarkResults keyed by name.

    ``workers > 1`` executes both stage families on one shared process
    pool with only artifact dependencies between them; ``workers=1``
    runs the same DAG inline in deterministic submission order.
    Results are bit-identical either way.
    """
    # Dedupe while preserving order: a repeated benchmark name is one
    # task (and one result entry), exactly like the memoised runner.
    benchmarks = tuple(dict.fromkeys(benchmarks))
    if scheduler is None:
        scheduler = PipelineScheduler(workers=workers)
    # A single benchmark has nothing to overlap with: run it inline
    # and let the configuration's own worker width drive the per-ILP
    # batches instead (the historical behaviour).
    pool = workers > 1 and len(benchmarks) > 1
    estimator_workers = 1 if pool else config.workers
    classify_keys = tuple(f"classify:{name}" for name in benchmarks)
    for name in benchmarks:
        scheduler.add(f"classify:{name}", classify_stage,
                      args=(name, config, SUITE_MECHANISMS, pool),
                      stage="classify", pool=pool)
        deps = ((f"classify:{name}",) if not phase_barrier
                else (f"classify:{name}",) + tuple(
                    key for key in classify_keys
                    if key != f"classify:{name}"))
        scheduler.add(f"estimate:{name}", estimate_stage,
                      args=(name, config, target_probability,
                            estimator_workers),
                      deps=deps, stage="estimate", pool=pool)
    results = scheduler.run(stats=stats)
    suite = {}
    for name in benchmarks:
        result = results[f"estimate:{name}"]
        suite[name] = result
        if stats is not None:
            stats.merge_counters(result.solver_stats)
    return suite
