"""Stage functions of the estimation pipeline (pool-safe, picklable).

These are the module-level task bodies the
:class:`~repro.pipeline.scheduler.PipelineScheduler` executes:

``classify_stage``
    program → :class:`~repro.pipeline.artifacts.ClassificationArtifact`.
    Runs the abstract-interpretation fixpoints (or decodes warm tables
    from the :class:`~repro.analysis.store.ClassificationStore` — the
    store is the stage's read/write-through layer) for exactly the
    associativities the requested mechanisms will degrade to, plus the
    SRB hit set when a mechanism consults the buffer.

``solve_stage``
    (program, classification artifact) → :class:`SolveOutput`: the
    fault-free WCET plus every requested mechanism's Fault Miss Map,
    with the benchmark's merged solver+analysis counters.  Every ILP
    goes through the :class:`~repro.solve.store.SolveStore`
    read/write-through planner.

``cell_stage``
    (solve output) → :class:`~repro.pipeline.artifacts.CellArtifact`:
    one *(mechanism, pfail)* estimation cell — penalty convolution and
    the finished :class:`~repro.pwcet.estimator.PWCETEstimate` —
    written through the :class:`~repro.pipeline.cellstore.CellStore`
    under its content address, so the scheduler's plan pass can
    satisfy the cell from the store on the next run.  Given a
    pfail-axis batch, one cell computes its mechanism's whole axis in
    a single :func:`~repro.pwcet.batch.penalty_distributions` pass and
    prefills the sibling rows' addresses.

``result_stage``
    (cells) → :class:`~repro.experiments.runner.BenchmarkResult`:
    reassembles one benchmark's cells into the paper-facing result.

``estimate_stage``
    The pre-cell monolithic stage (WCET + FMM + distributions of one
    benchmark in one task), kept as the per-benchmark reference
    schedule (``schedule="benchmark"``) that the cell-granular DAG is
    property-tested bit-identical against.

``suite_pipeline``
    Builds and runs the benchmark-suite DAG: per benchmark a classify,
    a solve, one cell per (mechanism, pfail) and a result task,
    dependency-chained, all on one shared pool — so solve stages of
    early benchmarks overlap the classification of later ones, and
    small cells backfill workers (or the parent, by work stealing)
    idling on another benchmark's long ILP batch.  A
    ``phase_barrier=True`` mode (every estimate waits for *every*
    classification) exists solely as the benchmarking baseline.

The stage split is counter-transparent: an artifact-seeded estimator
performs no classification work and no classification-store traffic,
and the distribution/estimate work of the cell stages touches no
counters at all, so the merged per-benchmark counters are identical
to the historical fused run — which keeps suite and sweep reports
bit-identical across schedules and worker modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis import CacheAnalysis
from repro.analysis.store import classification_key
from repro.faults import FaultProbabilityModel
from repro.pipeline.artifacts import (CellArtifact, CfgArtifact,
                                      ClassificationArtifact,
                                      DistributionArtifact)
from repro.pipeline.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.pipeline.scheduler import PipelineScheduler, PipelineStats
from repro.reliability import ReliabilityMechanism, mechanism_by_name
from repro.solve.store import store_context
from repro.suite import load

#: The paper's three configurations, in presentation order — the
#: mechanism set of every suite/sweep estimation.
SUITE_MECHANISMS = ("none", "srb", "rw")


def required_classifications(mechanisms, ways: int
                             ) -> tuple[tuple[int, ...], bool]:
    """Associativities (in first-demand order) a mechanism set needs.

    Mirrors the lazy demand order of the fused estimator exactly —
    nominal first, then each mechanism's degraded tables ``W-1, W-2,
    …`` — so a classify stage issues the same store traffic the
    estimator historically did.  The flag reports whether any
    mechanism consults the SRB (its all-faulty column replaces the
    associativity-0 table with the buffer's hit set).
    """
    assocs: list[int] = [ways]
    seen = {ways}
    needs_srb = False
    for mechanism in mechanisms:
        if not isinstance(mechanism, ReliabilityMechanism):
            mechanism = mechanism_by_name(mechanism)
        counts = mechanism.fault_counts(ways)
        for fault_count in range(1, max(counts) + 1):
            if mechanism.uses_srb and fault_count == ways:
                needs_srb = True
                continue
            assoc = ways - fault_count
            if assoc not in seen:
                seen.add(assoc)
                assocs.append(assoc)
    return tuple(assocs), needs_srb


def classification_artifact(analysis: CacheAnalysis, name: str,
                            mechanisms, *, carry_tables: bool
                            ) -> ClassificationArtifact:
    """Run (or decode) the classification stage on ``analysis``.

    The analysis object is the read/write-through boundary: warm
    tables decode from the persistent store, cold ones run the
    fixpoint engine and are written through.  ``carry_tables`` embeds
    the store-encoded tables in the artifact (required whenever the
    artifact crosses a process boundary); without it the artifact
    hands the analysis object itself to same-process consumers.
    """
    ways = analysis.geometry.ways
    assocs, needs_srb = required_classifications(mechanisms, ways)
    tables = {} if carry_tables else None
    for assoc in assocs:
        table = analysis.classification(assoc)
        if tables is not None:
            tables[assoc] = table.encoded()
    srb_hits = None
    if needs_srb:
        srb_hits = tuple(sorted(analysis.srb_always_hits()))
    digest = analysis.cfg.digest()
    return ClassificationArtifact(
        key=classification_key(digest, analysis.geometry, ways),
        cfg=CfgArtifact(key=digest, name=name),
        table_keys={assoc: classification_key(digest, analysis.geometry,
                                              assoc)
                    for assoc in assocs},
        tables=tables,
        srb_hits=srb_hits,
        stats=analysis.stats.as_dict(),
        analysis=None if carry_tables else analysis)


def classify_stage(name: str, config, mechanisms=SUITE_MECHANISMS,
                   carry_tables: bool = True,
                   batch_geometries=()) -> ClassificationArtifact:
    """Stage task: full classification stage of one suite benchmark.

    As a pool task (``carry_tables=True``) the artifact embeds the
    store-encoded tables; inline it hands the analysis object over
    directly, so the estimation stage reuses it with zero re-decoding.

    ``batch_geometries`` (lead geometry first; empty = unbatched) is
    the geometry-batched kernel's fan-in, the classification analogue
    of the cell stage's ``batch_rows``: every listed geometry shares
    this benchmark's line size, so ONE stacked Must/May fixpoint pair
    classifies all of them at once
    (:func:`~repro.analysis.geometry_batch.grouped_analysis`) and the
    sibling geometries' tables + SRB hit sets are written through the
    classification store under their own content addresses — the
    siblings' classify stages then decode them as warm hits.  Each
    table is byte-identical to an unbatched computation, so batching
    never changes a result.
    """
    program = load(name)
    if len(batch_geometries) > 1:
        from repro.analysis.geometry_batch import grouped_analysis

        analysis = grouped_analysis(program.cfg, batch_geometries,
                                    mechanisms, cache=config.cache)
        # The batching counters (classify_batched_rows /
        # geometry_groups, presence-gated like dist_batched_rows)
        # travel on the group's shared stats object, so both the
        # inline analysis hand-off and the pooled artifact surface
        # them.
        return classification_artifact(analysis, name, mechanisms,
                                       carry_tables=carry_tables)
    analysis = CacheAnalysis(program.cfg, config.geometry,
                             cache=config.cache)
    return classification_artifact(analysis, name, mechanisms,
                                   carry_tables=carry_tables)


def estimate_stage(name: str, config, target_probability: float,
                   estimator_workers: int,
                   artifact: ClassificationArtifact,
                   *_barrier_artifacts) -> "object":
    """Stage task: WCET + FMM + distribution stages of one benchmark.

    ``estimator_workers`` is the per-ILP pool width of the inner
    estimator: 1 when this stage itself runs on the task pool
    (task-level parallelism owns the workers — nesting would only add
    overhead), the configuration's own width when the stage runs
    inline.  Extra positional artifacts (the ``phase_barrier``
    benchmarking mode depends on every classification) are ignored;
    only this benchmark's artifact seeds the estimator.
    """
    from repro.experiments.runner import BenchmarkResult
    from repro.pwcet import PWCETEstimator

    stage_config = replace(config, workers=estimator_workers)
    if artifact.analysis is not None:
        # Same-process hand-off: the classify stage's analysis serves
        # the estimator directly (its stats already include the
        # classification work, so nothing is merged twice).
        estimator = PWCETEstimator(artifact.analysis.cfg, stage_config,
                                   name=name, analysis=artifact.analysis)
        stage_stats: dict[str, float] = {}
    else:
        estimator = PWCETEstimator(load(name), stage_config, name=name)
        estimator.analysis.preload(artifact.tables, artifact.srb_hits)
        stage_stats = artifact.stats
    result = BenchmarkResult(
        name=name,
        wcet_fault_free=estimator.fault_free_wcet(),
        estimates=estimator.estimate_all(),
        target_probability=target_probability,
        solver_stats=_merged_counters(estimator.stats_summary(),
                                      stage_stats))
    return result


def _merged_counters(summary: dict[str, float],
                     stage_stats: dict[str, float]) -> dict[str, float]:
    """Fold a prior stage's counters into an estimator summary.

    Count-style keys sum; rate-style keys keep the estimator's value
    (rates never sum — drivers recompute them from totals).
    ``fault_pmf_*`` keys are process-scope memo diagnostics, not
    per-run work counters — including them would make ``solver_stats``
    depend on what ran earlier in the process, breaking its immutable
    per-run snapshot semantics, so they are dropped here; the
    ``*_corrupt_skipped`` store-repair snapshots are handle-cumulative
    for the same reason and get the same treatment.
    """
    merged = {key: value for key, value in summary.items()
              if not key.startswith("fault_pmf_")
              and not key.endswith("_corrupt_skipped")}
    for key, value in stage_stats.items():
        if not key.endswith("_rate") and not key.startswith("fault_pmf_") \
                and not key.endswith("_corrupt_skipped"):
            merged[key] = merged.get(key, 0) + value
    return merged


def _refresh_stores(cache) -> None:
    """Fold fresh shard writes into this process' store handles.

    Called at pooled/stolen stage entry so entries written by sibling
    workers since the handle's last load are visible before the stage
    reads or writes — the cross-process analogue of PR 5's
    handle-per-run discipline.  Keys are benchmark-scoped (every store
    key embeds the CFG digest), so the visibility set can never change
    a stage's own hit counters — only spare it duplicate writes.
    """
    from repro.analysis.store import ClassificationStore
    from repro.pipeline.cellstore import CellStore
    from repro.solve.store import SolveStore

    for store in (SolveStore.resolve(cache),
                  ClassificationStore.resolve(cache),
                  CellStore.resolve(cache)):
        if store is not None:
            store.refresh()


@dataclass(frozen=True)
class SolveOutput:
    """Pool-safe output of one benchmark's solve stage.

    Everything the benchmark's cells fan out over: the fault-free
    WCET, one Fault Miss Map per requested mechanism, and the merged
    solver+analysis counters of the classify+solve work (each cell
    carries a reference to the same dict; the result stage counts it
    once).
    """

    name: str
    wcet_cycles: int
    fmms: dict[str, object] = field(repr=False)
    counters: dict[str, float] = field(repr=False)


def solve_stage(name: str, config, mechanisms, estimator_workers: int,
                refresh: bool, artifact: ClassificationArtifact
                ) -> SolveOutput:
    """Stage task: WCET + FMM solves of one benchmark.

    The solver-facing prefix of the historical ``estimate_stage``:
    identical store traffic in identical order (WCET first, then each
    mechanism's FMM), stopping before the distribution work — which
    the per-(mechanism, pfail) cell stages own in the cell-granular
    schedule.  ``refresh`` folds sibling workers' shard writes in
    first (pool mode only).
    """
    from repro.pwcet import PWCETEstimator

    if refresh:
        _refresh_stores(config.cache)
    stage_config = replace(config, workers=estimator_workers)
    if artifact.analysis is not None:
        estimator = PWCETEstimator(artifact.analysis.cfg, stage_config,
                                   name=name, analysis=artifact.analysis)
        stage_stats: dict[str, float] = {}
    else:
        estimator = PWCETEstimator(load(name), stage_config, name=name)
        estimator.analysis.preload(artifact.tables, artifact.srb_hits)
        stage_stats = artifact.stats
    wcet = estimator.fault_free_wcet()
    fmms = {mechanism: estimator.fault_miss_map(mechanism)
            for mechanism in mechanisms}
    return SolveOutput(
        name=name, wcet_cycles=wcet, fmms=fmms,
        counters=_merged_counters(estimator.stats_summary(), stage_stats))


def cell_stage(name: str, mechanism_name: str, pfail: float, config,
               cell_key: str, refresh: bool, batch_rows,
               solve_output: SolveOutput) -> CellArtifact:
    """Stage task: one (mechanism, pfail) estimation cell.

    Pure derivation from the solve output — penalty convolution via
    the same :func:`~repro.pwcet.estimator.penalty_distribution` the
    estimator uses, so the estimate is bit-identical to the fused
    path's — written through the cell store under ``cell_key`` for the
    next run's plan pass to find.

    ``batch_rows`` (``((pfail, cell_key), ...)``; empty = unbatched)
    is the batched distribution kernel's pfail-axis fan-in: the FMM's
    penalty points are pfail-independent, so every listed row shares
    this cell's penalty structure and all of them come out of *one*
    :func:`~repro.pwcet.batch.penalty_distributions` pass.  The
    sibling rows are written through to the cell store under their own
    content addresses — a later run (the sweep's next pfail column)
    finds them in its plan pass — while this cell's own row (always in
    the batch) is the artifact returned.  Each row is bit-identical to
    an unbatched computation, so batching never changes a result.
    """
    from repro.pipeline.cellstore import CellStore, encode_cell
    from repro.pwcet.batch import penalty_distributions
    from repro.pwcet.estimator import PWCETEstimate

    if refresh:
        _refresh_stores(config.cache)
    mechanism = mechanism_by_name(mechanism_name)
    rows = tuple(batch_rows) or ((pfail, cell_key),)
    fmm = solve_output.fmms[mechanism_name]
    sets = config.geometry.sets
    models = [FaultProbabilityModel(geometry=config.geometry,
                                    pfail=row_pfail)
              for row_pfail, _ in rows]
    distributions = penalty_distributions(fmm, mechanism, models, sets)
    store = CellStore.resolve(config.cache)
    own = None
    for (row_pfail, row_key), model, distribution in zip(rows, models,
                                                         distributions):
        estimate = PWCETEstimate(
            program_name=name,
            mechanism_name=mechanism_name,
            wcet_fault_free=solve_output.wcet_cycles,
            penalty_misses=distribution,
            timing=config.timing,
            fmm=fmm,
            exceedance_correction=mechanism.exceedance_correction(model,
                                                                  sets))
        if store is not None:
            store.put(row_key, encode_cell(estimate))
        if row_key == cell_key:
            own = estimate
    return CellArtifact(key=cell_key, mechanism=mechanism_name,
                        pfail=pfail, estimate=own,
                        counters=solve_output.counters, from_store=False,
                        batched_rows=len(rows) - 1)


def _zero_counters() -> dict[str, float]:
    """The all-zero solver+analysis counter template.

    The ``solver_stats`` of a benchmark whose every cell was satisfied
    from the store: no solve stage ran, so nothing was counted — but
    downstream aggregation still finds every familiar key.
    """
    from repro.analysis.classify import AnalysisStats
    from repro.solve.planner import SolveStats

    return {**SolveStats().as_dict(), **AnalysisStats().as_dict()}


def result_stage(name: str, target_probability: float, mechanisms,
                 *cells: CellArtifact) -> "object":
    """Stage task: reassemble one benchmark's cells into its result.

    Always runs inline (it is every benchmark DAG's sink).  The solve
    counters travel on the computed cells — all of one benchmark's
    computed cells reference the same dict, counted once here; a
    benchmark served entirely from the store reports the zero
    template.  ``cells_from_store`` is added only when > 0, so a cold
    result's counter dict is key-identical to the per-benchmark
    schedule's.
    """
    from repro.experiments.runner import BenchmarkResult

    counters = next((cell.counters for cell in cells
                     if cell.counters is not None), None)
    counters = dict(counters) if counters is not None else _zero_counters()
    served = sum(1 for cell in cells if cell.from_store)
    if served:
        counters["cells_from_store"] = \
            counters.get("cells_from_store", 0) + served
    # Sibling pfail rows the batched distribution kernel prefilled;
    # added only when batching happened, so an unbatched result's
    # counter dict stays key-identical to the reference schedule's.
    batched = sum(cell.batched_rows for cell in cells)
    if batched:
        counters["dist_batched_rows"] = \
            counters.get("dist_batched_rows", 0) + batched
    return BenchmarkResult(
        name=name,
        wcet_fault_free=cells[0].estimate.wcet_fault_free,
        estimates={mechanism: cell.estimate
                   for mechanism, cell in zip(mechanisms, cells)},
        target_probability=target_probability,
        solver_stats=counters)


def benchmark_dag(scheduler: PipelineScheduler, name: str, config,
                  target_probability: float, *,
                  mechanisms=SUITE_MECHANISMS, pool: bool = False,
                  estimator_workers: int = 1, cell_store=None,
                  batch_pfails=None, batch_geometries=None,
                  classify_store=None, prefix: str = "") -> str:
    """Add one benchmark's cell-granular DAG; returns the result key.

    classify → solve → one cell per (mechanism, ``config.pfail``) →
    result.  Cells carry their artifact key as the dispatch order key
    and, when ``cell_store`` is given, a plan-pass probe that decodes
    the persisted cell — an up-stream-clean cell is satisfied from the
    store, and a benchmark whose every cell is satisfied skips its
    classify and solve stages outright.

    ``batch_pfails`` (mechanism → pfail axis, e.g. the sweep's grid
    columns) opts each cell into the batched distribution kernel: the
    cell's stage computes every *store-missing* row of its mechanism's
    axis in one batched pass and prefills the cell store with the
    siblings.  Per-cell content addresses are untouched — the batch is
    assembled from exactly the per-row :meth:`DistributionArtifact
    .derive_key` digests the plan pass probes — so ``--only-cells``
    filtering and incremental invalidation behave as without batching.
    Requires ``cell_store`` (prefilled rows must land somewhere).

    ``batch_geometries`` (the benchmark's line-size group, e.g. the
    sweep's geometry axis at this line size) does the same for the
    classify stage: its cold work fans in over every *store-missing*
    geometry of the group — one stacked fixpoint pair classifies them
    all and the siblings' tables are prefilled into the classification
    store under their own content addresses.  Requires
    ``classify_store`` (the same read/write-through handle the stage
    resolves); like the pfail batch, it is assembled from exactly the
    per-geometry :func:`~repro.analysis.store.classification_key`
    digests a sibling's stage would probe.
    """
    from repro.pipeline.cellstore import decode_cell

    digest = load(name).cfg.digest()
    context = store_context(digest, config.geometry, config.timing)
    batch_group = ()
    if batch_geometries and classify_store is not None:
        group = [config.geometry]
        for geometry in batch_geometries:
            # Only store-missing siblings enter the batch — a geometry
            # another run (or an earlier group lead) already persisted
            # costs nothing to keep.  The probe is raw store access,
            # not an analysis lookup, so it counts no stage traffic.
            if geometry == config.geometry:
                continue
            key = classification_key(digest, geometry, geometry.ways)
            if classify_store.get(key) is None:
                group.append(geometry)
        if len(group) > 1:
            batch_group = tuple(group)
    classify_key = scheduler.add(
        f"{prefix}classify:{name}", classify_stage,
        args=(name, config, tuple(mechanisms), pool, batch_group),
        stage="classify", pool=pool)
    solve_key = scheduler.add(
        f"{prefix}solve:{name}", solve_stage,
        args=(name, config, tuple(mechanisms), estimator_workers, pool),
        deps=(classify_key,), stage="solve", pool=pool)
    cell_keys = []
    for mechanism in mechanisms:
        cell_key = DistributionArtifact.derive_key(context, mechanism,
                                                   config.pfail)
        batch_rows = ()
        if batch_pfails and cell_store is not None:
            axis = []
            for row_pfail in batch_pfails.get(mechanism, ()):
                row_key = DistributionArtifact.derive_key(
                    context, mechanism, row_pfail)
                # Only store-missing siblings enter the batch — a row
                # another run already persisted costs nothing to keep.
                if row_key != cell_key and cell_store.get(row_key) \
                        is not None:
                    continue
                axis.append((row_pfail, row_key))
            if not any(key == cell_key for _, key in axis):
                axis.insert(0, (config.pfail, cell_key))
            if len(axis) > 1:
                batch_rows = tuple(axis)
        probe = None
        if cell_store is not None:
            def probe(key=cell_key, mechanism=mechanism):
                value = cell_store.get(key)
                if value is None:
                    return None
                estimate = decode_cell(value, name=name,
                                       mechanism=mechanism,
                                       config=config, pfail=config.pfail)
                if estimate is None:
                    return None
                return CellArtifact(key=key, mechanism=mechanism,
                                    pfail=config.pfail,
                                    estimate=estimate, counters=None,
                                    from_store=True)
        cell_keys.append(scheduler.add(
            f"{prefix}cell:{name}:{mechanism}", cell_stage,
            args=(name, mechanism, config.pfail, config, cell_key, pool,
                  batch_rows),
            deps=(solve_key,), stage="cell", pool=pool,
            order_key=cell_key, probe=probe))
    return scheduler.add(
        f"{prefix}result:{name}", result_stage,
        args=(name, target_probability, tuple(mechanisms)),
        deps=tuple(cell_keys), stage="result")


def suite_pipeline(benchmarks, config, target_probability: float, *,
                   workers: int = 1,
                   scheduler: PipelineScheduler | None = None,
                   stats: PipelineStats | None = None,
                   phase_barrier: bool = False,
                   schedule: str = "cell",
                   mechanisms=SUITE_MECHANISMS,
                   batch_pfails=None,
                   batch_geometries=None,
                   strict: bool = True,
                   retry: "RetryPolicy | None" = None
                   ) -> dict[str, object]:
    """Run the suite DAG; returns BenchmarkResults keyed by name.

    ``workers > 1`` executes every stage family on one shared process
    pool with only artifact dependencies between them; ``workers=1``
    runs the same DAG inline in deterministic dispatch order.
    Results are bit-identical either way.

    Resilience: the scheduler runs under ``retry`` (default
    :data:`~repro.pipeline.resilience.DEFAULT_RETRY_POLICY` — killed
    workers and broken pools are recovered transparently).  With
    ``strict=False`` a permanently-failing benchmark yields a
    :class:`~repro.pipeline.resilience.TaskFailure` in the returned
    dict instead of aborting the suite; ``strict=True`` re-raises the
    original error after retries are exhausted.

    ``schedule`` selects the DAG shape: ``"cell"`` (default) fans the
    distribution work out per (mechanism, pfail) cell with plan-pass
    store probes — a warm rerun satisfies every cell from the store,
    an edited benchmark recomputes only its own stages; ``"benchmark"``
    is the monolithic per-benchmark reference schedule (also used by
    ``phase_barrier``, which is meaningless at cell granularity).
    ``mechanisms`` restricts the estimated set (cell schedule only —
    the reference schedule always estimates the paper's three).
    ``batch_pfails`` (mechanism → pfail axis) opts the cell stages
    into the batched distribution kernel's pfail-axis fan-in, and
    ``batch_geometries`` (the line-size group of ``config.geometry``)
    opts the classify stages into the geometry-batched stacked kernel;
    see :func:`benchmark_dag`.
    """
    # Dedupe while preserving order: a repeated benchmark name is one
    # task (and one result entry), exactly like the memoised runner.
    benchmarks = tuple(dict.fromkeys(benchmarks))
    if scheduler is None:
        scheduler = PipelineScheduler(
            workers=workers,
            retry=retry if retry is not None else DEFAULT_RETRY_POLICY,
            strict=strict)
    # A single benchmark still fans out over its cells, but runs them
    # inline and lets the configuration's own worker width drive the
    # per-ILP batches instead (the historical behaviour).
    pool = workers > 1 and len(benchmarks) > 1
    estimator_workers = 1 if pool else config.workers
    if phase_barrier or schedule == "benchmark":
        classify_keys = tuple(f"classify:{name}" for name in benchmarks)
        for name in benchmarks:
            scheduler.add(f"classify:{name}", classify_stage,
                          args=(name, config, SUITE_MECHANISMS, pool),
                          stage="classify", pool=pool)
            deps = ((f"classify:{name}",) if not phase_barrier
                    else (f"classify:{name}",) + tuple(
                        key for key in classify_keys
                        if key != f"classify:{name}"))
            scheduler.add(f"estimate:{name}", estimate_stage,
                          args=(name, config, target_probability,
                                estimator_workers),
                          deps=deps, stage="estimate", pool=pool)
        result_keys = {name: f"estimate:{name}" for name in benchmarks}
        results = scheduler.run(stats=stats)
    else:
        from repro.pipeline.cellstore import CellStore

        cell_store = CellStore.resolve(config.cache)
        if cell_store is not None:
            # Cells persisted by pool workers of an earlier run in
            # this process live in shards the memoised handle has not
            # seen; fold them in before the plan pass probes.
            cell_store.refresh()
        classify_store = None
        if batch_geometries:
            from repro.analysis.store import ClassificationStore

            classify_store = ClassificationStore.resolve(config.cache)
            if classify_store is not None:
                classify_store.refresh()
        result_keys = {
            name: benchmark_dag(scheduler, name, config,
                                target_probability,
                                mechanisms=mechanisms, pool=pool,
                                estimator_workers=estimator_workers,
                                cell_store=cell_store,
                                batch_pfails=batch_pfails,
                                batch_geometries=batch_geometries,
                                classify_store=classify_store)
            for name in benchmarks}
        results = scheduler.run(stats=stats)
    suite = {}
    for name in benchmarks:
        result = results[result_keys[name]]
        suite[name] = result
        if stats is not None:
            # A strict=False run maps a failed benchmark's key to a
            # TaskFailure sentinel, which carries no counters.
            stats.merge_counters(getattr(result, "solver_stats", None))
    return suite
