"""The paper's fault probability model (Section II-A).

Each SRAM cell fails independently with probability ``pfail``; a cache
block with at least one failed bit is disabled.  With ``K`` the block
size in bits:

* eq. (1): ``pbf = 1 - (1 - pfail)^K`` — block failure probability;
* eq. (2): ``pwf(w) = C(W, w) pbf^w (1-pbf)^(W-w)`` — probability of
  exactly ``w`` faulty ways among ``W`` in a set;
* eq. (3): same binomial over ``W - 1`` ways — the Reliable Way
  mechanism masks faults in one hardened way per set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache import CacheGeometry
from repro.util import check_probability


@dataclass(frozen=True)
class FaultProbabilityModel:
    """Fault probabilities for one cache geometry and cell fail rate."""

    geometry: CacheGeometry
    pfail: float

    def __post_init__(self) -> None:
        check_probability(self.pfail, "pfail")

    @property
    def block_bits(self) -> int:
        """The paper's ``K``: block size in bits."""
        return self.geometry.block_bits

    @property
    def pbf(self) -> float:
        """Block failure probability — eq. (1).

        Computed as ``-expm1(K * log1p(-pfail))`` for accuracy at the
        tiny ``pfail`` values of the resilience roadmap (1e-13 .. 1e-3).
        """
        if self.pfail == 0.0:
            return 0.0
        if self.pfail == 1.0:
            return 1.0
        return -math.expm1(self.block_bits * math.log1p(-self.pfail))

    def pwf(self, faulty_ways: int, *, ways: int | None = None) -> float:
        """Probability of exactly ``w`` faulty ways in a set — eq. (2).

        ``ways`` overrides the binomial's size (eq. (3) uses ``W-1``).
        """
        if ways is None:
            ways = self.geometry.ways
        if not 0 <= faulty_ways <= ways:
            return 0.0
        pbf = self.pbf
        return (math.comb(ways, faulty_ways)
                * pbf ** faulty_ways
                * (1.0 - pbf) ** (ways - faulty_ways))

    def pwf_reliable_way(self, faulty_ways: int) -> float:
        """Eq. (3): fault distribution with one hardened way per set.

        At most ``W - 1`` ways can be (effectively) faulty; faults
        hitting the hardened way are masked.
        """
        return self.pwf(faulty_ways, ways=self.geometry.ways - 1)

    def pwf_vector(self, *, reliable_way: bool = False) -> tuple[float, ...]:
        """The whole per-set distribution as a tuple indexed by ``w``."""
        ways = self.geometry.ways - (1 if reliable_way else 0)
        return tuple(self.pwf(w, ways=ways) for w in range(ways + 1))

    def probability_set_all_faulty(self) -> float:
        """Probability that an unprotected set loses every way."""
        return self.pwf(self.geometry.ways)

    def expected_faulty_ways_per_set(self) -> float:
        """Mean number of faulty ways in a set (binomial mean)."""
        return self.geometry.ways * self.pbf
