"""Permanent-fault probability model and fault injection."""

from repro.faults.model import FaultProbabilityModel
from repro.faults.injection import sample_fault_maps

__all__ = ["FaultProbabilityModel", "sample_fault_maps"]
