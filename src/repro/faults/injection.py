"""Monte-Carlo fault injection for validation and MBPTA sampling."""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.cache import CacheGeometry, FaultMap
from repro.faults.model import FaultProbabilityModel


def sample_fault_maps(model: FaultProbabilityModel, count: int,
                      rng: random.Random, *,
                      reliable_ways: int = 0) -> Iterator[FaultMap]:
    """Yield ``count`` i.i.d. fault maps drawn from the block model.

    Each (set, way) frame fails independently with probability ``pbf``
    (the bit-level process aggregated to block granularity, which is
    exactly the abstraction of the paper: only the number of faulty
    blocks per set matters).  ``reliable_ways`` hardened ways per set
    never fail — use 1 for the RW mechanism.
    """
    geometry: CacheGeometry = model.geometry
    pbf = model.pbf
    for _ in range(count):
        yield FaultMap.sample(geometry, pbf, rng,
                              reliable_ways=reliable_ways)
