"""Hardware cost model for the reliability mechanisms.

The paper's conclusion lists "an extensive analysis of the impact of
the proposed mechanisms on die area and power consumption" as future
work, and its introduction motivates the two mechanisms as points on a
pWCET/cost trade-off curve.  This package provides the missing cost
side: an analytical SRAM-array model (cell counts, hardened-cell
overhead, leakage) and a combined cost/benefit report.
"""

from repro.hwcost.model import (
    CellTechnology,
    HardwareCost,
    MechanismCostModel,
)
from repro.hwcost.tradeoff import TradeoffPoint, tradeoff_points

__all__ = [
    "CellTechnology",
    "HardwareCost",
    "MechanismCostModel",
    "TradeoffPoint",
    "tradeoff_points",
]
