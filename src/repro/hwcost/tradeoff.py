"""The pWCET-gain / hardware-cost trade-off (paper §I and §IV-B).

"The two mechanisms differ by their hardware cost and impact on
estimated pWCETs, to allow the hardware designer to find the best
pWCET/cost tradeoff" — this module quantifies both axes per benchmark
and mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwcost.model import MechanismCostModel
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.reliability import MECHANISMS
from repro.suite import load


@dataclass(frozen=True)
class TradeoffPoint:
    """One (benchmark, mechanism) point of the trade-off space."""

    benchmark: str
    mechanism: str
    pwcet: int
    gain: float                  # pWCET reduction vs no protection
    area_overhead: float         # fraction of the unprotected cache
    leakage_overhead: float      # fraction of baseline leakage

    @property
    def gain_per_area_point(self) -> float:
        """Percentage points of pWCET gain per percent of extra area.

        Infinite for the free baseline; the designer's figure of merit
        for comparing SRB against RW.
        """
        if self.area_overhead == 0.0:
            return float("inf") if self.gain > 0 else 0.0
        return self.gain / self.area_overhead


def tradeoff_points(benchmarks: tuple[str, ...],
                    config: EstimatorConfig | None = None, *,
                    probability: float = TARGET_EXCEEDANCE
                    ) -> list[TradeoffPoint]:
    """Gain-vs-cost points for every benchmark and mechanism."""
    if config is None:
        config = EstimatorConfig()
    cost_model = MechanismCostModel(config.geometry)
    baseline_leakage = cost_model.cost_of(MECHANISMS[0]).leakage_equivalents

    points = []
    for name in benchmarks:
        estimator = PWCETEstimator(load(name), config, name=name)
        reference = estimator.estimate("none").pwcet(probability)
        for mechanism in MECHANISMS:
            cost = cost_model.cost_of(mechanism)
            pwcet = estimator.estimate(mechanism).pwcet(probability)
            points.append(TradeoffPoint(
                benchmark=name, mechanism=mechanism.name, pwcet=pwcet,
                gain=1.0 - pwcet / reference,
                area_overhead=cost.area_overhead_ratio,
                leakage_overhead=(cost.leakage_equivalents
                                  / baseline_leakage - 1.0)))
    return points


def format_tradeoff(points: list[TradeoffPoint]) -> str:
    """Aligned table of the trade-off space."""
    lines = [f"{'benchmark':14s} {'mech':>5s} {'pWCET':>10s} {'gain':>7s} "
             f"{'area+':>7s} {'leak+':>7s} {'gain/area':>10s}"]
    lines.append("-" * len(lines[0]))
    for point in points:
        merit = point.gain_per_area_point
        merit_text = "inf" if merit == float("inf") else f"{merit:10.1f}"
        lines.append(
            f"{point.benchmark:14s} {point.mechanism:>5s} {point.pwcet:10d} "
            f"{point.gain:7.1%} {point.area_overhead:7.2%} "
            f"{point.leakage_overhead:7.2%} {merit_text:>10s}")
    return "\n".join(lines)
