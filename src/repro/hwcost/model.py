"""Analytical area/leakage model of the cache plus reliability hardware.

The model follows the approach of the low-voltage cache literature the
paper builds on (Ghasemi et al. [11], Kulkarni et al. [12]): data
arrays are modelled by cell count, and fault *resilience* is obtained
by replacing standard 6T SRAM cells with larger hardened cells (8T or
Schmitt-trigger 10T), paying a per-cell area and leakage factor.

Baseline cache cost:

* data array: ``S * W * K`` bits of 6T cells;
* tag + state array: per block, ``tag_bits + valid + lru_bits`` cells
  (LRU state and control bits are assumed fault-free by the paper, so
  they are hardened in *every* configuration and contribute the same
  to all mechanisms).

Mechanism overheads (relative to that baseline):

* **RW** hardens one full way: ``S * K`` data bits upgraded from 6T to
  hardened cells (plus that way's tags);
* **SRB** hardens a single extra line: ``K`` data bits of hardened
  cells, one hardened tag entry, and a comparator — a fraction of the
  RW's overhead, which is exactly the paper's cost argument for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError
from repro.reliability import ReliabilityMechanism
from repro.reliability.mechanism import (NoProtection, ReliableWay,
                                         SharedReliableBuffer)


@dataclass(frozen=True)
class CellTechnology:
    """Relative area/leakage of the SRAM cell variants.

    Defaults follow the published comparisons: an 8T cell is ~1.3x the
    6T area; a Schmitt-trigger 10T cell (Kulkarni et al. [12], robust
    at sub-threshold voltages) is ~2.0x area and ~1.6x leakage.
    """

    name: str = "schmitt-trigger-10T"
    hardened_area_factor: float = 2.0
    hardened_leakage_factor: float = 1.6

    def __post_init__(self) -> None:
        if self.hardened_area_factor < 1.0:
            raise ConfigurationError(
                "hardened cells cannot be smaller than baseline cells")
        if self.hardened_leakage_factor <= 0.0:
            raise ConfigurationError("leakage factor must be positive")


#: Published cell variants usable as presets.
CELL_TECHNOLOGIES = {
    "8T": CellTechnology("8T", hardened_area_factor=1.3,
                         hardened_leakage_factor=1.15),
    "schmitt-trigger-10T": CellTechnology("schmitt-trigger-10T",
                                          hardened_area_factor=2.0,
                                          hardened_leakage_factor=1.6),
}


@dataclass(frozen=True)
class HardwareCost:
    """Cost of one cache configuration, in 6T-cell-equivalents."""

    mechanism_name: str
    baseline_cell_equivalents: float
    overhead_cell_equivalents: float
    leakage_equivalents: float

    @property
    def total_cell_equivalents(self) -> float:
        return self.baseline_cell_equivalents + self.overhead_cell_equivalents

    @property
    def area_overhead_ratio(self) -> float:
        """Overhead relative to the unprotected cache."""
        return self.overhead_cell_equivalents / self.baseline_cell_equivalents


class MechanismCostModel:
    """Computes :class:`HardwareCost` for the paper's three configs."""

    def __init__(self, geometry: CacheGeometry, *,
                 technology: CellTechnology | None = None,
                 address_bits: int = 32) -> None:
        if technology is None:
            technology = CELL_TECHNOLOGIES["schmitt-trigger-10T"]
        self._geometry = geometry
        self._technology = technology
        self._address_bits = address_bits

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    @property
    def technology(self) -> CellTechnology:
        return self._technology

    # -- building blocks -------------------------------------------------
    def tag_bits_per_block(self) -> int:
        """Tag width plus valid bit for one cache block."""
        geometry = self._geometry
        tag = (self._address_bits - geometry.index_bits
               - geometry.offset_bits)
        return tag + 1  # + valid

    def lru_bits_per_set(self) -> int:
        """State bits to encode an LRU order of W ways."""
        ways = self._geometry.ways
        return max(1, math.ceil(math.log2(math.factorial(ways))))

    def baseline_cells(self) -> float:
        geometry = self._geometry
        data = geometry.sets * geometry.ways * geometry.block_bits
        tags = geometry.sets * geometry.ways * self.tag_bits_per_block()
        lru = geometry.sets * self.lru_bits_per_set()
        return float(data + tags + lru)

    # -- per-mechanism costs ----------------------------------------------
    def cost_of(self, mechanism: ReliabilityMechanism) -> HardwareCost:
        baseline = self.baseline_cells()
        area_factor = self._technology.hardened_area_factor
        leak_factor = self._technology.hardened_leakage_factor
        geometry = self._geometry

        if isinstance(mechanism, NoProtection):
            hardened_bits = 0.0
            extra_bits = 0.0
        elif isinstance(mechanism, ReliableWay):
            # One way's data + tags upgraded in place.
            hardened_bits = geometry.sets * (
                geometry.block_bits + self.tag_bits_per_block())
            extra_bits = 0.0
        elif isinstance(mechanism, SharedReliableBuffer):
            # One extra hardened line + full-address tag + comparator
            # (comparator modelled as one tag's worth of logic).
            hardened_bits = geometry.block_bits + self._address_bits
            extra_bits = self._address_bits  # comparator/steering logic
        else:
            raise ConfigurationError(
                f"no cost model for mechanism {mechanism.name!r}")

        overhead = hardened_bits * (area_factor - 1.0) + extra_bits
        leakage = (baseline - hardened_bits) + hardened_bits * leak_factor
        return HardwareCost(
            mechanism_name=mechanism.name,
            baseline_cell_equivalents=baseline,
            overhead_cell_equivalents=overhead,
            leakage_equivalents=leakage + extra_bits)
