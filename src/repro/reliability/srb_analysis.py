"""Static analysis of the Shared Reliable Buffer (paper §III-B2).

The SRB holds exactly one cache line and is shared by every set, so at
the analysis level it behaves as a 1-set / 1-way cache observing the
*whole* reference stream: any fetch of a different memory block may
reload it.  The paper's conservative assumption — no information is
retained in the SRB between distinct series of successive accesses —
is exactly the Must analysis of that tiny cache: a reference is a
guaranteed SRB hit iff, on every path, the immediately preceding fetch
touched the same memory block (spatial locality inside one line).

Reusing :class:`~repro.analysis.must.MustAnalysis` with a 1x1 geometry
gives precisely the behaviour of the paper's example: in the stream
``a1 a2 b1 b2 a1 a2`` the second ``a2``/``b2`` are always-hit, the
second ``a1`` is not.
"""

from __future__ import annotations

from repro.analysis.must import MustAnalysis
from repro.cache import CacheGeometry
from repro.cfg import CFG


def srb_always_hit_references(cfg: CFG,
                              geometry: CacheGeometry) -> frozenset[tuple[int, int]]:
    """Reference positions guaranteed to hit in the SRB.

    Returns the set of ``(block_id, instruction index)`` keys whose
    fetch is an SRB hit whenever the SRB is in use.  The SRB line size
    equals the L1 line size (the buffer is "the same size as a L1
    cache block").
    """
    srb_geometry = CacheGeometry(sets=1, ways=1,
                                 block_bytes=geometry.block_bytes)
    must = MustAnalysis(cfg, srb_geometry)
    always_hit: set[tuple[int, int]] = set()
    for block_id in cfg.block_ids():
        for reference, hit in zip(must.references(block_id),
                                  must.guaranteed_hits(block_id)):
            if hit:
                always_hit.add(reference.key)
    return frozenset(always_hit)
