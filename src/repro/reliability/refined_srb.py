"""Refined SRB analysis — the paper's stated future work (§III-B2, §VI).

The paper's SRB analysis is deliberately conservative: it assumes the
buffer retains nothing between "distinct series of successive
accesses", because *any* fetch to *any* entirely faulty set may reload
the shared buffer.  The paper leaves "a more precise analysis deriving
the probability that a block stays in the SRB" as future work.

This module implements that refinement with a sound probability-space
split.  Condition on the event

    A  =  "at most one cache set is entirely faulty",

whose complement has probability ``P(not A) = 1 - (1-q)^S -
S*q*(1-q)^(S-1)`` with ``q = pwf(W)``.  Under ``A``, while computing
the all-faulty FMM column of set ``s``, the SRB is touched *only* by
fetches mapping to ``s`` itself — every other set has a working way.
The SRB therefore behaves as a per-set private buffer, and the Must
analysis can ignore interleaved traffic from other sets: a 1-entry
cache over the sub-stream of references to ``s``.  This preserves
*temporal* locality (e.g. a loop whose body keeps one line in ``s``
hits the SRB on every iteration), not just spatial locality.

Soundness: for any threshold ``x``,

    P(WCET > x)  <=  P(WCET > x | A) * P(A) + P(not A)
                 <=  ccdf_A(x) + P(not A),

so the estimator adds ``P(not A)`` to every exceedance value (the
:meth:`exceedance_correction` hook).  The refinement is only usable
for targets above ``P(not A)`` — at the paper's parameters
(pfail = 1e-4, 16 sets) that is ~8.1e-14, so the refined bound helps
at e.g. 1e-9 but *cannot* reach the 1e-15 aerospace target; the
trade-off is quantified in ``benchmarks/bench_refined_srb.py``.
"""

from __future__ import annotations

import math

from repro.analysis.references import all_references
from repro.cache import CacheGeometry
from repro.cfg import CFG
from repro.faults import FaultProbabilityModel
from repro.reliability.mechanism import (AllFaultyFilter,
                                         SharedReliableBuffer)

#: Abstract SRB content: a memory block number, or None for unknown.
_SrbState = int | None


def refined_srb_always_hit_references(
        cfg: CFG, geometry: CacheGeometry,
        set_index: int) -> frozenset[tuple[int, int]]:
    """References to ``set_index`` guaranteed to hit a *private* SRB.

    Must analysis of a 1-entry buffer observing only the fetches that
    map to ``set_index`` (sound under the at-most-one-faulty-set
    condition documented in the module docstring).  Join of different
    blocks (or unknown) is unknown; fetches of other sets leave the
    state untouched.
    """
    references = all_references(cfg, geometry)

    def transfer(block_id: int, state: _SrbState) -> _SrbState:
        for reference in references[block_id]:
            if reference.set_index == set_index:
                state = reference.memory_block
        return state

    # Tiny dedicated fixpoint (the generic solver keyed on dict states
    # would wrap scalars for nothing).
    order = cfg.reverse_postorder()
    unknown = object()  # lattice bottom-from-above marker
    out_states: dict[int, object] = {}
    changed = True
    while changed:
        changed = False
        for block_id in order:
            if block_id == cfg.entry_id:
                incoming: object = None
            else:
                incoming = unknown
                for predecessor in cfg.predecessors(block_id):
                    if predecessor not in out_states:
                        continue
                    value = out_states[predecessor]
                    if incoming is unknown:
                        incoming = value
                    elif incoming != value:
                        incoming = None  # conflicting contents
                if incoming is unknown:
                    continue  # no predecessor computed yet
            new_out = transfer(block_id, incoming)  # type: ignore[arg-type]
            if out_states.get(block_id, unknown) != new_out:
                out_states[block_id] = new_out
                changed = True

    # Replay each block from its converged IN state to classify.
    protected: set[tuple[int, int]] = set()
    for block_id in order:
        if block_id == cfg.entry_id:
            state: _SrbState = None
        else:
            state = None
            first = True
            for predecessor in cfg.predecessors(block_id):
                value = out_states.get(predecessor)
                if first:
                    state, first = value, False
                elif state != value:
                    state = None
        for reference in references[block_id]:
            if reference.set_index != set_index:
                continue
            if state == reference.memory_block:
                protected.add(reference.key)
            state = reference.memory_block
    return frozenset(protected)


def excluded_probability(model: FaultProbabilityModel, sets: int) -> float:
    """``P(not A)``: probability of two or more entirely faulty sets."""
    q = model.pwf(model.geometry.ways)
    none_faulty = (1.0 - q) ** sets
    one_faulty = sets * q * (1.0 - q) ** (sets - 1)
    return max(0.0, 1.0 - none_faulty - one_faulty)


class RefinedSharedReliableBuffer(SharedReliableBuffer):
    """The SRB with the refined (per-set) all-faulty analysis.

    Same hardware as :class:`SharedReliableBuffer`; only the analysis
    tightens, in two ways — both sound under event ``A``:

    * *always-hit*: the per-set Must analysis above (temporal locality
      within the faulty set survives other sets' traffic);
    * *first-miss*: a reference whose faulty set hosts a single
      distinct memory block inside a loop can miss the private SRB at
      most once per loop entry (1-entry-cache conflict counting — the
      ``assoc = 1`` case of the persistence analysis).

    Reported pWCETs carry the probability correction ``P(not A)``, so
    they remain sound.
    """

    name = "srb+"

    def all_faulty_filter(self, analysis) -> AllFaultyFilter:
        from repro.analysis.chmc import (ALWAYS_HIT, ALWAYS_MISS, Chmc,
                                         Classification)
        cfg, geometry = analysis.cfg, analysis.geometry
        persistence = analysis.persistence
        cache: dict[int, frozenset[tuple[int, int]]] = {}

        def per_set(set_index: int):
            if set_index not in cache:
                cache[set_index] = refined_srb_always_hit_references(
                    cfg, geometry, set_index)
            protected = cache[set_index]

            def classify(reference) -> Classification:
                if reference.key in protected:
                    return ALWAYS_HIT
                # The private SRB is a 1-way cache for this set's
                # sub-stream: persistence at associativity 1.
                scope = persistence.scope_of(reference, 1)
                if scope is not None:
                    return Classification(chmc=Chmc.FIRST_MISS,
                                          scope=scope)
                return ALWAYS_MISS

            return classify

        return per_set

    def exceedance_correction(self, model: FaultProbabilityModel,
                              sets: int) -> float:
        return excluded_probability(model, sets)
