"""Cache reliability mechanisms (paper Section III)."""

from repro.reliability.mechanism import (
    MECHANISMS,
    NoProtection,
    ReliabilityMechanism,
    ReliableWay,
    SharedReliableBuffer,
    mechanism_by_name,
)
from repro.reliability.srb_analysis import srb_always_hit_references

__all__ = [
    "MECHANISMS",
    "NoProtection",
    "ReliabilityMechanism",
    "ReliableWay",
    "SharedReliableBuffer",
    "mechanism_by_name",
    "srb_always_hit_references",
]
