"""Cache reliability mechanisms (paper Section III)."""

from repro.reliability.mechanism import (
    MECHANISMS,
    FaultPmfCacheStats,
    NoProtection,
    ReliabilityMechanism,
    ReliableWay,
    SharedReliableBuffer,
    fault_pmf_cache_stats,
    mechanism_by_name,
    reset_fault_pmf_cache,
)
from repro.reliability.srb_analysis import srb_always_hit_references

__all__ = [
    "MECHANISMS",
    "FaultPmfCacheStats",
    "NoProtection",
    "ReliabilityMechanism",
    "ReliableWay",
    "SharedReliableBuffer",
    "fault_pmf_cache_stats",
    "mechanism_by_name",
    "reset_fault_pmf_cache",
    "srb_always_hit_references",
]
