"""The two reliability mechanisms of the paper, plus the baseline.

* :class:`NoProtection` — the architecture of Hardy & Puaut 2015 ([1]):
  every way of every set can fail; a set can become entirely faulty.
* :class:`ReliableWay` (RW, §III-A1) — one hardened way per set.  The
  per-set fault distribution becomes eq. (3) over ``W - 1`` ways and
  the all-ways-faulty penalty point disappears.
* :class:`SharedReliableBuffer` (SRB, §III-A2) — one hardened buffer of
  one cache line, consulted only when the referenced set is entirely
  faulty.  Fault distribution unchanged (eq. 2), but the all-faulty
  FMM column drops the references that are guaranteed SRB hits.

Each mechanism answers two questions for the estimator: which per-set
fault counts are possible with what probability, and how the degraded
classification of the all-faulty case is obtained.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.chmc import (ALWAYS_HIT, ALWAYS_MISS, Classification)
from repro.errors import ConfigurationError
from repro.faults import FaultProbabilityModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis import CacheAnalysis
    from repro.analysis.references import Reference

#: Classifier for one set's references when all its ways are faulty:
#: maps a reference to its behaviour on the mechanism's reliable
#: storage (always-hit, first-miss in a scope, or always-miss).
AllFaultyClassifier = Callable[["Reference"], Classification]
#: Per-set factory of such classifiers.
AllFaultyFilter = Callable[[int], AllFaultyClassifier]


@dataclass
class FaultPmfCacheStats:
    """Hit/miss/eviction counters of the process-wide fault-pmf memo."""

    hits: int = 0
    misses: int = 0
    evicted: int = 0


#: Process-wide fault-pmf memo, keyed (mechanism name, geometry,
#: pfail): every (benchmark, mechanism, pfail) cell of a suite or
#: sweep shares the identical binomial weights, so the eq. 2 / eq. 3
#: evaluation runs once per distinct key instead of once per cell.
#: Bounded: long-lived processes sweeping many (geometry, pfail)
#: points evict least-recently-used entries past ``_FAULT_PMF_LIMIT``
#: instead of growing without bound (dict order is the LRU order —
#: hits reinsert their key at the end).
_FAULT_PMF_CACHE: dict[tuple, dict[int, float]] = {}
_FAULT_PMF_STATS = FaultPmfCacheStats()
_FAULT_PMF_LIMIT = 128


def fault_pmf_cache_stats() -> FaultPmfCacheStats:
    """The live hit/miss/eviction counters of the fault-pmf memo
    (process scope — cumulative across every estimation of this
    process)."""
    return _FAULT_PMF_STATS


def reset_fault_pmf_cache() -> None:
    """Drop the memo and zero its counters (tests, benchmarks)."""
    _FAULT_PMF_CACHE.clear()
    _FAULT_PMF_STATS.hits = 0
    _FAULT_PMF_STATS.misses = 0
    _FAULT_PMF_STATS.evicted = 0


class ReliabilityMechanism(ABC):
    """Interface the pWCET estimator programs against."""

    #: Short identifier used in reports and registries.
    name: str = ""

    @abstractmethod
    def fault_counts(self, ways: int) -> tuple[int, ...]:
        """Per-set fault counts ``f`` with non-zero probability."""

    def fault_pmf(self, model: FaultProbabilityModel) -> dict[int, float]:
        """Probability of each fault count in :meth:`fault_counts`.

        Memoised per (mechanism name, geometry, pfail) — the pmf is a
        pure function of those three, and every cell of a sweep row
        re-reads the same weights.  Treat the returned dict as
        immutable; subclasses implement :meth:`_compute_fault_pmf`.
        """
        key = (self.name, model.geometry, model.pfail)
        cached = _FAULT_PMF_CACHE.pop(key, None)
        if cached is not None:
            _FAULT_PMF_STATS.hits += 1
            _FAULT_PMF_CACHE[key] = cached  # refresh LRU position
            return cached
        _FAULT_PMF_STATS.misses += 1
        value = _FAULT_PMF_CACHE[key] = self._compute_fault_pmf(model)
        while len(_FAULT_PMF_CACHE) > _FAULT_PMF_LIMIT:
            _FAULT_PMF_CACHE.pop(next(iter(_FAULT_PMF_CACHE)))
            _FAULT_PMF_STATS.evicted += 1
        return value

    @abstractmethod
    def _compute_fault_pmf(self, model: FaultProbabilityModel
                           ) -> dict[int, float]:
        """Uncached eq. 2 / eq. 3 evaluation (memoised by
        :meth:`fault_pmf`)."""

    @property
    def uses_srb(self) -> bool:
        """True when the all-faulty FMM column must be SRB-filtered."""
        return False

    def all_faulty_filter(self, analysis: "CacheAnalysis"
                          ) -> AllFaultyFilter | None:
        """Behaviour of the all-ways-faulty FMM column.

        Returns ``None`` when the mechanism provides no help in that
        case (every degraded reference pays its misses), or a per-set
        factory of classifiers describing how references to the faulty
        set behave on the mechanism's reliable storage.
        """
        return None

    def exceedance_correction(self, model: FaultProbabilityModel,
                              sets: int) -> float:
        """Probability mass excluded by the analysis' assumptions.

        The paper's mechanisms assume nothing (correction 0); refined
        analyses conditioning on rare events (see
        :mod:`repro.reliability.refined_srb`) report the excluded
        probability here, and the estimator adds it back to every
        exceedance value so results stay sound.
        """
        return 0.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoProtection(ReliabilityMechanism):
    """Baseline: no reliability hardware (the architecture of [1])."""

    name = "none"

    def fault_counts(self, ways: int) -> tuple[int, ...]:
        return tuple(range(ways + 1))

    def _compute_fault_pmf(self, model: FaultProbabilityModel
                           ) -> dict[int, float]:
        ways = model.geometry.ways
        return {w: model.pwf(w) for w in range(ways + 1)}


class ReliableWay(ReliabilityMechanism):
    """RW: one fault-resilient way per set (paper §III-A1, eq. 3).

    At worst a set degrades to a direct-mapped set of one working way,
    so spatial locality — and MRU-position temporal locality — is
    always preserved.
    """

    name = "rw"

    def fault_counts(self, ways: int) -> tuple[int, ...]:
        if ways < 1:
            raise ConfigurationError("RW needs at least one way")
        return tuple(range(ways))  # 0 .. W-1

    def _compute_fault_pmf(self, model: FaultProbabilityModel
                           ) -> dict[int, float]:
        ways = model.geometry.ways
        return {w: model.pwf_reliable_way(w) for w in range(ways)}


class SharedReliableBuffer(ReliabilityMechanism):
    """SRB: one hardened buffer shared by all sets (paper §III-A2).

    The buffer is looked up only when the referenced set is entirely
    faulty, so it preserves spatial locality at a fraction of the RW's
    hardware cost; temporal locality across sets is (conservatively)
    not retained by the analysis.
    """

    name = "srb"

    def fault_counts(self, ways: int) -> tuple[int, ...]:
        return tuple(range(ways + 1))

    def _compute_fault_pmf(self, model: FaultProbabilityModel
                           ) -> dict[int, float]:
        ways = model.geometry.ways
        return {w: model.pwf(w) for w in range(ways + 1)}

    @property
    def uses_srb(self) -> bool:
        return True

    def all_faulty_filter(self, analysis: "CacheAnalysis"
                          ) -> AllFaultyFilter:
        # The analysis facade memoises and persists the SRB hit set
        # (same engine selection and classification store as the CHMC
        # tables), so warm SRB estimations run zero fixpoints.
        protected = analysis.srb_always_hits()

        def classify(reference: "Reference") -> Classification:
            if reference.key in protected:
                return ALWAYS_HIT
            return ALWAYS_MISS

        return lambda _set_index: classify


#: Registry of the paper's three configurations, in presentation order.
MECHANISMS: tuple[ReliabilityMechanism, ...] = (
    NoProtection(), SharedReliableBuffer(), ReliableWay())


def mechanism_by_name(name: str) -> ReliabilityMechanism:
    """Look up a mechanism by name ('none', 'srb', 'rw', or 'srb+').

    ``srb+`` is this library's future-work extension (the refined SRB
    analysis of :mod:`repro.reliability.refined_srb`).
    """
    for mechanism in MECHANISMS:
        if mechanism.name == name:
            return mechanism
    if name == "srb+":
        from repro.reliability.refined_srb import RefinedSharedReliableBuffer
        return RefinedSharedReliableBuffer()
    raise ConfigurationError(
        f"unknown mechanism {name!r}; expected one of "
        f"{[m.name for m in MECHANISMS] + ['srb+']}")
