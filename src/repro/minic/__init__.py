"""MiniC: a bounded structured language standing in for the benchmark C.

The paper analyses MIPS binaries compiled from the Mälardalen C
benchmarks with gcc 4.1 -O0.  Offline we cannot run that toolchain, so
this package provides the substitute: a structured AST (computation,
bounded loops, conditionals, calls), a -O0-flavoured code generator to
the MIPS-like ISA of :mod:`repro.isa`, the default-linker memory
layout, and virtual inlining into the analysis CFG.

The cache/WCET analyses consume only instruction addresses, control
structure and loop bounds — exactly what this toolchain produces — so
programs written here exercise the same analysis code paths as the
original binaries.
"""

from repro.minic.ast import Call, Compute, Function, If, Loop, Program, Stmt
from repro.minic.codegen import FunctionCode, compile_function
from repro.minic.link import CompiledProgram, compile_program

__all__ = [
    "Call",
    "Compute",
    "Function",
    "If",
    "Loop",
    "Program",
    "Stmt",
    "FunctionCode",
    "compile_function",
    "CompiledProgram",
    "compile_program",
]
