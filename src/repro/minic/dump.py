"""objdump-style listings of compiled programs.

Useful for debugging the code generator, documenting the benchmark
stand-ins, and eyeballing cache-set pressure: the listing annotates
every instruction with its memory block and cache set for a given
geometry.
"""

from __future__ import annotations

from repro.cache import CacheGeometry
from repro.minic.link import CompiledProgram


def dump_program(compiled: CompiledProgram,
                 geometry: CacheGeometry | None = None) -> str:
    """Disassembly of all functions, in layout order."""
    sections = []
    for image in compiled.layout.images:
        code = compiled.functions[image.name]
        sections.append(_dump_function(code, image.base_address, geometry))
    return "\n\n".join(sections)


def _dump_function(code, base_address: int,
                   geometry: CacheGeometry | None) -> str:
    lines = [f"{base_address:08x} <{code.name}>:"]
    blocks = sorted(
        (block for block in code.cfg.blocks.values() if block.instructions),
        key=lambda block: block.start_address)
    for block in blocks:
        suffix = (f"  ; loop header, bound {block.loop_bound}"
                  if block.loop_bound is not None else "")
        lines.append(f"  {block.label}:{suffix}")
        for instruction in block.instructions:
            annotation = ""
            if geometry is not None:
                annotation = (f"   # line {geometry.block_of(instruction.address):#x}"
                              f" set {geometry.set_of(instruction.address):2d}")
            operand_text = instruction.operands
            if instruction.target is not None:
                operand_text = (operand_text + " " if operand_text
                                else "") + f"<{instruction.target}>"
            lines.append(f"    {instruction.address:08x}:  "
                         f"{instruction.mnemonic:<6s} "
                         f"{operand_text:<18s}{annotation}")
    return "\n".join(lines)


def set_pressure_report(compiled: CompiledProgram,
                        geometry: CacheGeometry) -> str:
    """Distinct memory blocks per cache set — the conflict profile.

    This is the quantity that decides the Figure 4 category of a
    benchmark: sets holding more distinct blocks than the (possibly
    degraded) associativity lose their temporal locality.
    """
    per_set: dict[int, set[int]] = {s: set() for s in range(geometry.sets)}
    for address in compiled.cfg.distinct_addresses():
        per_set[geometry.set_of(address)].add(geometry.block_of(address))
    lines = [f"set pressure for {compiled.name!r} on {geometry}:"]
    for set_index in range(geometry.sets):
        count = len(per_set[set_index])
        bar = "#" * min(count, 60)
        lines.append(f"  set {set_index:2d}: {count:3d} blocks {bar}")
    return "\n".join(lines)
