"""Linking and virtual inlining.

Two steps happen here:

1. **Linking** — every function's code is placed in the text segment in
   definition order (the gcc default linker layout used by the paper)
   and its instructions are relocated to absolute addresses.
2. **Virtual inlining** — the per-function CFGs are stitched into one
   program-level analysis CFG.  Each call site splices in a *copy* of
   the callee's blocks (fresh block ids, context-qualified labels)
   while keeping the relocated addresses, so the analysis is context
   sensitive but the cache sees a single copy of the code, exactly as
   in the real binary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg import CFG
from repro.cfg.basic_block import BasicBlock
from repro.errors import CompilationError, RecursionUnsupportedError
from repro.isa import MemoryLayout
from repro.minic.ast import Program
from repro.minic.codegen import FunctionCode, compile_function


@dataclass(frozen=True)
class CompiledProgram:
    """Result of compiling and linking a MiniC program.

    Attributes
    ----------
    program:
        The source AST.
    functions:
        Relocated per-function code, keyed by name.
    layout:
        The memory layout that assigned the base addresses.
    cfg:
        The program-level analysis CFG (virtually inlined).
    """

    program: Program
    functions: dict[str, FunctionCode]
    layout: MemoryLayout
    cfg: CFG

    @property
    def name(self) -> str:
        return self.program.name

    def code_size_bytes(self) -> int:
        return self.layout.total_code_bytes


def compile_program(program: Program,
                    layout: MemoryLayout | None = None) -> CompiledProgram:
    """Compile, link and virtually inline a whole program."""
    if layout is None:
        layout = MemoryLayout()
    relocated: dict[str, FunctionCode] = {}
    for function in program.functions:
        code = compile_function(function)
        image = layout.place(function.name, code.size_bytes)
        relocated[function.name] = _relocate(code, image.base_address)

    cfg = _build_analysis_cfg(program, relocated)
    return CompiledProgram(program=program, functions=relocated,
                           layout=layout, cfg=cfg)


def _relocate(code: FunctionCode, base: int) -> FunctionCode:
    """Rebase all instruction addresses of a function by ``base``."""
    new_cfg = CFG(name=code.cfg.name)
    for block in code.cfg.blocks.values():
        moved = tuple(
            instruction.with_address(instruction.address + base)
            for instruction in block.instructions)
        new_cfg.add_block(BasicBlock(block_id=block.block_id,
                                     label=block.label,
                                     instructions=moved,
                                     loop_bound=block.loop_bound,
                                     context=block.context))
    for src, dst in code.cfg.edges():
        new_cfg.add_edge(src, dst)
    new_cfg.set_entry(code.cfg.entry_id)
    new_cfg.set_exit(code.cfg.exit_id)
    return FunctionCode(name=code.name, cfg=new_cfg,
                        call_sites=code.call_sites,
                        size_bytes=code.size_bytes)


def _build_analysis_cfg(program: Program,
                        functions: dict[str, FunctionCode]) -> CFG:
    out = CFG(name=program.name)

    def clone(function_name: str, context: tuple[str, ...],
              active: tuple[str, ...]) -> tuple[int, int]:
        """Copy ``function_name`` into ``out``; return (entry, exit)."""
        if function_name in active:
            chain = " -> ".join(active + (function_name,))
            raise RecursionUnsupportedError(
                f"recursive call chain during inlining: {chain}")
        code = functions[function_name]
        mapping: dict[int, int] = {}
        for block in code.cfg.blocks.values():
            copy = out.new_block(
                label=f"{function_name}.{block.label}",
                instructions=block.instructions,
                loop_bound=block.loop_bound,
                context=context)
            mapping[block.block_id] = copy.block_id

        call_blocks = {block_id for block_id, _callee in code.call_sites}
        for src, dst in code.cfg.edges():
            if src in call_blocks:
                continue  # replaced by the splice below
            out.add_edge(mapping[src], mapping[dst])

        for block_id, callee in code.call_sites:
            successors = code.cfg.successors(block_id)
            if len(successors) != 1:
                raise CompilationError(
                    f"call block {block_id} in {function_name!r} must have "
                    f"exactly one continuation, found {len(successors)}")
            continuation = successors[0]
            site = f"{function_name}@{block_id}->{callee}"
            callee_entry, callee_exit = clone(
                callee, context + (site,), active + (function_name,))
            out.add_edge(mapping[block_id], callee_entry)
            out.add_edge(callee_exit, mapping[continuation])

        return mapping[code.cfg.entry_id], mapping[code.cfg.exit_id]

    entry, exit_ = clone(program.entry, (), ())
    out.set_entry(entry)
    out.set_exit(exit_)
    out.validate()
    return out
