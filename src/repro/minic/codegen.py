"""gcc -O0 style code generation: MiniC AST to per-function CFGs.

The generator mirrors the code shapes an unoptimising compiler emits
for MIPS: a stack-frame prologue/epilogue, memory-resident locals (so
every use is a ``lw``/``sw`` pair), test-at-top loops with an increment
block falling back to the header, and branch-over/then/else/join
diamonds.  Addresses are function-relative (offset 0 at the prologue);
the linker of :mod:`repro.minic.link` relocates them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cfg import CFG
from repro.errors import CompilationError
from repro.isa import INSTRUCTION_SIZE, Instruction
from repro.minic.ast import Call, Compute, Function, If, Loop, Stmt

#: Deterministic straight-line mnemonic pattern (a plausible -O0 mix of
#: loads, ALU ops and stores).
_COMPUTE_PATTERN = ("lw", "addu", "sw", "lw", "slt", "addiu", "lw",
                    "subu", "sw", "mult", "mflo", "sw")

_PROLOGUE = (("addiu", "sp,sp,-32"), ("sw", "ra,28(sp)"),
             ("sw", "fp,24(sp)"), ("move", "fp,sp"))
_EPILOGUE = (("move", "sp,fp"), ("lw", "fp,24(sp)"),
             ("lw", "ra,28(sp)"), ("addiu", "sp,sp,32"), ("jr", "ra"))


@dataclass(frozen=True)
class FunctionCode:
    """Compiled form of one function.

    ``cfg`` holds function-relative addresses starting at 0; its entry
    is the prologue block and its exit the epilogue block.
    ``call_sites`` lists (block id, callee name) for every block ending
    in a ``jal``; each such block has exactly one successor — the
    return continuation.
    """

    name: str
    cfg: CFG
    call_sites: tuple[tuple[int, str], ...]
    size_bytes: int


class _Emitter:
    """Single-pass emitter handing out addresses and blocks."""

    def __init__(self, function_name: str) -> None:
        self.cfg = CFG(name=function_name)
        self.function_name = function_name
        self.call_sites: list[tuple[int, str]] = []
        self._address = 0
        self._label_counter = itertools.count()
        self._pending: list[Instruction] = []
        self._pending_label = "entry"
        self._pending_bound: int | None = None
        self._open_block: int | None = None  # last sealed block awaiting edge

    # -- low-level helpers -------------------------------------------
    def emit(self, mnemonic: str, operands: str = "",
             target: str | None = None) -> None:
        self._pending.append(Instruction(address=self._address,
                                         mnemonic=mnemonic,
                                         operands=operands, target=target))
        self._address += INSTRUCTION_SIZE

    def fresh_label(self, stem: str) -> str:
        return f"{stem}{next(self._label_counter)}"

    def seal_block(self) -> int:
        """Close the pending block, register it, and return its id."""
        block = self.cfg.new_block(self._pending_label,
                                   tuple(self._pending),
                                   loop_bound=self._pending_bound)
        self._pending = []
        self._pending_label = self.fresh_label("bb")
        self._pending_bound = None
        return block.block_id

    def open_new_block(self, label: str, *,
                       loop_bound: int | None = None) -> None:
        if self._pending:
            raise CompilationError("opening a block with pending code")
        self._pending_label = label
        self._pending_bound = loop_bound

    @property
    def current_address(self) -> int:
        return self._address


def compile_function(function: Function) -> FunctionCode:
    """Compile one function to a :class:`FunctionCode`."""
    emitter = _Emitter(function.name)

    for mnemonic, operands in _PROLOGUE:
        emitter.emit(mnemonic, operands)
    # The prologue flows into the body; compile statements into a chain
    # of blocks.  `tail` is the id of the last sealed block whose
    # control falls through to whatever comes next.
    tail = _compile_sequence(emitter, function.body, tail=None)

    emitter.open_new_block("epilogue")
    for mnemonic, operands in _EPILOGUE:
        emitter.emit(mnemonic, operands)
    epilogue = emitter.seal_block()
    if tail is not None:
        emitter.cfg.add_edge(tail, epilogue)

    cfg = emitter.cfg
    # The prologue block is sealed lazily by _compile_sequence; it is
    # the unique block carrying the label "entry".
    [entry] = [b.block_id for b in cfg.blocks.values()
               if b.label == "entry"]
    cfg.set_entry(entry)
    cfg.set_exit(epilogue)
    cfg.validate()
    return FunctionCode(name=function.name, cfg=cfg,
                        call_sites=tuple(emitter.call_sites),
                        size_bytes=emitter.current_address)


def _compile_sequence(emitter: _Emitter, statements: tuple[Stmt, ...],
                      tail: int | None) -> int | None:
    """Compile statements; returns the id of the open-ended last block.

    ``tail`` is a previously sealed block that must flow into the next
    code we emit (e.g. the block before a join).  The function keeps
    appending into the emitter's pending block; whenever a statement
    forces a block boundary (branch, loop, call) the pending block is
    sealed and wired.
    """
    for statement in statements:
        if isinstance(statement, Compute):
            _compile_compute(emitter, statement)
        elif isinstance(statement, Loop):
            tail = _compile_loop(emitter, statement, tail)
        elif isinstance(statement, If):
            tail = _compile_if(emitter, statement, tail)
        elif isinstance(statement, Call):
            tail = _compile_call(emitter, statement, tail)
        else:
            raise CompilationError(
                f"unknown statement type {type(statement).__name__}")
    # Seal whatever straight-line code is still pending.
    sealed = emitter.seal_block()
    if tail is not None:
        emitter.cfg.add_edge(tail, sealed)
    return sealed


def _compile_compute(emitter: _Emitter, statement: Compute) -> None:
    for index in range(statement.units):
        mnemonic = _COMPUTE_PATTERN[index % len(_COMPUTE_PATTERN)]
        emitter.emit(mnemonic, "t0,t1,t2" if mnemonic not in ("lw", "sw")
                     else "t0,0(fp)")


def _compile_loop(emitter: _Emitter, statement: Loop,
                  tail: int | None) -> int:
    cfg = emitter.cfg
    # Loop counter initialisation ends the current block.
    emitter.emit("li", "t0,0")
    emitter.emit("sw", "t0,8(fp)")
    before = emitter.seal_block()
    if tail is not None:
        cfg.add_edge(tail, before)

    header_label = emitter.fresh_label("loop_head")
    emitter.open_new_block(header_label,
                           loop_bound=statement.iterations + 1)
    emitter.emit("lw", "t0,8(fp)")
    emitter.emit("slti", "t1,t0," + str(statement.iterations))
    emitter.emit("beq", "t1,zero", target=emitter.fresh_label("loop_exit"))
    header = emitter.seal_block()
    cfg.add_edge(before, header)

    body_tail = _compile_sequence(emitter, statement.body, tail=header)
    # Latch: increment and jump back to the header.  Appended as its
    # own block so the back edge is explicit.
    emitter.open_new_block(emitter.fresh_label("loop_latch"))
    emitter.emit("lw", "t0,8(fp)")
    emitter.emit("addiu", "t0,t0,1")
    emitter.emit("sw", "t0,8(fp)")
    emitter.emit("j", target=header_label)
    latch = emitter.seal_block()
    if body_tail is not None:
        cfg.add_edge(body_tail, latch)
    cfg.add_edge(latch, header)
    # Execution continues at the loop exit; the header is the dangling
    # tail that flows into the next statement's code.
    return header


def _compile_if(emitter: _Emitter, statement: If, tail: int | None) -> int:
    cfg = emitter.cfg
    emitter.emit("lw", "t0,12(fp)")
    emitter.emit("beq", "t0,zero",
                 target=emitter.fresh_label("else"))
    cond = emitter.seal_block()
    if tail is not None:
        cfg.add_edge(tail, cond)

    emitter.open_new_block(emitter.fresh_label("then"))
    then_tail = _compile_sequence(emitter, statement.then, tail=cond)

    if statement.orelse:
        # Skip over the else branch.
        join_label = emitter.fresh_label("join")
        emitter.open_new_block(emitter.fresh_label("then_end"))
        emitter.emit("j", target=join_label)
        then_exit = emitter.seal_block()
        cfg.add_edge(then_tail, then_exit)

        emitter.open_new_block(emitter.fresh_label("else"))
        else_tail = _compile_sequence(emitter, statement.orelse, tail=cond)

        emitter.open_new_block(join_label)
        join = emitter.seal_block()
        cfg.add_edge(then_exit, join)
        cfg.add_edge(else_tail, join)
        return join

    emitter.open_new_block(emitter.fresh_label("join"))
    join = emitter.seal_block()
    cfg.add_edge(then_tail, join)
    cfg.add_edge(cond, join)
    return join


def _compile_call(emitter: _Emitter, statement: Call,
                  tail: int | None) -> int:
    cfg = emitter.cfg
    emitter.emit("move", "a0,t0")
    emitter.emit("jal", target=statement.callee)
    call_block = emitter.seal_block()
    if tail is not None:
        cfg.add_edge(tail, call_block)
    emitter.call_sites.append((call_block, statement.callee))

    emitter.open_new_block(emitter.fresh_label("ret"))
    continuation = emitter.seal_block()
    cfg.add_edge(call_block, continuation)
    return continuation
