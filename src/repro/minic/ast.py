"""Abstract syntax of MiniC programs.

A program is a set of functions; a function body is a sequence of
statements.  Statements carry everything WCET analysis needs and
nothing more:

* :class:`Compute` — straight-line work of a given size (models
  assignments, address arithmetic, array accesses...);
* :class:`Loop` — a counted loop with a static iteration bound, the
  MiniC equivalent of the Mälardalen flow-fact annotations;
* :class:`If` — a two-way conditional (no condition semantics: the
  analysis must cover both arms anyway);
* :class:`Call` — a call to another function of the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompilationError


class Stmt:
    """Base class of MiniC statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Stmt):
    """``units`` worth of straight-line instructions.

    One unit is one machine instruction after -O0-style lowering, so a
    C assignment like ``a[i] = b[i] + c`` is roughly 6-8 units.
    """

    units: int
    note: str = ""

    def __post_init__(self) -> None:
        if self.units < 1:
            raise CompilationError(
                f"Compute needs >= 1 unit, got {self.units}")


@dataclass(frozen=True)
class Loop(Stmt):
    """A counted loop: the body executes at most ``iterations`` times.

    The generated header carries the IPET bound ``iterations + 1``
    (header executions per entry, counting the final failing test).
    """

    iterations: int
    body: tuple[Stmt, ...]
    note: str = ""

    def __init__(self, iterations: int, body, note: str = "") -> None:
        object.__setattr__(self, "iterations", iterations)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "note", note)
        if iterations < 0:
            raise CompilationError(
                f"Loop iterations must be >= 0, got {iterations}")
        if not self.body:
            raise CompilationError("Loop body must not be empty")


@dataclass(frozen=True)
class If(Stmt):
    """A two-way conditional; ``orelse`` may be empty."""

    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()
    note: str = ""

    def __init__(self, then, orelse=(), note: str = "") -> None:
        object.__setattr__(self, "then", tuple(then))
        object.__setattr__(self, "orelse", tuple(orelse))
        object.__setattr__(self, "note", note)
        if not self.then:
            raise CompilationError("If.then must not be empty")


@dataclass(frozen=True)
class Call(Stmt):
    """A call to another function of the same program."""

    callee: str

    def __post_init__(self) -> None:
        if not self.callee:
            raise CompilationError("Call needs a callee name")


@dataclass(frozen=True)
class Function:
    """A MiniC function: a name and a statement sequence."""

    name: str
    body: tuple[Stmt, ...]

    def __init__(self, name: str, body) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", tuple(body))
        if not name:
            raise CompilationError("Function needs a name")


@dataclass(frozen=True)
class Program:
    """A whole MiniC program.

    ``entry`` names the root function (default ``main``).  Callees must
    all be defined and the static call graph must be acyclic (checked
    here so errors surface before code generation).
    """

    functions: tuple[Function, ...]
    entry: str = "main"
    name: str = field(default="program")

    def __init__(self, functions, entry: str = "main",
                 name: str = "program") -> None:
        object.__setattr__(self, "functions", tuple(functions))
        object.__setattr__(self, "entry", entry)
        object.__setattr__(self, "name", name)
        self._validate()

    def _validate(self) -> None:
        names = [function.name for function in self.functions]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise CompilationError(
                f"duplicate function names: {sorted(duplicates)}")
        table = {function.name: function for function in self.functions}
        if self.entry not in table:
            raise CompilationError(
                f"entry function {self.entry!r} is not defined")
        for function in self.functions:
            for callee in _callees_of(function.body):
                if callee not in table:
                    raise CompilationError(
                        f"{function.name!r} calls undefined {callee!r}")
        _check_acyclic_call_graph(table, self.entry)

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise CompilationError(f"no function named {name!r}")


def _callees_of(statements) -> list[str]:
    """All callee names appearing (recursively) in a statement list."""
    found: list[str] = []
    for statement in statements:
        if isinstance(statement, Call):
            found.append(statement.callee)
        elif isinstance(statement, Loop):
            found.extend(_callees_of(statement.body))
        elif isinstance(statement, If):
            found.extend(_callees_of(statement.then))
            found.extend(_callees_of(statement.orelse))
    return found


def _check_acyclic_call_graph(table: dict[str, Function],
                              entry: str) -> None:
    from repro.errors import RecursionUnsupportedError

    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, chain: tuple[str, ...]) -> None:
        if state.get(name) == 1:
            return
        if state.get(name) == 0:
            cycle = " -> ".join(chain + (name,))
            raise RecursionUnsupportedError(
                f"recursive call chain: {cycle}")
        state[name] = 0
        for callee in _callees_of(table[name].body):
            visit(callee, chain + (name,))
        state[name] = 1

    visit(entry, ())
