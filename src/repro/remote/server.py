"""Stdlib-only HTTP shard server: ``repro serve``.

Exposes one cache root's shard layout — the same ``v<N>`` /
``classify-v<N>`` / ``cells-v<N>`` schema directories ``repro cache
gc`` compacts — as a content-addressed HTTP API:

``GET /stores/<schema-dir>/<kind>/<key>``
    The newest-wins value at that address, serialised as the
    *canonical shard line* (:func:`~repro.solve.store.encode_shard_line`)
    so the client can re-run the store's own integrity check
    (:func:`~repro.solve.store.parse_shard_line`) on what it received.
    Headers: ``ETag`` = the line's CRC-32 (quoted), ``X-Repro-SHA256``
    = SHA-256 of the exact body bytes.  ``404`` when the address is
    unknown (after folding in any shard lines appended by other
    writers since the last request).

``HEAD``
    Like ``GET`` without the body — a cheap existence probe.

``PUT /stores/<schema-dir>/<kind>/<key>``
    Push-on-write: the body must be a valid shard line whose kind and
    key match the path (a malformed or mis-addressed body is a
    ``400``, never stored).  Appends through the normal
    :class:`~repro.solve.store.ShardedStore` substrate — single
    ``O_APPEND`` whole-line writes, newest wins — with a lock
    serialising the server's handler threads; ``204`` on success.

``GET /healthz``
    Liveness probe (no chaos injection, no ordinal consumption).

Network chaos (``net:short_read|corrupt@<schema-dir>``) is injected in
the response path, *after* ETag/SHA-256 are computed over the true
body: a ``corrupt`` clause flips a payload byte (the client's
verification must catch it), a ``short_read`` clause advertises the
full ``Content-Length`` but sends only half the body and drops the
connection (the client sees ``IncompleteRead``).
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ConfigurationError
from repro.solve.gc import _is_schema_dir_name
from repro.solve.store import (ShardedStore, SolveStore, encode_shard_line,
                               parse_shard_line)
from repro.testing import faultinject

#: Content addresses are hex digests; kinds are short lowercase words.
_KEY_RE = re.compile(r"^[0-9a-fA-F]{8,128}$")
_KIND_RE = re.compile(r"^[a-z][a-z_]{0,31}$")


class _ServerIndex(ShardedStore):
    """One served schema directory: a generic ``(kind, key) → value``
    index over the standard shard substrate.

    Unlike the typed client-side stores this index carries *every*
    kind found in the directory — the server relays lines, it does not
    interpret them.  One lock serialises loads, refreshes and appends
    across the server's handler threads (appends themselves are
    single ``O_APPEND`` writes, so external writers sharing the
    directory stay safe as ever).
    """

    def __init__(self, root, subdir: str) -> None:
        super().__init__(root, subdir)
        self._entries: dict[tuple[str, str], object] = {}
        self.corrupt_skipped = 0
        self._mutex = threading.Lock()

    def _reset_index(self) -> None:
        self._entries = {}

    def _index_entry(self, parsed: tuple[str, str, object] | None) -> None:
        if parsed is None:
            self.corrupt_skipped += 1
            return
        kind, key, value = parsed
        self._entries[(kind, key)] = value

    def lookup(self, kind: str, key: str) -> object | None:
        """The value at one address; a miss re-folds fresh shard tails
        first (another process — a warming CI job, a sibling server —
        may have appended since the last request)."""
        with self._mutex:
            self._ensure_loaded()
            value = self._entries.get((kind, key))
            if value is None:
                self.refresh()
                value = self._entries.get((kind, key))
            return value

    def record(self, kind: str, key: str, value: object) -> None:
        with self._mutex:
            self._ensure_loaded()
            if self._entries.get((kind, key)) == value:
                return  # already present: dedup repeated pushes
            self._entries[(kind, key)] = value
            self._append(kind, key, value)


class _ShardHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the served root and its indexes."""

    #: Lets a restarted server rebind the same port immediately — the
    #: half-open recovery tests kill and revive a server in-place.
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, root) -> None:
        super().__init__(address, handler)
        self.root = root
        self._indexes: dict[str, _ServerIndex] = {}
        self._indexes_lock = threading.Lock()

    def index_for(self, subdir: str) -> _ServerIndex:
        with self._indexes_lock:
            index = self._indexes.get(subdir)
            if index is None:
                index = self._indexes[subdir] = _ServerIndex(self.root,
                                                             subdir)
            return index

    def close_indexes(self) -> None:
        with self._indexes_lock:
            for index in self._indexes.values():
                index.close()


class ShardServerHandler(BaseHTTPRequestHandler):
    """Request handler for the shard protocol (quiet by default)."""

    server_version = "repro-shard/1"
    protocol_version = "HTTP/1.1"

    # -- routing -------------------------------------------------------
    def _target(self) -> tuple[_ServerIndex, str, str, str] | None:
        """``(index, subdir, kind, key)`` for a well-formed store path.

        ``_is_schema_dir_name`` gates the directory exactly like
        ``repro cache import`` does — the path can never escape the
        served root or invent foreign subdirectories.
        """
        parts = [part for part in self.path.split("?")[0].split("/")
                 if part]
        if len(parts) != 4 or parts[0] != "stores":
            return None
        subdir, kind, key = parts[1], parts[2], parts[3]
        if not _is_schema_dir_name(subdir) or not _KIND_RE.match(kind) \
                or not _KEY_RE.match(key):
            return None
        return self.server.index_for(subdir), subdir, kind, key

    # -- responses -----------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_object(self, subdir: str, kind: str, key: str,
                     value: object, *, head: bool) -> None:
        body = encode_shard_line(kind, key, value).encode("utf-8")
        # Integrity headers are computed over the *true* body before
        # any chaos mangling: an injected corruption must be caught by
        # the client's verification, not laundered into new headers.
        checksum = json.loads(body)["c"]
        digest = hashlib.sha256(body).hexdigest()
        clause = None if head else faultinject.net_server_hook(subdir)
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", f'"{checksum}"')
        self.send_header("X-Repro-SHA256", digest)
        self.end_headers()
        if head:
            return
        if clause is not None and clause.action == "corrupt":
            mangled = bytearray(body)
            mangled[len(mangled) // 2] ^= 0x01
            self.wfile.write(bytes(mangled))
            return
        if clause is not None and clause.action == "short_read":
            # Advertise everything, deliver half, hang up: the client
            # sees http.client.IncompleteRead mid-body.
            self.wfile.write(body[:max(1, len(body) // 2)])
            self.close_connection = True
            return
        self.wfile.write(body)

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:
        if self.path.split("?")[0].rstrip("/") == "/healthz":
            self._send_json(200, {"ok": True})
            return
        target = self._target()
        if target is None:
            self._send_json(404, {"error": "unknown path"})
            return
        index, subdir, kind, key = target
        value = index.lookup(kind, key)
        if value is None:
            self._send_json(404, {"error": "unknown address"})
            return
        self._send_object(subdir, kind, key, value,
                          head=self.command == "HEAD")

    do_HEAD = do_GET

    def do_PUT(self) -> None:
        target = self._target()
        if target is None:
            self._send_json(404, {"error": "unknown path"})
            return
        index, _subdir, kind, key = target
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0 or length > 64 * 1024 * 1024:
            self._send_json(400, {"error": "bad content length"})
            return
        body = self.rfile.read(length)
        parsed = parse_shard_line(body.decode("utf-8", errors="replace"))
        if parsed is None or parsed[0] != kind or parsed[1] != key:
            # Checksum failure, malformed JSON, or a body addressed to
            # a different (kind, key): never stored.
            self._send_json(400, {"error": "body is not a valid shard "
                                           "line for this address"})
            return
        index.record(kind, key, parsed[2])
        self.send_response(204)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # request logging off: CI output stays diffable


class ShardServer:
    """The ``repro serve`` server object.

    ``port=0`` binds an ephemeral port (tests); :meth:`start` runs the
    server on a daemon thread and returns (tests again), while
    :meth:`serve_forever` blocks (the CLI).  ``url`` is the base URL
    clients put in ``REPRO_REMOTE_STORE``.
    """

    def __init__(self, cache: str | None = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        store = SolveStore.resolve(cache)
        if store is None:
            raise ConfigurationError(
                "cannot serve with the cache disabled (cache='off')")
        self.root = store.root
        self._httpd = _ShardHTTPServer((host, port), ShardServerHandler,
                                       self.root)
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ShardServer":
        self._serving = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-shard-server",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        try:
            self._httpd.serve_forever()
        finally:
            self._serving = False

    def close(self) -> None:
        if self._serving and self._thread is not None:
            # shutdown() waits for an *active* serve loop to exit; on
            # a never-started (or already-stopped) server it would
            # block forever, so it is gated on the background thread.
            self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd.close_indexes()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._serving = False

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
