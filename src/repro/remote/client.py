"""Fault-tolerant client of the remote shard server.

Layered *under* the local stores: when ``REPRO_REMOTE_STORE`` /
``--remote`` names a :class:`~repro.remote.server.ShardServer`, every
resolved :class:`~repro.solve.store.ShardedStore` carries one of these
handles and consults it on a local miss (fetch-on-miss) and after a
local write (push-on-write).  The local store stays the store of
record — every fetched entry is appended to the local shards — so the
remote is purely an accelerator and its failure can never change
results, only warm-hit rates.

Resilience stack (the remote is the pipeline's first genuinely
unreliable component, so it lands resilience-first):

* **Verification** — a fetched body must re-parse as the canonical
  shard line (CRC-32 over kind/key/value), match the requested
  address, *and* match the server's ``X-Repro-SHA256`` transport
  digest; any mismatch is rejected and refetched, never indexed.
* **Retries** — transient failures (connection errors, timeouts,
  short reads, verification rejects) retry under a
  :class:`~repro.pipeline.resilience.RetryPolicy` with jittered
  exponential backoff.
* **Request coalescing** — concurrent in-process fetches of one
  address share a single wire request; results (hits *and* misses)
  are memoised per client handle.
* **Circuit breaker** — consecutive failures trip the client into
  local-only mode; after a cooldown one probe request half-opens the
  circuit, and its success restores remote service.  A tripped
  breaker makes every store operation degrade instantly instead of
  burning a timeout per miss — the "remote dies mid-sweep" run
  completes from local stores at full speed, byte-identical, exit 0.

All outcomes land in :class:`RemoteStats`, which
:class:`~repro.pipeline.scheduler.PipelineStats` snapshots per run.

Chaos: the ``net:drop|delay@<schema-dir>`` fault-plan clauses fire
here (client side), through :func:`repro.testing.faultinject.net_client_hook`.
"""

from __future__ import annotations

import hashlib
import http.client
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.pipeline.resilience import RetryPolicy
from repro.solve.store import (_OFF_VALUES, REMOTE_ENV, encode_shard_line,
                               parse_shard_line)
from repro.testing import faultinject

#: Optional per-request timeout override (seconds).
TIMEOUT_ENV = "REPRO_REMOTE_TIMEOUT"

#: Memo sentinel for a confirmed remote miss (valid values are JSON,
#: and ``None`` must mean "not cached here").
_MISS = object()


@dataclass
class RemoteStats:
    """Wire-level outcome counters of one client handle."""

    #: Objects fetched, verified and handed to a store.
    fetch_hits: int = 0
    #: Confirmed remote 404s (the address is genuinely unknown).
    fetch_misses: int = 0
    #: Entries pushed on write (204 from the server).
    pushes: int = 0
    #: Push attempts that failed (best-effort: never retried, never
    #: fatal).
    push_failures: int = 0
    #: Fetch attempts re-sent after a transient failure.
    retries: int = 0
    #: Fetched bodies rejected by checksum / address / SHA-256
    #: verification (each one is refetched).
    verify_rejects: int = 0
    #: Circuit-breaker transitions into the open (local-only) state.
    breaker_trips: int = 0
    #: Requests skipped outright because the breaker was open —
    #: the length of the degraded span, in store operations.
    degraded_skips: int = 0
    #: Fetches served from the in-process memo / a coalesced in-flight
    #: request instead of the wire.
    coalesced_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "fetch_hits": self.fetch_hits,
            "fetch_misses": self.fetch_misses,
            "pushes": self.pushes,
            "push_failures": self.push_failures,
            "retries": self.retries,
            "verify_rejects": self.verify_rejects,
            "breaker_trips": self.breaker_trips,
            "degraded_skips": self.degraded_skips,
            "coalesced_hits": self.coalesced_hits,
        }


class _Breaker:
    """Minimal three-state circuit breaker (closed / open / half-open).

    ``threshold`` *consecutive* failures trip it open; ``allow()``
    then refuses requests for ``cooldown`` seconds, after which
    exactly one caller is admitted as the half-open probe.  The
    probe's success closes the circuit; its failure re-opens it for
    another cooldown.  Thread-safe: the stores call into one client
    from every scheduler thread.
    """

    def __init__(self, threshold: int = 4, cooldown: float = 15.0,
                 clock=time.monotonic) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open" \
                    and self._clock() - self._opened_at >= self.cooldown:
                self._state = "half_open"
                self._probing = False
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def success(self) -> None:
        with self._lock:
            self._consecutive = 0
            self._probing = False
            self._state = "closed"

    def failure(self) -> bool:
        """Record one failure; ``True`` when this call trips the
        circuit open (a failed probe re-trips)."""
        with self._lock:
            self._consecutive += 1
            should_open = self._state == "half_open" \
                or (self._state == "closed"
                    and self._consecutive >= self.threshold)
            if should_open:
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
            return should_open


#: Client handles memoised per base URL — one breaker, one memo and
#: one stats ledger per server per process, shared by all stores.
_CLIENTS: dict[str, "RemoteStoreClient"] = {}


class RemoteStoreClient:
    """One remote shard server, with the full resilience stack."""

    def __init__(self, base_url: str, *,
                 retry: RetryPolicy | None = None,
                 timeout: float = 2.0,
                 breaker_threshold: int = 4,
                 breaker_cooldown: float = 15.0) -> None:
        self.base_url = base_url.rstrip("/")
        #: Remote requests back off faster and shallower than pool
        #: stages: a sweep blocked on the wire should degrade to
        #: local compute, not wait out long sleeps.
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, backoff_base=0.05, backoff_cap=0.5)
        self.timeout = timeout
        self.stats = RemoteStats()
        self.breaker = _Breaker(threshold=breaker_threshold,
                                cooldown=breaker_cooldown)
        self._lock = threading.Lock()
        #: ``(subdir, kind, key) → value | _MISS`` — both outcomes are
        #: memoised so one address is asked at most once per process
        #: (pushes update it; see :meth:`push`).
        self._memo: dict[tuple[str, str, str], object] = {}
        #: In-flight fetch events for request coalescing.
        self._inflight: dict[tuple[str, str, str], threading.Event] = {}

    # -- resolution ----------------------------------------------------
    @classmethod
    def resolve(cls, override: str | None = None
                ) -> "RemoteStoreClient | None":
        """The client selected by ``override`` or
        ``REPRO_REMOTE_STORE`` (``off``/empty/unset disables)."""
        value = override if override is not None \
            else os.environ.get(REMOTE_ENV)
        if value is None or not value.strip() \
                or value.strip().lower() in _OFF_VALUES:
            return None
        url = value.strip().rstrip("/")
        client = _CLIENTS.get(url)
        if client is None:
            try:
                timeout = float(os.environ.get(TIMEOUT_ENV) or 2.0)
            except ValueError:
                timeout = 2.0
            client = _CLIENTS[url] = cls(url, timeout=timeout)
        return client

    @property
    def degraded(self) -> bool:
        """Whether this client ever fell back to local-only mode."""
        return self.stats.breaker_trips > 0 \
            or self.stats.degraded_skips > 0

    # -- fetch-on-miss -------------------------------------------------
    def fetch(self, subdir: str, kind: str, key: str) -> object | None:
        """The value at one content address, or ``None`` (miss or
        degraded).  Never raises: every failure mode ends in ``None``
        and the pipeline recomputes locally."""
        token = (subdir, kind, key)
        while True:
            with self._lock:
                cached = self._memo.get(token)
                if cached is not None:
                    self.stats.coalesced_hits += 1
                    return None if cached is _MISS else cached
                event = self._inflight.get(token)
                if event is None:
                    event = self._inflight[token] = threading.Event()
                    break
            # Another thread owns the wire request for this address:
            # wait for it and re-check the memo.
            event.wait()
        value = None
        try:
            value = self._fetch_wire(subdir, kind, key)
        finally:
            with self._lock:
                # A degraded (breaker-skipped) miss is NOT memoised as
                # a miss: the address may exist remotely and should be
                # retried once the circuit recovers.
                if value is not None:
                    self._memo[token] = value
                elif self.breaker.state == "closed":
                    self._memo[token] = _MISS
                self._inflight.pop(token, None)
            event.set()
        return value

    def _fetch_wire(self, subdir: str, kind: str, key: str
                    ) -> object | None:
        url = f"{self.base_url}/stores/{subdir}/{kind}/{key}"
        policy = self.retry
        value = None
        for attempt in range(1, max(1, policy.max_attempts) + 1):
            if not self.breaker.allow():
                self.stats.degraded_skips += 1
                return None
            outcome = self._request_once(url, subdir, kind, key)
            if outcome == "miss":
                self.breaker.success()
                self.stats.fetch_misses += 1
                return None
            if outcome not in ("failure", "reject"):
                self.breaker.success()
                self.stats.fetch_hits += 1
                value = outcome[0]
                return value
            if outcome == "reject":
                self.stats.verify_rejects += 1
            if self.breaker.failure():
                self.stats.breaker_trips += 1
                return None
            if attempt < policy.max_attempts:
                self.stats.retries += 1
                policy.sleep_backoff(attempt)
        return None

    def _request_once(self, url: str, subdir: str, kind: str,
                      key: str):
        """One GET: ``(value,)`` on verified success, ``"miss"`` on a
        404, ``"reject"`` on verification failure, ``"failure"`` on
        any transport error."""
        try:
            faultinject.net_client_hook(subdir)
            request = urllib.request.Request(url, method="GET")
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
                digest = response.headers.get("X-Repro-SHA256")
        except urllib.error.HTTPError as error:
            error.close()
            return "miss" if error.code == 404 else "failure"
        except (OSError, http.client.HTTPException, TimeoutError):
            # URLError, ConnectionError, socket timeouts, IncompleteRead
            # (a short read), protocol garbage: all transient transport
            # failures.
            return "failure"
        if digest is not None \
                and hashlib.sha256(body).hexdigest() != digest:
            return "reject"
        parsed = parse_shard_line(body.decode("utf-8", errors="replace"))
        if parsed is None or parsed[0] != kind or parsed[1] != key:
            # Bad checksum (a corrupt wire or server shard) or an
            # object addressed elsewhere: never hand it to a store.
            return "reject"
        return (parsed[2],)

    # -- push-on-write -------------------------------------------------
    def push(self, subdir: str, kind: str, key: str,
             value: object) -> bool:
        """Best-effort single-shot PUT; ``True`` when the server
        acknowledged.  Failures count (``push_failures``, breaker) but
        never raise and never retry — the writer's own work must not
        stall on the remote, and the entry is safe in the local store
        regardless."""
        token = (subdir, kind, key)
        with self._lock:
            if self._memo.get(token) == value:
                return True  # this very entry came from (or went to)
                             # the server already
        if not self.breaker.allow():
            self.stats.degraded_skips += 1
            return False
        body = encode_shard_line(kind, key, value).encode("utf-8")
        url = f"{self.base_url}/stores/{subdir}/{kind}/{key}"
        try:
            faultinject.net_client_hook(subdir)
            request = urllib.request.Request(
                url, data=body, method="PUT",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                ok = response.status in (200, 201, 204)
        except urllib.error.HTTPError as error:
            error.close()
            ok = False
        except (OSError, http.client.HTTPException, TimeoutError):
            ok = False
        if ok:
            self.breaker.success()
            self.stats.pushes += 1
            with self._lock:
                self._memo[token] = value
        else:
            self.stats.push_failures += 1
            if self.breaker.failure():
                self.stats.breaker_trips += 1
        return ok


def resolved_clients() -> tuple[RemoteStoreClient, ...]:
    """Every client handle this process has resolved (for the CLI's
    degradation note and for tests)."""
    return tuple(_CLIENTS.values())


def remote_stats_totals() -> dict[str, int]:
    """All clients' counters, flattened with a ``remote_`` prefix —
    the shape :class:`~repro.pipeline.scheduler.PipelineStats`
    snapshots before and after a run."""
    totals: dict[str, int] = {}
    for client in _CLIENTS.values():
        for name, count in client.stats.as_dict().items():
            label = f"remote_{name}"
            totals[label] = totals.get(label, 0) + count
    return totals
