"""Remote artifact store: the shard protocol over HTTP.

Promotes the three content-addressed stores (solve / classification /
cell) from per-machine directories to a fleet-shared network service,
the ROADMAP's "pWCET-as-a-service" direction: every query any run has
ever answered becomes a store hit for the whole fleet.

``server``
    :class:`~repro.remote.server.ShardServer` — a stdlib-only HTTP
    server (``repro serve``) exposing a cache root's shard layout over
    ``GET`` / ``PUT`` / ``HEAD`` with content-address paths
    (``/stores/<schema-dir>/<kind>/<key>``), ETag = the shard line's
    CRC-32 checksum, and concurrency-safe appends through the existing
    newest-wins shard substrate.

``client``
    :class:`~repro.remote.client.RemoteStoreClient` — the
    fault-tolerant client every resolved
    :class:`~repro.solve.store.ShardedStore` layers underneath when
    ``REPRO_REMOTE_STORE`` / ``--remote`` is set: fetch-on-miss with
    in-process request coalescing, push-on-write, SHA-256 + checksum
    verification of fetched objects (reject on mismatch), retries
    with jittered exponential backoff, per-request timeouts, and a
    circuit breaker that trips to local-only mode after consecutive
    failures and half-opens on a probe.

The headline property is graceful degradation: a remote that dies
mid-sweep never fails a run — the pipeline completes from the local
stores, byte-identical to a local-only run, exit code 0, with the
degradation visible in :class:`~repro.pipeline.scheduler.PipelineStats`
remote counters.  The wire is chaos-testable through the
``net:drop|delay|short_read|corrupt`` fault-plan sites
(:mod:`repro.testing.faultinject`).
"""

from repro.remote.client import (RemoteStats, RemoteStoreClient,
                                 remote_stats_totals, resolved_clients)
from repro.remote.server import ShardServer

__all__ = [
    "RemoteStats",
    "RemoteStoreClient",
    "ShardServer",
    "remote_stats_totals",
    "resolved_clients",
]
