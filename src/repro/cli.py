"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``estimate``   pWCET of one suite benchmark for chosen mechanisms.
``suite``      the Figure 4 survey over all 25 benchmarks.
``curve``      exceedance series (Figure 3) for one benchmark.
``fmm``        print a benchmark's fault miss map (Figure 1.a style).
``tradeoff``   pWCET gain vs hardware cost (the §I trade-off).
``sweep``      (geometry x pfail) design-space sweep, Pareto fronts;
               ``--workers N`` fans whole grid cells over a process
               pool and streams per-cell progress as cells complete.
``cache gc``   fold the persistent stores' append-only shards into
               one sorted, checksummed file each (``--dry-run`` for
               a statistics report only).
``cache export``  pack the gc'd canonical shards of every store into
               a tarball for another machine (the live cache is left
               untouched).
``cache import``  merge a cache tarball content-addressed: novel
               entries are appended, existing ones never clobbered.
``serve``      HTTP shard server over one cache root: remote clients
               (``--remote`` / ``REPRO_REMOTE_STORE``) fetch store
               misses from it and push writes back, with retries,
               circuit breaking and graceful local-only degradation.
``list``       list the available benchmarks with size metadata.

All estimation commands consult the persistent caches — the three
stores (solve, classification, cell) share one directory
(``REPRO_CACHE=off|<path>``, ``--cache``; ``REPRO_SOLVE_CACHE`` is a
deprecated alias): a warm re-run of any command performs zero backend
ILP solves and zero abstract-interpretation fixpoints.

``suite`` and ``sweep`` take resilience knobs: transient worker
crashes and broken pools are always retried; ``--partial`` completes
what it can around permanently failing benchmarks/cells and exits
with code 3 (1 when nothing survived), ``--max-attempts`` and
``--stage-timeout`` tune the retry policy.  See README "Resilience &
chaos testing".
"""

from __future__ import annotations

import argparse
import sys

from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.suite import EVALUATED_BENCHMARKS, info, load
from repro.sweep.grid import DEFAULT_LINES, DEFAULT_SIZES, DEFAULT_WAYS

_MECHANISM_CHOICES = ("none", "srb", "rw", "srb+")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pfail", type=float, default=1e-4,
                        help="SRAM cell failure probability "
                             "(default 1e-4, the paper's value)")
    parser.add_argument("--probability", type=float,
                        default=TARGET_EXCEEDANCE,
                        help="target exceedance probability "
                             "(default 1e-15)")
    parser.add_argument("--relaxed", action="store_true",
                        help="solve LP relaxations (sound, faster)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width for batched solving "
                             "(default 1: in-process)")
    parser.add_argument("--cache", default=None, metavar="off|PATH",
                        help="persistent store directory; 'off' "
                             "disables it (default: REPRO_CACHE, "
                             "else the user cache dir)")
    parser.add_argument("--remote", default=None, metavar="off|URL",
                        help="remote shard server (`repro serve`) to "
                             "fetch store misses from and push writes "
                             "to; 'off' disables (default: "
                             "REPRO_REMOTE_STORE, else local-only)")


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--partial", action="store_true",
                        help="tolerate permanently failing benchmarks/"
                             "cells: the rest of the run completes, "
                             "failures are annotated in the output, "
                             "and the exit code is 3 (default strict "
                             "mode aborts on the first permanent "
                             "failure)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="attempt budget per stage before a "
                             "transient fault (killed worker, broken "
                             "pool, timeout) is quarantined "
                             "(default 3)")
    parser.add_argument("--stage-timeout", action="append", default=None,
                        metavar="[STAGE=]SECONDS",
                        help="kill and retry a pool stage running "
                             "longer than SECONDS; prefix with "
                             "STAGE= to budget one stage kind only "
                             "(repeatable)")


#: Stage names a ``--stage-timeout STAGE=SECONDS`` budget may target —
#: the stages the DAG builders actually schedule.  A typo'd stage name
#: must fail loudly: a silently ignored budget would green-light an
#: unsupervised run.
_TIMEOUT_STAGES = frozenset({"classify", "solve", "cell", "distribution",
                             "estimate", "result", "sweep-cell",
                             "sweep-cells"})


def _retry_from(arguments: argparse.Namespace):
    """Build a ``RetryPolicy`` from the CLI knobs, or ``None``.

    ``None`` means "the driver's default policy": transient faults are
    still retried, but no timeout supervision runs and the attempt
    budget is the library default.
    """
    import math

    from repro.pipeline.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
    max_attempts = arguments.max_attempts
    if max_attempts is not None and max_attempts < 1:
        raise SystemExit(f"--max-attempts must be >= 1, "
                         f"got {max_attempts}")
    timeout = None
    stage_timeouts: dict[str, float] = {}
    for spec in arguments.stage_timeout or ():
        stage, separator, value = spec.rpartition("=")
        try:
            seconds = float(value)
        except ValueError:
            raise SystemExit("--stage-timeout: expected "
                             f"[STAGE=]SECONDS, got {spec!r}") from None
        if not math.isfinite(seconds) or seconds <= 0:
            raise SystemExit("--stage-timeout: SECONDS must be a "
                             f"positive finite number, got {spec!r}")
        if separator:
            if stage not in _TIMEOUT_STAGES:
                raise SystemExit(
                    f"--stage-timeout: unknown stage {stage!r} in "
                    f"{spec!r} (one of {', '.join(sorted(_TIMEOUT_STAGES))})")
            stage_timeouts[stage] = seconds
        else:
            timeout = seconds
    if max_attempts is None and timeout is None and not stage_timeouts:
        return None
    base = DEFAULT_RETRY_POLICY
    return RetryPolicy(max_attempts=(max_attempts if max_attempts
                                     is not None else base.max_attempts),
                       timeout=timeout,
                       stage_timeouts=stage_timeouts or None)


def _config_from(arguments: argparse.Namespace) -> EstimatorConfig:
    if arguments.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {arguments.workers}")
    if getattr(arguments, "remote", None) is not None:
        # The stores resolve the remote client from the environment on
        # every resolve(), so the flag simply overrides the variable —
        # including `--remote off` silencing an inherited one.
        import os

        from repro.solve.store import REMOTE_ENV
        os.environ[REMOTE_ENV] = arguments.remote
    return EstimatorConfig(pfail=arguments.pfail,
                           relaxed=arguments.relaxed,
                           workers=arguments.workers,
                           cache=arguments.cache)


def _estimator_for(name: str,
                   arguments: argparse.Namespace) -> PWCETEstimator:
    if name not in EVALUATED_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         "see `python -m repro list`")
    return PWCETEstimator(load(name), _config_from(arguments), name=name)


def _command_estimate(arguments: argparse.Namespace) -> int:
    estimator = _estimator_for(arguments.benchmark, arguments)
    print(f"benchmark {arguments.benchmark}: "
          f"fault-free WCET {estimator.fault_free_wcet()} cycles")
    for mechanism in arguments.mechanisms:
        estimate = estimator.estimate(mechanism)
        try:
            value = estimate.pwcet(arguments.probability)
        except Exception as error:  # refined analyses may refuse deep tails
            print(f"  {mechanism:>5s}: unavailable ({error})")
            continue
        print(f"  {mechanism:>5s}: pWCET@{arguments.probability:.0e} "
              f"= {value} cycles")
    return 0


def _command_suite(arguments: argparse.Namespace) -> int:
    from repro.experiments import fig4_rows, format_fig4
    retry = _retry_from(arguments)
    if not arguments.partial:
        rows = fig4_rows(_config_from(arguments),
                         target_probability=arguments.probability,
                         retry=retry)
        print(format_fig4(rows))
        return 0
    from repro.experiments.fig4 import row_of
    from repro.experiments.runner import FailedBenchmark, run_suite
    results = run_suite(_config_from(arguments),
                        target_probability=arguments.probability,
                        strict=False, retry=retry)
    failed = [item for item in results
              if isinstance(item, FailedBenchmark)]
    completed = [item for item in results
                 if not isinstance(item, FailedBenchmark)]
    if completed:
        print(format_fig4([row_of(result) for result in completed]))
    if not failed:
        return 0
    if completed:
        print()
    print(f"FAILED benchmarks ({len(failed)} of {len(results)} — "
          "partial suite):")
    for item in failed:
        failure = item.failure
        print(f"  {item.name}: {failure.stage} "
              f"[{failure.classification}] after "
              f"{failure.attempts} attempt(s) — {failure.error}")
    return 3 if completed else 1


def _command_curve(arguments: argparse.Namespace) -> int:
    estimator = _estimator_for(arguments.benchmark, arguments)
    for mechanism in arguments.mechanisms:
        curve = estimator.estimate(mechanism).exceedance_curve()
        print(f"# {arguments.benchmark} / {mechanism}")
        for value, probability in curve.rows()[:arguments.max_points]:
            print(f"{value} {probability:.6e}")
    return 0


def _command_fmm(arguments: argparse.Namespace) -> int:
    estimator = _estimator_for(arguments.benchmark, arguments)
    fmm = estimator.fault_miss_map(arguments.mechanisms[0])
    print(fmm.format_table())
    return 0


def _command_tradeoff(arguments: argparse.Namespace) -> int:
    from repro.hwcost.tradeoff import format_tradeoff, tradeoff_points
    benchmarks = tuple(arguments.benchmark or ("fibcall", "ud", "adpcm"))
    points = tradeoff_points(benchmarks, _config_from(arguments),
                             probability=arguments.probability)
    print(format_tradeoff(points))
    return 0


def _parse_only_cells(specs):
    """``--only-cells mech=<name>,pfail=<p>`` → (mechanism, pfail) pairs.

    Either key may be omitted (wildcard on that axis); the flag
    repeats, and a cell is selected when any filter matches it.
    """
    filters = []
    for spec in specs or ():
        mechanism = None
        pfail = None
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, value = part.partition("=")
            if not separator:
                raise SystemExit(
                    f"--only-cells: expected key=value, got {part!r} "
                    "(use mech=<name>,pfail=<p>)")
            if key == "mech":
                mechanism = value
            elif key == "pfail":
                try:
                    pfail = float(value)
                except ValueError:
                    raise SystemExit(f"--only-cells: pfail must be a "
                                     f"number, got {value!r}") from None
            else:
                raise SystemExit(f"--only-cells: unknown key {key!r} "
                                 "(use mech=<name>,pfail=<p>)")
        if mechanism is None and pfail is None:
            raise SystemExit(f"--only-cells: empty filter {spec!r}")
        filters.append((mechanism, pfail))
    return tuple(filters) or None


def _command_sweep(arguments: argparse.Namespace) -> int:
    from repro.sweep import format_sweep_report, geometry_grid, run_sweep
    benchmarks = tuple(arguments.benchmarks or EVALUATED_BENCHMARKS)
    for name in benchmarks:
        if name not in EVALUATED_BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r}; "
                             "see `python -m repro list`")
    geometries = geometry_grid(sizes=tuple(arguments.sizes),
                               ways=tuple(arguments.ways),
                               lines=tuple(arguments.lines))
    # --pfails defines the grid axis; without it, the shared --pfail
    # value becomes a one-point axis instead of being ignored.
    pfails = (tuple(arguments.pfails) if arguments.pfails is not None
              else (arguments.pfail,))

    def stream_cell(cell, points, completed, total):
        # Streams to stderr as cells finish (completion order under
        # --workers); stdout stays byte-identical to the sequential
        # report, which is always assembled in grid order.
        best = max((point for point in points if point.mechanism != "none"),
                   key=lambda point: point.mean_gain, default=None)
        summary = (f"best gain {best.mean_gain:.1%} ({best.mechanism})"
                   if best is not None else "no protected mechanism")
        print(f"[{completed:>3d}/{total}] {cell.label}: {summary}",
              file=sys.stderr, flush=True)

    # --workers fans *whole grid cells* (grouped by geometry) over a
    # process pool; inside a cell the suite then runs single-worker.
    result = run_sweep(geometries,
                       pfails=pfails,
                       benchmarks=benchmarks,
                       config=_config_from(arguments),
                       cell_workers=arguments.workers,
                       on_cell=stream_cell,
                       only_cells=_parse_only_cells(arguments.only_cells),
                       probability=arguments.probability,
                       strict=not arguments.partial,
                       retry=_retry_from(arguments))
    text = format_sweep_report(result)
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(text + "\n")
        print(f"sweep report written to {arguments.output}")
    else:
        print(text)
    if result.failed:
        # Partial sweep: the report annotates the failed cells; the
        # exit code tells scripts the grid is incomplete (3) or that
        # nothing at all survived (1).
        return 3 if result.points else 1
    return 0


def _command_cache_gc(arguments: argparse.Namespace) -> int:
    from repro.solve.gc import gc_cache
    reports = gc_cache(arguments.cache, dry_run=arguments.dry_run,
                       fsync=arguments.fsync)
    if not reports:
        print("cache gc: nothing to compact (no shards found, or the "
              "cache is disabled)")
        return 0
    for report in reports:
        print(report.format_row())
    total_saved = sum(report.bytes_saved for report in reports)
    verb = "would save" if arguments.dry_run else "saved"
    noun = "directory" if len(reports) == 1 else "directories"
    print(f"cache gc: {verb} {total_saved} bytes across "
          f"{len(reports)} store {noun}")
    total_corrupt = sum(report.corrupt_dropped for report in reports)
    if total_corrupt:
        # Silent store repair made visible: these lines were torn or
        # corrupt, were skipped by every reader, and are (or would be)
        # dropped for good here.
        verb = "would drop" if arguments.dry_run else "dropped"
        print(f"cache gc: {verb} {total_corrupt} corrupt/torn "
              f"line(s) recovered by re-computation")
    return 0


def _command_cache_export(arguments: argparse.Namespace) -> int:
    from repro.solve.gc import export_cache
    reports = export_cache(arguments.tarball, arguments.cache,
                           fsync=arguments.fsync)
    if not reports:
        print("cache export: nothing to pack (no shards found)")
        return 0
    for report in reports:
        print(report.format_row())
    total = sum(report.entries for report in reports)
    print(f"cache export: packed {total} entr(ies) into "
          f"{arguments.tarball}")
    return 0


def _command_cache_import(arguments: argparse.Namespace) -> int:
    from repro.solve.gc import import_cache
    reports = import_cache(arguments.tarball, arguments.cache,
                           fsync=arguments.fsync)
    if not reports:
        print("cache import: no store shards found in "
              f"{arguments.tarball}")
        return 0
    for report in reports:
        print(report.format_row())
    total = sum(report.imported for report in reports)
    print(f"cache import: merged {total} new entr(ies)")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    from repro.remote.server import ShardServer
    server = ShardServer(arguments.cache, host=arguments.host,
                         port=arguments.port)
    print(f"serving shard store {server.root} at {server.url} "
          "(Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _remote_degradation_note() -> None:
    """One stderr note per degraded remote client, after any command.

    Stderr only: stdout must stay byte-identical to a local-only run —
    that is the headline guarantee ("remote dies mid-sweep → run
    completes from local stores, byte-identical, exit 0").
    """
    import sys as _sys
    if "repro.remote.client" not in _sys.modules:
        return  # no remote was ever resolved: nothing to report
    from repro.remote.client import resolved_clients
    for client in resolved_clients():
        if not client.degraded:
            continue
        stats = client.stats
        print(f"note: remote store {client.base_url} degraded to "
              f"local-only mode ({stats.breaker_trips} circuit-breaker "
              f"trip(s), {stats.degraded_skips} request(s) skipped, "
              f"{stats.retries} retr(ies)); the run completed from "
              "local stores", file=sys.stderr, flush=True)


def _command_list(_arguments: argparse.Namespace) -> int:
    print(f"{'benchmark':14s} {'bytes':>7s} {'instrs':>7s}  description")
    for name in EVALUATED_BENCHMARKS:
        metadata = info(name)
        print(f"{name:14s} {metadata.code_bytes:7d} "
              f"{metadata.instruction_count:7d}  {metadata.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-aware probabilistic WCET estimation "
                    "(Hardy, Puaut & Sazeides, DATE 2016)")
    commands = parser.add_subparsers(dest="command", required=True)

    estimate = commands.add_parser(
        "estimate", help="pWCET of one benchmark")
    estimate.add_argument("benchmark")
    estimate.add_argument("--mechanisms", nargs="+",
                          choices=_MECHANISM_CHOICES,
                          default=["none", "srb", "rw"])
    _add_config_arguments(estimate)
    estimate.set_defaults(handler=_command_estimate)

    suite = commands.add_parser(
        "suite", help="the Figure 4 survey over all 25 benchmarks")
    _add_config_arguments(suite)
    _add_resilience_arguments(suite)
    suite.set_defaults(handler=_command_suite)

    curve = commands.add_parser(
        "curve", help="exceedance series (Figure 3) for one benchmark")
    curve.add_argument("benchmark")
    curve.add_argument("--mechanisms", nargs="+",
                       choices=_MECHANISM_CHOICES,
                       default=["none", "srb", "rw"])
    curve.add_argument("--max-points", type=int, default=50)
    _add_config_arguments(curve)
    curve.set_defaults(handler=_command_curve)

    fmm = commands.add_parser(
        "fmm", help="fault miss map of one benchmark")
    fmm.add_argument("benchmark")
    fmm.add_argument("--mechanisms", nargs=1,
                     choices=_MECHANISM_CHOICES, default=["none"])
    _add_config_arguments(fmm)
    fmm.set_defaults(handler=_command_fmm)

    tradeoff = commands.add_parser(
        "tradeoff", help="pWCET gain vs hardware cost")
    tradeoff.add_argument("benchmark", nargs="*")
    _add_config_arguments(tradeoff)
    tradeoff.set_defaults(handler=_command_tradeoff)

    sweep = commands.add_parser(
        "sweep", help="multi-geometry design-space sweep "
                      "(Pareto fronts of pWCET gain vs hardware cost)")
    sweep.add_argument("--sizes", type=int, nargs="+",
                       default=list(DEFAULT_SIZES),
                       help="cache capacities in bytes")
    sweep.add_argument("--ways", type=int, nargs="+",
                       default=list(DEFAULT_WAYS),
                       help="associativities")
    sweep.add_argument("--lines", type=int, nargs="+",
                       default=list(DEFAULT_LINES),
                       help="line sizes in bytes")
    sweep.add_argument("--pfails", type=float, nargs="+", default=None,
                       help="cell failure probability axis (cells "
                            "along it reuse every cached solve; "
                            "default: the --pfail value)")
    sweep.add_argument("--benchmarks", nargs="+", default=None,
                       help="suite subset (default: all 25)")
    sweep.add_argument("--only-cells", action="append", default=None,
                       metavar="mech=<name>,pfail=<p>",
                       help="restrict the sweep to matching (mechanism, "
                            "pfail) cells; either key may be omitted, "
                            "the flag repeats, and selected sections "
                            "stay byte-identical to the full run's")
    sweep.add_argument("--output", default=None,
                       help="write the report to a file")
    _add_config_arguments(sweep)
    _add_resilience_arguments(sweep)
    sweep.set_defaults(handler=_command_sweep)

    cache = commands.add_parser(
        "cache", help="persistent store maintenance")
    cache_commands = cache.add_subparsers(dest="cache_command",
                                          required=True)
    cache_gc = cache_commands.add_parser(
        "gc", help="fold append-only solve/classification shards into "
                   "one sorted, checksummed file each")
    cache_gc.add_argument("--cache", default=None, metavar="off|PATH",
                          help="cache directory to compact (default: "
                               "REPRO_CACHE, else the user cache "
                               "dir)")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what compaction would do without "
                               "touching any shard")
    cache_gc.add_argument("--fsync", action="store_true",
                          help="flush each published shard (and its "
                               "directory entry) to stable storage — "
                               "durable against power loss, not just "
                               "torn writes")
    cache_gc.set_defaults(handler=_command_cache_gc)
    cache_export = cache_commands.add_parser(
        "export", help="pack the gc'd canonical shards of every store "
                       "into a tarball (the live cache is not modified)")
    cache_export.add_argument("tarball",
                              help="output tarball path (gzip-compressed)")
    cache_export.add_argument("--cache", default=None, metavar="off|PATH",
                              help="cache directory to export (default: "
                                   "REPRO_CACHE, else the user "
                                   "cache dir)")
    cache_export.add_argument("--fsync", action="store_true",
                              help="flush the finished tarball to "
                                   "stable storage before the atomic "
                                   "rename publishes it")
    cache_export.set_defaults(handler=_command_cache_export)
    cache_import = cache_commands.add_parser(
        "import", help="merge a cache tarball content-addressed: novel "
                       "entries are appended, existing ones never "
                       "clobbered")
    cache_import.add_argument("tarball", help="tarball produced by "
                                              "`repro cache export`")
    cache_import.add_argument("--cache", default=None, metavar="off|PATH",
                              help="cache directory to merge into "
                                   "(default: REPRO_CACHE, else "
                                   "the user cache dir)")
    cache_import.add_argument("--fsync", action="store_true",
                              help="flush the merged shard to stable "
                                   "storage before the atomic rename "
                                   "publishes it")
    cache_import.set_defaults(handler=_command_cache_import)

    serve = commands.add_parser(
        "serve", help="HTTP shard server over one cache root "
                      "(fetch-on-miss / push-on-write remote for "
                      "--remote / REPRO_REMOTE_STORE clients)")
    serve.add_argument("--cache", default=None, metavar="PATH",
                       help="cache directory to serve (default: "
                            "REPRO_CACHE, else the user cache dir)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; bind "
                            "0.0.0.0 only on a trusted network — the "
                            "protocol is unauthenticated)")
    serve.add_argument("--port", type=int, default=8737,
                       help="TCP port (default 8737; 0 picks a free "
                            "port)")
    serve.set_defaults(handler=_command_serve)

    listing = commands.add_parser("list", help="available benchmarks")
    listing.set_defaults(handler=_command_list)

    report = commands.add_parser(
        "report", help="full reproduction report (all artefacts)")
    report.add_argument("--output", default=None,
                        help="write the markdown report to a file")
    _add_config_arguments(report)
    report.set_defaults(handler=_command_report)
    return parser


def _command_report(arguments: argparse.Namespace) -> int:
    from repro.experiments.report import full_report
    text = full_report(_config_from(arguments))
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {arguments.output}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    code = arguments.handler(arguments)
    _remote_degradation_note()
    return code


if __name__ == "__main__":
    sys.exit(main())
