"""Concrete fault maps: which physical cache blocks are faulty.

A fault map records, for every (set, way) frame of a cache, whether the
frame is disabled by a permanent fault.  The analysis side of the
library never needs concrete maps (it works with the probability model
of :mod:`repro.faults`); fault maps exist so the validation simulator
can replay the exact situations the analysis claims to bound.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError


class FaultMap:
    """Set of permanently faulty (set, way) frames of one cache.

    The map is immutable after construction; build variations with
    :meth:`with_faults`.
    """

    def __init__(self, geometry: CacheGeometry,
                 faulty_frames: Iterable[tuple[int, int]] = ()) -> None:
        self._geometry = geometry
        frames = set()
        for set_index, way in faulty_frames:
            self._check_frame(set_index, way)
            frames.add((set_index, way))
        self._frames = frozenset(frames)

    def _check_frame(self, set_index: int, way: int) -> None:
        geometry = self._geometry
        if not 0 <= set_index < geometry.sets:
            raise ConfigurationError(
                f"set index {set_index} out of range [0, {geometry.sets})")
        if not 0 <= way < geometry.ways:
            raise ConfigurationError(
                f"way {way} out of range [0, {geometry.ways})")

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    @property
    def faulty_frames(self) -> frozenset[tuple[int, int]]:
        return self._frames

    def is_faulty(self, set_index: int, way: int) -> bool:
        """True if frame (set_index, way) is disabled."""
        self._check_frame(set_index, way)
        return (set_index, way) in self._frames

    def faulty_ways_in_set(self, set_index: int) -> int:
        """Number of disabled frames in one set."""
        if not 0 <= set_index < self._geometry.sets:
            raise ConfigurationError(f"set index {set_index} out of range")
        return sum(1 for (s, _w) in self._frames if s == set_index)

    def working_ways_in_set(self, set_index: int) -> int:
        """Number of usable frames in one set."""
        return self._geometry.ways - self.faulty_ways_in_set(set_index)

    def fault_profile(self) -> tuple[int, ...]:
        """Faulty-way count per set, indexable by set number."""
        return tuple(self.faulty_ways_in_set(s)
                     for s in range(self._geometry.sets))

    def with_faults(self, frames: Iterable[tuple[int, int]]) -> "FaultMap":
        """A new map with additional faulty frames."""
        return FaultMap(self._geometry, set(self._frames) | set(frames))

    @classmethod
    def fault_free(cls, geometry: CacheGeometry) -> "FaultMap":
        """The empty (fault-free) map."""
        return cls(geometry)

    @classmethod
    def whole_set_faulty(cls, geometry: CacheGeometry,
                         set_index: int) -> "FaultMap":
        """Map with every way of ``set_index`` disabled."""
        return cls(geometry,
                   ((set_index, w) for w in range(geometry.ways)))

    @classmethod
    def sample(cls, geometry: CacheGeometry, block_fault_probability: float,
               rng: random.Random, *,
               reliable_ways: int = 0) -> "FaultMap":
        """Draw a random map: each frame fails i.i.d. with ``pbf``.

        ``reliable_ways`` frames per set (ways ``0 .. reliable_ways-1``)
        are hardened and never sampled faulty — this models the RW
        mechanism at the concrete level (faults in the reliable way are
        masked, per the paper's Section III-B1).
        """
        if not 0.0 <= block_fault_probability <= 1.0:
            raise ConfigurationError(
                f"pbf must be in [0, 1], got {block_fault_probability}")
        if not 0 <= reliable_ways <= geometry.ways:
            raise ConfigurationError(
                f"reliable_ways must be in [0, {geometry.ways}]")
        frames = [
            (set_index, way)
            for set_index in range(geometry.sets)
            for way in range(reliable_ways, geometry.ways)
            if rng.random() < block_fault_probability
        ]
        return cls(geometry, frames)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultMap):
            return NotImplemented
        return (self._geometry == other._geometry
                and self._frames == other._frames)

    def __hash__(self) -> int:
        return hash((self._geometry, self._frames))

    def __len__(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        return (f"FaultMap({len(self._frames)} faulty frames over "
                f"{self._geometry.sets}x{self._geometry.ways})")
