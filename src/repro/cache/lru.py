"""Concrete set-associative LRU cache simulator.

This is the ground-truth model that the static analyses must over-
approximate.  It supports reduced per-set capacity (disabled ways) so
the validation harness can replay faulty configurations, matching the
paper's observation that with LRU the *position* of faulty ways in a
set is irrelevant — only their number matters (the LRU stack shrinks).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cache.faultmap import FaultMap
from repro.cache.geometry import CacheGeometry
from repro.errors import SimulationError


class LRUSet:
    """One cache set as an LRU stack of memory-block tags.

    ``capacity`` is the number of *working* ways: a set with faulty
    ways simply has a shorter stack (the paper's fault model).
    A capacity of zero models an entirely faulty set: every lookup
    misses and nothing is retained.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise SimulationError(f"negative set capacity {capacity}")
        self._capacity = capacity
        self._stack: list[int] = []  # index 0 = most recently used

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def contents(self) -> tuple[int, ...]:
        """Blocks from MRU to LRU."""
        return tuple(self._stack)

    def lookup(self, block: int) -> bool:
        """Access ``block``; return True on hit.  Updates LRU order."""
        if self._capacity == 0:
            return False
        try:
            position = self._stack.index(block)
        except ValueError:
            self._stack.insert(0, block)
            del self._stack[self._capacity:]
            return False
        del self._stack[position]
        self._stack.insert(0, block)
        return True

    def contains(self, block: int) -> bool:
        """Non-destructive membership test."""
        return block in self._stack

    def age_of(self, block: int) -> int | None:
        """LRU-stack age (0 = MRU) of ``block``, or ``None`` if absent."""
        try:
            return self._stack.index(block)
        except ValueError:
            return None

    def flush(self) -> None:
        """Empty the set (e.g. boot-time state)."""
        self._stack.clear()


class LRUCache:
    """Whole-cache concrete simulator with optional fault map.

    Statistics (:attr:`hits`, :attr:`misses`) accumulate across
    :meth:`access` calls; :meth:`reset_stats` clears them without
    flushing cache contents.
    """

    def __init__(self, geometry: CacheGeometry,
                 fault_map: FaultMap | None = None) -> None:
        if fault_map is None:
            fault_map = FaultMap.fault_free(geometry)
        if fault_map.geometry != geometry:
            raise SimulationError("fault map geometry mismatch")
        self._geometry = geometry
        self._fault_map = fault_map
        self._sets = [LRUSet(fault_map.working_ways_in_set(s))
                      for s in range(geometry.sets)]
        self.hits = 0
        self.misses = 0

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    @property
    def fault_map(self) -> FaultMap:
        return self._fault_map

    def set_state(self, set_index: int) -> LRUSet:
        """Direct access to one set (read-mostly, for tests)."""
        return self._sets[set_index]

    def access_address(self, address: int) -> bool:
        """Fetch the block containing byte ``address``."""
        return self.access(self._geometry.block_of(address))

    def access(self, block: int) -> bool:
        """Fetch memory block ``block``; returns True on hit."""
        set_index = self._geometry.set_of_block(block)
        hit = self._sets[set_index].lookup(block)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def run_trace(self, blocks: Iterable[int]) -> tuple[int, int]:
        """Access a block trace; return (hits, misses) for the trace."""
        hits = misses = 0
        for block in blocks:
            if self.access(block):
                hits += 1
            else:
                misses += 1
        return hits, misses

    def contains_address(self, address: int) -> bool:
        block = self._geometry.block_of(address)
        return self._sets[self._geometry.set_of_block(block)].contains(block)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all sets and clear statistics."""
        for cache_set in self._sets:
            cache_set.flush()
        self.reset_stats()
