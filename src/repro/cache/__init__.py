"""Instruction-cache model: geometry, concrete LRU simulation, faults.

The paper's architecture is a single-level set-associative instruction
cache with LRU replacement, defined by a number of sets ``S``, ways
``W`` and a block size ``K`` (the paper states K in bits; here we use
bytes and convert where the fault model needs bits).
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.lru import LRUCache, LRUSet
from repro.cache.faultmap import FaultMap

__all__ = ["CacheGeometry", "LRUCache", "LRUSet", "FaultMap"]
