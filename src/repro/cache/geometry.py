"""Cache geometry: the (S, W, K) configuration of the paper.

A geometry maps byte addresses to (memory block, set index, tag).  All
analyses and simulators share one geometry object so that the address
arithmetic is written — and tested — exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import check_positive_int, check_power_of_two, ilog2


@dataclass(frozen=True)
class CacheGeometry:
    """Set-associative cache configuration.

    Parameters
    ----------
    sets:
        Number of sets ``S`` (power of two).
    ways:
        Associativity ``W``.
    block_bytes:
        Cache line size in bytes (power of two).  The paper's ``K`` is
        the line size in *bits*; :attr:`block_bits` exposes that view
        for the fault model of eq. (1).
    """

    sets: int
    ways: int
    block_bytes: int

    def __post_init__(self) -> None:
        check_power_of_two(self.sets, "sets")
        check_positive_int(self.ways, "ways")
        check_power_of_two(self.block_bytes, "block_bytes")

    @classmethod
    def from_size(cls, total_bytes: int, ways: int,
                  block_bytes: int) -> "CacheGeometry":
        """Build a geometry from total capacity, e.g. 1 KB / 4 / 16."""
        check_power_of_two(total_bytes, "total_bytes")
        check_positive_int(ways, "ways")
        check_power_of_two(block_bytes, "block_bytes")
        per_way = total_bytes // ways
        if per_way == 0 or per_way % block_bytes:
            from repro.errors import ConfigurationError
            raise ConfigurationError(
                f"capacity {total_bytes}B not divisible into {ways} ways of "
                f"{block_bytes}B lines")
        return cls(sets=per_way // block_bytes, ways=ways,
                   block_bytes=block_bytes)

    @property
    def total_bytes(self) -> int:
        """Total data capacity in bytes."""
        return self.sets * self.ways * self.block_bytes

    @property
    def block_bits(self) -> int:
        """Line size in bits — the paper's ``K`` in eq. (1)."""
        return self.block_bytes * 8

    @property
    def offset_bits(self) -> int:
        return ilog2(self.block_bytes, "block_bytes")

    @property
    def index_bits(self) -> int:
        return ilog2(self.sets, "sets")

    def block_of(self, address: int) -> int:
        """Memory-block number containing ``address``."""
        return address >> self.offset_bits

    def set_of(self, address: int) -> int:
        """Cache-set index of ``address``."""
        return self.block_of(address) & (self.sets - 1)

    def set_of_block(self, block: int) -> int:
        """Cache-set index of a memory block number."""
        return block & (self.sets - 1)

    def tag_of(self, address: int) -> int:
        """Tag of ``address`` (block number with index bits stripped)."""
        return self.block_of(address) >> self.index_bits

    def block_base_address(self, block: int) -> int:
        """First byte address of a memory block."""
        return block << self.offset_bits

    def __str__(self) -> str:
        return (f"{self.total_bytes}B cache, {self.sets} sets x "
                f"{self.ways} ways x {self.block_bytes}B lines (LRU)")
