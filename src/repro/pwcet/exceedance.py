"""Exceedance curves — the paper's complementary cumulative view.

Figure 3 of the paper plots, for each protection level, the function
``p(x) = P(WCET > x)``: the probability that the (chip-population)
WCET exceeds ``x`` cycles.  The pWCET at a target probability ``p`` is
the smallest ``x`` whose exceedance is at most ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError
from repro.pwcet.distribution import DiscreteDistribution


@dataclass(frozen=True)
class ExceedanceCurve:
    """A right-continuous step function ``P(WCET > value)``.

    ``values`` are WCET candidates in cycles (strictly increasing) and
    ``probabilities[i] = P(WCET > values[i])``; both arrays only keep
    the support points where the probability actually drops.
    """

    values: np.ndarray
    probabilities: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.values) != len(self.probabilities):
            raise DistributionError("values/probabilities length mismatch")
        if len(self.values) == 0:
            raise DistributionError("empty exceedance curve")
        if np.any(np.diff(self.values) <= 0):
            raise DistributionError("values must be strictly increasing")
        if (np.any(self.probabilities < 0)
                or np.any(self.probabilities > 1 + 1e-9)):
            raise DistributionError("probabilities outside [0, 1]")
        if np.any(np.diff(self.probabilities) > 1e-15):
            raise DistributionError("exceedance must be non-increasing")

    @classmethod
    def from_penalty_distribution(cls, penalty_misses: DiscreteDistribution,
                                  wcet_fault_free: int, memory_cycles: int,
                                  label: str = "") -> "ExceedanceCurve":
        """Lift a penalty distribution (in misses) to a cycles curve.

        Each penalty point ``m`` maps to ``wcet_ff + m * memory_cycles``
        cycles; probabilities are the distribution's CCDF restricted to
        the support (plus the origin so the curve always starts at the
        fault-free WCET).
        """
        pmf = penalty_misses.pmf
        ccdf = penalty_misses.ccdf()
        support = np.flatnonzero(pmf)
        if len(support) == 0 or support[0] != 0:
            support = np.concatenate([[0], support])
        values = wcet_fault_free + support.astype(np.int64) * memory_cycles
        probabilities = ccdf[support]
        return cls(values=values, probabilities=probabilities, label=label)

    def pwcet(self, probability: float) -> int:
        """Smallest value whose exceedance is <= ``probability``.

        On a non-increasing curve (the common case: suffix sums of
        non-negative mass) the answer comes from one binary search on
        the reversed tail; a curve carrying the tolerated float wiggle
        (``__post_init__`` admits up-ticks <= 1e-15) falls back to the
        exact linear scan, so both paths return the identical index.
        """
        if not 0.0 < probability < 1.0:
            raise DistributionError(
                f"target probability must be in (0, 1), got {probability}")
        if np.any(np.diff(self.probabilities) > 0.0):
            indices = np.flatnonzero(self.probabilities <= probability)
            count = len(indices)
            first = indices[0] if count else 0
        else:
            # Entries <= probability form a suffix, i.e. a prefix of
            # the reversed tail; side="right" counts all of them.
            count = int(np.searchsorted(self.probabilities[::-1],
                                        probability, side="right"))
            first = len(self.probabilities) - count
        if count == 0:
            raise DistributionError(
                f"curve never reaches exceedance {probability}; "
                "the penalty distribution is truncated")
        return int(self.values[first])

    def exceedance_at(self, value: float) -> float:
        """``P(WCET > value)`` for an arbitrary value."""
        index = int(np.searchsorted(self.values, value, side="right")) - 1
        if index < 0:
            return 1.0
        return float(self.probabilities[index])

    def rows(self) -> list[tuple[int, float]]:
        """(value, exceedance) pairs, e.g. for printing Figure 3 data."""
        return [(int(value), float(probability))
                for value, probability in zip(self.values,
                                              self.probabilities)]

    def __len__(self) -> int:
        return len(self.values)
