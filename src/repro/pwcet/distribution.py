"""Discrete probability distributions over non-negative integers.

The per-set fault-penalty distributions of the paper have at most
``W + 1`` support points (one per possible number of faulty ways);
the total penalty distribution is their convolution across sets
(Figure 1.b).  We keep exact dense PMFs on an integer grid — penalties
are measured in *misses*, so grids stay small — and convolve with
shifted adds, which is exact (no FFT round-off in the 1e-15 tail the
paper's quantiles live in).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import DistributionError

#: Tolerance on total probability mass.
_MASS_TOLERANCE = 1e-9


class DiscreteDistribution:
    """An exact PMF over ``{0, 1, ..., n}`` (values are e.g. miss counts)."""

    __slots__ = ("_pmf", "_ccdf")

    def __init__(self, pmf: np.ndarray | Iterable[float], *,
                 normalized: bool = True) -> None:
        array = np.asarray(pmf, dtype=np.float64)
        if array.ndim != 1 or array.size == 0:
            raise DistributionError("pmf must be a non-empty 1-D array")
        if np.any(array < 0.0) or not np.all(np.isfinite(array)):
            raise DistributionError("pmf entries must be finite and >= 0")
        if normalized:
            mass = float(array.sum())
            if abs(mass - 1.0) > _MASS_TOLERANCE:
                raise DistributionError(
                    f"pmf mass {mass} deviates from 1 by more than "
                    f"{_MASS_TOLERANCE}")
        self._pmf = array
        #: Lazily computed (or batch-seeded) tail cache; see ccdf().
        self._ccdf: np.ndarray | None = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def point_mass(cls, value: int = 0) -> "DiscreteDistribution":
        if value < 0:
            raise DistributionError(f"negative value {value}")
        pmf = np.zeros(value + 1)
        pmf[value] = 1.0
        return cls(pmf)

    @classmethod
    def from_points(cls, points: Mapping[int, float], *,
                    normalized: bool = True) -> "DiscreteDistribution":
        """Build from sparse {value: probability} points."""
        if not points:
            raise DistributionError("no support points")
        top = max(points)
        if min(points) < 0:
            raise DistributionError("negative support value")
        pmf = np.zeros(top + 1)
        # One vectorised scatter.  np.add.at accumulates duplicate
        # indices sequentially in array order, which matches the old
        # Python loop's accumulation order bit for bit (a Mapping's
        # keys are unique, but nothing here needs to rely on that).
        items = list(points.items())
        np.add.at(pmf,
                  np.fromiter((value for value, _ in items),
                              dtype=np.int64, count=len(items)),
                  np.fromiter((probability for _, probability in items),
                              dtype=np.float64, count=len(items)))
        return cls(pmf, normalized=normalized)

    @classmethod
    def _trusted(cls, pmf: np.ndarray,
                 ccdf: np.ndarray | None = None) -> "DiscreteDistribution":
        """Wrap arrays that are valid by construction, skipping checks.

        Reserved for the batched distribution kernel, whose outputs are
        sums and products of already-validated PMFs (non-negative and
        finite by closure) — re-validating every row would re-read the
        whole block once per check.
        """
        self = cls.__new__(cls)
        self._pmf = pmf
        self._ccdf = ccdf
        return self

    # -- basic accessors --------------------------------------------------
    @property
    def pmf(self) -> np.ndarray:
        """The PMF array (do not mutate)."""
        return self._pmf

    @property
    def support_max(self) -> int:
        return len(self._pmf) - 1

    @property
    def total_mass(self) -> float:
        return float(self._pmf.sum())

    def probability_of(self, value: int) -> float:
        if not 0 <= value <= self.support_max:
            return 0.0
        return float(self._pmf[value])

    def mean(self) -> float:
        return float(np.dot(self._pmf, np.arange(len(self._pmf))))

    # -- operations -------------------------------------------------------
    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of the sum of two independent variables.

        Sparse-aware: when one operand has few non-zero points the
        convolution is done with shifted adds (exact and fast for the
        per-set penalty distributions); otherwise ``np.convolve``.
        """
        left, right = self._pmf, other._pmf
        # Use the sparser operand as the shift driver.
        left_nz = np.flatnonzero(left)
        right_nz = np.flatnonzero(right)
        if len(right_nz) < len(left_nz):
            left, right = right, left
            left_nz, right_nz = right_nz, left_nz
        if len(left_nz) <= 64:
            result = np.zeros(len(left) + len(right) - 1)
            for value in left_nz:
                result[value:value + len(right)] += left[value] * right
        else:
            result = np.convolve(left, right)
        return DiscreteDistribution(result, normalized=False)

    @staticmethod
    def convolve_all(distributions: Iterable["DiscreteDistribution"]
                     ) -> "DiscreteDistribution":
        """Convolution of many independent distributions.

        Sets are independent (paper §II-C), so the total fault penalty
        is the convolution of the per-set penalty distributions.

        Reduces in size order (smallest support first, off a heap)
        instead of left-folding in arrival order: folding the small
        operands early keeps the accumulator short for as long as
        possible, which cuts the total shifted-add work (each fold
        costs ``nnz(operand) * len(accumulator)``) by 1.5-3x on the
        suite's per-set penalty PMFs.

        The accumulator is deliberately *not* pushed back into the
        heap: a balanced pairwise reduction would eventually convolve
        two large dense halves — O(n*m) without FFT, and FFT round-off
        is excluded here because the paper's quantiles live in the
        1e-15 tail — whereas size-ordered folding keeps one operand a
        sparse per-set PMF on every step.
        """
        heap: list[tuple[int, int, DiscreteDistribution]] = []
        for order, distribution in enumerate(distributions):
            heap.append((len(distribution._pmf), order, distribution))
        if not heap:
            return DiscreteDistribution.point_mass(0)
        heapq.heapify(heap)
        _, _, result = heapq.heappop(heap)
        while heap:
            _, _, smallest = heapq.heappop(heap)
            result = result.convolve(smallest)
        return result

    def scale_values(self, factor: int) -> "DiscreteDistribution":
        """Distribution of ``factor * X`` (e.g. misses -> cycles)."""
        if factor < 1:
            raise DistributionError(f"factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        pmf = np.zeros(self.support_max * factor + 1)
        pmf[::factor] = self._pmf
        return DiscreteDistribution(pmf, normalized=False)

    def shift(self, offset: int) -> "DiscreteDistribution":
        """Distribution of ``X + offset``."""
        if offset < 0:
            raise DistributionError(f"offset must be >= 0, got {offset}")
        if offset == 0:
            return self
        pmf = np.concatenate([np.zeros(offset), self._pmf])
        return DiscreteDistribution(pmf, normalized=False)

    # -- tail queries -------------------------------------------------------
    def ccdf(self) -> np.ndarray:
        """``ccdf[v] = P(X > v)``, computed tail-first for accuracy.

        Summing from the largest value (smallest probabilities in the
        fault setting) avoids float cancellation in the deep tail,
        where the paper's 1e-15 exceedance threshold lives.  Computed
        once and cached (do not mutate the returned array); the
        batched distribution kernel seeds the cache for a whole pfail
        batch from one 2-D suffix-sum via :meth:`seed_ccdf`.
        """
        if self._ccdf is None:
            suffix = np.cumsum(self._pmf[::-1])[::-1]  # P(X >= v)
            ccdf = np.empty_like(suffix)
            ccdf[:-1] = suffix[1:]
            ccdf[-1] = 0.0
            self._ccdf = ccdf
        return self._ccdf

    def seed_ccdf(self, ccdf: np.ndarray) -> None:
        """Pre-seed the tail cache (batched-kernel fast path).

        The caller guarantees ``ccdf`` is bitwise what :meth:`ccdf`
        would compute — for the batched kernel that holds because
        ``np.cumsum`` accumulates a 2-D axis row-sequentially, exactly
        like the 1-D computation.
        """
        if ccdf.shape != self._pmf.shape:
            raise DistributionError(
                f"ccdf length {ccdf.shape} does not match the pmf's "
                f"{self._pmf.shape}")
        self._ccdf = ccdf

    def quantile_exceedance(self, probability: float) -> int:
        """Smallest ``v`` with ``P(X > v) <= probability``.

        This is the paper's pWCET reading: the value the random
        variable exceeds with probability at most ``p``.  The ccdf is
        exactly non-increasing (suffix sums of non-negative mass), so
        the smallest qualifying value comes from one binary search on
        the reversed tail instead of a full scan.
        """
        if not 0.0 < probability < 1.0:
            raise DistributionError(
                f"exceedance probability must be in (0, 1), "
                f"got {probability}")
        ccdf = self.ccdf()
        # Entries <= probability form a suffix of ccdf, i.e. a prefix
        # of the reversed tail; side="right" counts all of them.
        count = int(np.searchsorted(ccdf[::-1], probability,
                                    side="right"))
        if count == 0:
            # Unreachable by construction (ccdf[support_max] == 0.0
            # <= p); kept as the historical guard against a corrupted
            # tail.
            return self.support_max
        return len(ccdf) - count

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        if len(self._pmf) != len(other._pmf):
            return False
        return bool(np.array_equal(self._pmf, other._pmf))

    def __repr__(self) -> str:
        return (f"DiscreteDistribution(support=[0, {self.support_max}], "
                f"mass={self.total_mass:.12g})")
