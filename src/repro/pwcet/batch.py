"""Batched multi-pfail penalty-distribution kernel.

The per-set penalty *points* of the paper's Figure 1.b construction
are a pure function of (FMM, mechanism): ``FMM[s][f]`` never depends
on the cell failure probability — only the eq. 2 / eq. 3 fault-pmf
*weights* do.  A sweep along the pfail axis therefore re-runs the
whole convolution pipeline on identical penalty structure, changing
nothing but a handful of per-fault-count probabilities.

This module exploits that: it builds the penalty structure **once**
per (FMM, mechanism) as a numpy ``(sets × fault-counts)`` matrix,
scatters every pfail row's fault-pmf weights into stacked 2-D per-set
PMF blocks (one row per pfail), and folds the blocks across sets with
row-parallel shifted adds — one pass over the set axis serves every
pfail in the grid.  The final fold result is a single ``(rows ×
support)`` matrix from which all rows' ccdfs come out of **one**
suffix-sum, pre-seeding :meth:`DiscreteDistribution.ccdf` so every
downstream quantile read (`pwcet`, exceedance curves, Pareto points)
is a binary search, not a scan.

Bit-identity discipline
-----------------------

The default engine is asserted byte-identical to the scalar oracle
(:func:`penalty_distribution_scalar`, the historical per-cell loop).
That holds *by construction*, not by tolerance:

* the per-set scatter adds weights in fault-count order — the exact
  accumulation order of the oracle's ``points`` dict;
* blocks fold in the oracle's heap order (support width, then
  insertion order), which is pfail-independent because widths are;
* the shifted add walks the *structural* non-zero columns of the
  driver block in ascending order; rows where a structural column is
  zero add ``0.0 * other`` — a bitwise no-op on the non-negative
  accumulator — so each row sees exactly the adds the oracle issues;
* the driver/strategy choice of :meth:`DiscreteDistribution.convolve`
  (sparser operand drives; dense×dense goes to ``np.convolve``) is
  evaluated per row, and any fold where the rows disagree drops to a
  per-row replica of the scalar arithmetic.  Weight underflow — the
  only way rows can diverge — thus degrades performance, never bits.

Penalty values are *miss counts*, so supports are wide (hundreds of
thousands of cycles on the suite) while each set block holds at most
``ways + 1`` points; the oracle's dense arrays are often > 95 % exact
zeros.  Blocks therefore stay in a sparse (support, values) form while
sparse, folding by pairwise support sums in driver-major order — per
output value that is the identical float addition sequence as the
dense shifted add, minus additions of exact ``0.0`` (bitwise no-ops on
non-negative accumulators).  A block flips to the dense representation
once its support crosses :data:`_DENSE_FRACTION` of its width, and
every value is bitwise the same in either form, so the switch point
affects speed only, never results.

Engine selection mirrors the analysis engine
(``REPRO_ANALYSIS_ENGINE``): ``REPRO_DISTRIBUTION_ENGINE`` picks
``batched`` (default), ``scalar`` (the oracle) or ``power`` — an
opt-in grouping strategy that detects identical per-set penalty rows
(common: most sets of a benchmark share one FMM pattern) and folds
each group by multiplicity-aware repeated squaring instead of ``k``
linear folds.  Power grouping reorders float additions, so it is
validated within tolerance, not bit-for-bit.
"""

from __future__ import annotations

import heapq
import os

import numpy as np

from repro.errors import DistributionError
from repro.pwcet.distribution import DiscreteDistribution

#: Environment variable selecting the distribution engine.
ENGINE_ENV = "REPRO_DISTRIBUTION_ENGINE"
_ENGINES = ("batched", "scalar", "power")

#: Shift-driver sparsity bound — mirrors the oracle's
#: :meth:`DiscreteDistribution.convolve` exactly; the two constants
#: must move together or the default engine loses bit-identity.
_SHIFT_DRIVER_MAX_NNZ = 64


def selected_engine(override: str | None = None) -> str:
    """The active engine name (override > environment > default)."""
    if override is None:
        # Empty/whitespace means unset (REPRO_CACHE convention).
        override = (os.environ.get(ENGINE_ENV) or "").strip().lower() \
            or "batched"
    if override not in _ENGINES:
        raise DistributionError(
            f"unknown distribution engine {override!r}; expected one "
            f"of {_ENGINES}")
    return override


def penalty_distribution_scalar(fmm, mechanism, fault_model,
                                sets: int) -> DiscreteDistribution:
    """The scalar oracle: one cell, one pfail, the historical loop.

    Kept verbatim as the property-tested reference the batched engine
    is asserted bit-identical against (``REPRO_DISTRIBUTION_ENGINE=
    scalar`` routes every cell through here).
    """
    pmf = mechanism.fault_pmf(fault_model)
    per_set = []
    for set_index in range(sets):
        points: dict[int, float] = {}
        for fault_count, probability in pmf.items():
            penalty = fmm.misses(set_index, fault_count)
            points[penalty] = points.get(penalty, 0.0) + probability
        if set(points) == {0}:
            continue  # identity of convolution
        per_set.append(DiscreteDistribution.from_points(points))
    return DiscreteDistribution.convolve_all(per_set)


def penalty_distributions(fmm, mechanism, fault_models, sets: int, *,
                          engine: str | None = None
                          ) -> list[DiscreteDistribution]:
    """Whole-cache penalty distributions for a batch of pfail rows.

    One :class:`DiscreteDistribution` per fault model, in order —
    bit-identical to calling :func:`penalty_distribution_scalar` per
    row (default engine), at the cost of roughly one row.  The penalty
    matrix is built once; only the stacked fault-pmf weights vary
    along the batch axis.
    """
    models = tuple(fault_models)
    if not models:
        return []
    engine = selected_engine(engine)
    if engine == "scalar":
        return [penalty_distribution_scalar(fmm, mechanism, model, sets)
                for model in models]
    pmfs = [mechanism.fault_pmf(model) for model in models]
    fault_counts = tuple(pmfs[0])
    if any(tuple(pmf) != fault_counts for pmf in pmfs[1:]) \
            or not fault_counts \
            or min(fault_counts) < 0 \
            or max(fault_counts) > fmm.max_fault_count \
            or sets > len(fmm.rows):
        # Mechanisms emit one fault-count sequence per geometry; a
        # custom mechanism that varies it per pfail (or exceeds the
        # FMM columns) falls back to the oracle row by row, which
        # also reproduces its out-of-range error behaviour.
        return [penalty_distribution_scalar(fmm, mechanism, model, sets)
                for model in models]
    # (rows × fault counts) weights; (sets × fault counts) penalties.
    weights = np.array([[pmf[count] for count in fault_counts]
                        for pmf in pmfs], dtype=np.float64)
    penalties = np.asarray(fmm.rows,
                           dtype=np.int64)[:sets, list(fault_counts)]
    block = (_fold_power(penalties, weights) if engine == "power"
             else _fold_structure(penalties, weights))
    if block is None:  # every set all-zero: identity of convolution
        return [DiscreteDistribution.point_mass(0) for _ in models]
    return _wrap_rows(block)


# -- hybrid sparse/dense block representation --------------------------
#: A sparse block densifies once ``support * _DENSE_FRACTION`` reaches
#: its width — below that, folding by pairwise support sums beats the
#: dense shifted add's O(width) column traffic.  A dense fold result
#: drops back to sparse under the same boundary (support density can
#: *fall* as wide sets join: collisions saturate the support while the
#: width keeps growing additively), so every fold runs the algorithm
#: matching its operands' true density.  Purely performance dials:
#: sparse and dense folds produce bitwise-identical values.
_DENSE_FRACTION = 4
_SPARSE_FRACTION = 4


class _Block:
    """Stacked per-set PMF rows, sparse or dense.

    ``vals`` is ``(rows × len(idx))`` against the sorted structural
    support ``idx`` while sparse, or the full ``(rows × width)`` PMF
    matrix once dense (``idx is None``).  ``width`` is always the dense
    support width — the oracle's ``len(pmf)`` heap key.
    """

    __slots__ = ("width", "idx", "vals")

    def __init__(self, width: int, idx: np.ndarray | None,
                 vals: np.ndarray) -> None:
        self.width = width
        self.idx = idx
        self.vals = vals

    def dense(self) -> np.ndarray:
        """The full ``(rows × width)`` PMF matrix of this block."""
        if self.idx is None:
            return self.vals
        out = np.zeros((self.vals.shape[0], self.width))
        out[:, self.idx] = self.vals
        return out


def _maybe_densify(block: _Block) -> _Block:
    if block.idx is not None and \
            len(block.idx) * _DENSE_FRACTION >= block.width:
        return _Block(block.width, None, block.dense())
    return block


# -- per-set scatter and fold ------------------------------------------
def _scatter(penalty_row: np.ndarray, weights: np.ndarray) -> _Block:
    """One set's stacked PMF block: ``pmf[r, penalty] += w[r, f]``.

    Support columns accumulate in fault-count order — the oracle's
    ``points`` dict insertion/accumulation order — so each cell's
    value is the identical float sum.
    """
    idx = np.unique(penalty_row)
    vals = np.zeros((weights.shape[0], len(idx)))
    positions = np.searchsorted(idx, penalty_row)
    for fault_index, position in enumerate(positions):
        vals[:, position] += weights[:, fault_index]
    return _maybe_densify(
        _Block(int(penalty_row.max()) + 1, idx, vals))


def _fold_order(widths) -> list[int]:
    """Set-fold order: the oracle's heap (width, insertion order)."""
    heap = [(width, order) for order, width in enumerate(widths)]
    heapq.heapify(heap)
    return [heapq.heappop(heap)[1] for _ in range(len(heap))]


def _fold_structure(penalties: np.ndarray, weights: np.ndarray
                    ) -> _Block | None:
    """Scatter + heap-ordered fold of every non-trivial set.

    Returns the final folded block, or ``None`` when every set's
    penalties are all zero.
    """
    live = np.flatnonzero(penalties.max(axis=1) > 0)
    if len(live) == 0:
        return None
    blocks = [_scatter(penalties[set_index], weights)
              for set_index in live]
    order = _fold_order(block.width for block in blocks)
    result = blocks[order[0]]
    for position in order[1:]:
        result = _fold_any(result, blocks[position])
    return result


def _fold_any(left: _Block, right: _Block) -> _Block:
    """Fold two blocks, staying sparse while both operands are.

    The sparse fast path declines (returns through the dense route)
    whenever the oracle's per-row driver/strategy choice is not
    uniformly "sparse driver, shifted adds" — the proven dense
    :func:`_fold` then arbitrates per row, including its ``np.convolve``
    and mixed-row fallbacks.
    """
    width = left.width + right.width - 1
    if left.idx is not None and right.idx is not None:
        folded = _fold_sparse(left, right, width)
        if folded is not None:
            if folded.idx is not None:
                return _maybe_densify(folded)
            return _maybe_sparsify(folded)
    return _maybe_sparsify(
        _Block(width, None, _fold(left.dense(), right.dense())))


def _maybe_sparsify(block: _Block) -> _Block:
    """Drop a dense fold result back to sparse when its support
    collapsed (heavy collisions / wide sets joining)."""
    support = np.flatnonzero((block.vals != 0.0).any(axis=0))
    if len(support) * _SPARSE_FRACTION < block.width:
        return _Block(block.width, support,
                      np.ascontiguousarray(block.vals[:, support]))
    return block


def _fold_sparse(left: _Block, right: _Block, width: int
                 ) -> _Block | None:
    """Row-parallel sparse convolution by pairwise support sums.

    Mirrors the dense shifted add exactly: the (per-row) sparser
    operand drives; driver support is walked in ascending order, so
    every output value accumulates its terms in the identical
    sequence.  Terms the dense path adds but this one skips are exact
    ``0.0`` products — bitwise no-ops on non-negative accumulators.
    """
    left_nnz = np.count_nonzero(left.vals, axis=1)
    right_nnz = np.count_nonzero(right.vals, axis=1)
    swap = right_nnz < left_nnz
    if swap.all():
        driver, other, driver_nnz = right, left, right_nnz
    elif not swap.any():
        driver, other, driver_nnz = left, right, left_nnz
    else:
        return None  # rows disagree on the driver: dense arbitration
    if not (driver_nnz <= _SHIFT_DRIVER_MAX_NNZ).all():
        return None  # dense-driver rows: np.convolve territory
    shifted = driver.idx[:, None] + other.idx[None, :]
    if shifted.size * _DENSE_FRACTION >= width:
        # The output can only be dense-ish: merge the pairwise terms
        # straight into the dense grid with one bincount per row.
        # bincount adds its weights sequentially in input order, and
        # the raveled (driver × other) term matrix is driver-major —
        # exactly the dense shifted add's per-value sequence.
        flat = shifted.ravel()
        products = (driver.vals[:, :, None]
                    * other.vals[:, None, :]).reshape(len(left.vals), -1)
        return _Block(width, None, np.stack(
            [np.bincount(flat, weights=products[row], minlength=width)
             for row in range(len(products))]))
    # Sparse output: its support is the union of the driver-shifted
    # copies of the other support.  Each copy is already sorted, so
    # the concatenation is a handful of sorted runs — timsort merges
    # them in near-linear time.
    idx = np.sort(shifted.ravel(), kind="stable")
    if len(idx) > 1:
        idx = idx[np.concatenate(([True], idx[1:] != idx[:-1]))]
    positions = np.searchsorted(idx, shifted)
    # One product tensor; scatter in ascending driver order — within a
    # driver column output positions are distinct, so accumulation per
    # output value runs in exactly the dense shifted-add sequence.
    products = driver.vals[:, :, None] * other.vals[:, None, :]
    vals = np.zeros((left.vals.shape[0], len(idx)))
    for column in range(len(driver.idx)):
        vals[:, positions[column]] += products[:, column, :]
    keep = (vals != 0.0).any(axis=0)
    if not keep.all():  # product underflow: drop structural zeros
        idx = idx[keep]
        vals = np.ascontiguousarray(vals[:, keep])
    return _Block(width, idx, vals)


def _fold(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-parallel convolution of two stacked PMF blocks.

    Replicates :meth:`DiscreteDistribution.convolve` per row: the
    sparser operand drives the shifted adds; a dense driver goes to
    ``np.convolve``.  Uniform rows take the 2-D fast path; mixed rows
    (possible only under weight underflow) replicate the scalar
    arithmetic row by row so bit-identity survives unconditionally.
    """
    rows = left.shape[0]
    left_nnz = np.count_nonzero(left, axis=1)
    right_nnz = np.count_nonzero(right, axis=1)
    swap = right_nnz < left_nnz
    if swap.all():
        driver, other, driver_nnz = right, left, right_nnz
    elif not swap.any():
        driver, other, driver_nnz = left, right, left_nnz
    else:
        return _fold_rows(left, right)
    if (driver_nnz <= _SHIFT_DRIVER_MAX_NNZ).all():
        width = other.shape[1]
        out = np.zeros((rows, left.shape[1] + right.shape[1] - 1))
        # Structural non-zero columns of the driver, ascending — rows
        # where a column underflowed to 0.0 add 0.0 * other, a bitwise
        # no-op on the non-negative accumulator.
        for value in np.flatnonzero((driver != 0.0).any(axis=0)):
            out[:, value:value + width] += driver[:, value:value + 1] \
                * other
        return out
    if (driver_nnz > _SHIFT_DRIVER_MAX_NNZ).all():
        return np.stack([np.convolve(driver[row], other[row])
                         for row in range(rows)])
    return _fold_rows(left, right)


def _fold_rows(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Per-row scalar replica for folds whose rows disagree on
    strategy — the unconditional bit-identity fallback."""
    out = np.empty((left.shape[0], left.shape[1] + right.shape[1] - 1))
    for row in range(left.shape[0]):
        out[row] = _convolve_pair(left[row], right[row])
    return out


def _convolve_pair(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """The oracle's convolution arithmetic on raw 1-D PMF arrays."""
    left_nz = np.flatnonzero(left)
    right_nz = np.flatnonzero(right)
    if len(right_nz) < len(left_nz):
        left, right = right, left
        left_nz = right_nz
    if len(left_nz) <= _SHIFT_DRIVER_MAX_NNZ:
        result = np.zeros(len(left) + len(right) - 1)
        for value in left_nz:
            result[value:value + len(right)] += left[value] * right
        return result
    return np.convolve(left, right)


# -- power grouping (opt-in, within-tolerance) -------------------------
def _fold_power(penalties: np.ndarray, weights: np.ndarray
                ) -> _Block | None:
    """Fold identical per-set penalty rows by repeated squaring.

    Most benchmarks map many cache sets onto a handful of distinct FMM
    patterns; a group of ``k`` identical sets contributes the ``k``-th
    convolution power of one block, computed in ``O(log k)`` folds
    instead of ``k``.  Squaring reassociates the float sums, so this
    engine is validated within tolerance against the oracle — opt in
    via ``REPRO_DISTRIBUTION_ENGINE=power``.
    """
    groups: dict[bytes, tuple[_Block, int]] = {}
    live = 0
    for penalty_row in penalties:
        if penalty_row.max() <= 0:
            continue
        live += 1
        signature = penalty_row.tobytes()
        if signature in groups:
            block, multiplicity = groups[signature]
            groups[signature] = (block, multiplicity + 1)
        else:
            groups[signature] = (_scatter(penalty_row, weights), 1)
    if not live:
        return None
    powered = [_power(block, multiplicity)
               for block, multiplicity in groups.values()]
    order = _fold_order(block.width for block in powered)
    result = powered[order[0]]
    for position in order[1:]:
        result = _fold_any(result, powered[position])
    return result


def _power(block: _Block, exponent: int) -> _Block:
    """``exponent``-fold self-convolution by binary exponentiation."""
    result: _Block | None = None
    base = block
    while exponent:
        if exponent & 1:
            result = base if result is None else _fold_any(result, base)
        exponent >>= 1
        if exponent:
            base = _fold_any(base, base)
    return result


# -- batched tail reads ------------------------------------------------
def batched_ccdf(block: np.ndarray) -> np.ndarray:
    """Row-wise ``ccdf[r, v] = P(X_r > v)`` from one 2-D suffix-sum.

    Tail-first summation per row, exactly like
    :meth:`DiscreteDistribution.ccdf` — ``np.cumsum`` accumulates
    sequentially along the axis, so each row of the result is bitwise
    the 1-D computation.
    """
    suffix = np.cumsum(block[:, ::-1], axis=1)[:, ::-1]
    ccdf = np.empty_like(block)
    ccdf[:, :-1] = suffix[:, 1:]
    ccdf[:, -1] = 0.0
    return ccdf


def _wrap_rows(block: _Block) -> list[DiscreteDistribution]:
    """Final PMF block → per-row distributions with pre-seeded ccdfs.

    Every row shares the support width (it is a function of the
    pfail-independent penalty structure), so all ccdfs come out of one
    suffix-sum; each distribution's lazy ccdf cache is seeded with its
    row — downstream ``quantile_exceedance`` / exceedance-curve reads
    never recompute the tail.

    A sparse final block computes the suffix-sum over the support only
    and expands it to the dense ccdf with one ``np.repeat`` — between
    support points the dense tail-first cumsum adds exact ``0.0``,
    so the piecewise-constant expansion is bitwise the same values.
    """
    rows = block.vals.shape[0]
    if block.idx is None:
        dense = block.vals
        ccdf = batched_ccdf(dense)
    else:
        idx, vals = block.idx, block.vals
        dense = np.zeros((rows, block.width))
        dense[:, idx] = vals
        tails = np.zeros((rows, len(idx) + 1))
        tails[:, :-1] = np.cumsum(vals[:, ::-1], axis=1)[:, ::-1]
        lengths = np.empty(len(idx) + 1, dtype=np.int64)
        lengths[0] = idx[0]
        lengths[1:-1] = np.diff(idx)
        lengths[-1] = block.width - idx[-1]
        ccdf = np.repeat(tails, lengths, axis=1)
    return [DiscreteDistribution._trusted(dense[row], ccdf[row])
            for row in range(rows)]
