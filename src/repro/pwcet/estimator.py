"""End-to-end probabilistic WCET estimation.

:class:`PWCETEstimator` glues the whole pipeline together for one
program and one hardware configuration:

1. static cache analysis and fault-free IPET WCET (§II-B);
2. fault miss map per reliability mechanism (§II-C, §III-B);
3. per-set penalty distributions (values ``FMM[s][f]``, probabilities
   eq. 2 or eq. 3) convolved across sets (Figure 1.b);
4. pWCET = fault-free WCET + memory latency * penalty quantile at the
   target exceedance probability (the paper uses 1e-15).

All intermediate artefacts are memoised: the estimator runs the cache
analysis once per associativity and builds a single flow polytope that
every ILP (WCET and all FMM entries) reuses.  Solved objectives also
persist across runs through the content-addressed
:class:`~repro.solve.store.SolveStore` (``REPRO_CACHE``,
``EstimatorConfig(cache=...)``): a warm rerun of the same estimation
performs zero backend ILP solves.

Execution goes through the unified pipeline
(:mod:`repro.pipeline`): each estimation batch is a typed-artifact DAG
(cfg → classification → {WCET, FMM per mechanism} → distribution →
estimate) run by a :class:`~repro.pipeline.scheduler.PipelineScheduler`
whose pool also serves the planner's batched ILP solves — with
``workers > 1`` there is no private pool and no phase barrier between
the classification fixpoints and the solve batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry
from repro.cfg import CFG
from repro.errors import EstimationError
from repro.faults import FaultProbabilityModel
from repro.fmm import FaultMissMap, compute_fault_miss_map
from repro.ipet import FlowModel, TimingModel, compute_wcet
from repro.minic import CompiledProgram
from repro.pipeline.artifacts import (DistributionArtifact, FmmArtifact,
                                      SolveArtifact)
from repro.pipeline.scheduler import PipelineScheduler
from repro.pwcet.batch import penalty_distributions
from repro.pwcet.distribution import DiscreteDistribution
from repro.pwcet.exceedance import ExceedanceCurve
from repro.reliability import ReliabilityMechanism, mechanism_by_name
from repro.solve.store import SolveStore, store_context
from repro.util import check_probability

#: Exceedance probability used throughout the paper's evaluation
#: (1e-15 per task activation, aerospace commercial level).
TARGET_EXCEEDANCE = 1e-15


@dataclass(frozen=True)
class EstimatorConfig:
    """Hardware-side parameters of an estimation run.

    Defaults are the paper's experimental setup (§IV-A): 1 KB 4-way
    16 B-line LRU instruction cache, 1-cycle cache / 100-cycle memory
    latency, ``pfail = 1e-4``.
    """

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry.from_size(1024, 4, 16))
    timing: TimingModel = field(default_factory=TimingModel)
    pfail: float = 1e-4
    #: Solve LP relaxations instead of ILPs (sound, looser, faster).
    relaxed: bool = False
    #: Process-pool width for batched ILP solving (1 = in-process).
    #: Execution policy, not a hardware parameter: results are
    #: identical for any width, so it is excluded from equality (and
    #: hence from the experiment runner's memoisation key).
    workers: int = field(default=1, compare=False)
    #: Persistent solve-cache selector: ``None`` defers to the
    #: ``REPRO_CACHE`` environment variable, ``"off"`` disables
    #: persistence, anything else is a store directory.  Execution
    #: policy like ``workers``: cached values are bit-identical to
    #: fresh solves, so the field is excluded from equality.
    cache: str | None = field(default=None, compare=False)

    def fault_model(self) -> FaultProbabilityModel:
        return FaultProbabilityModel(geometry=self.geometry,
                                     pfail=self.pfail)


def penalty_distribution(fmm: FaultMissMap,
                         mechanism: ReliabilityMechanism,
                         fault_model: FaultProbabilityModel,
                         sets: int) -> DiscreteDistribution:
    """Whole-cache fault penalty distribution, in misses.

    Pure function of (FMM, mechanism, fault model): per-set penalty
    points weighted by the mechanism's fault pmf (eq. 2 / eq. 3),
    convolved across sets (Figure 1.b).  Module-level so the cell
    stage of the pipeline (:func:`repro.pipeline.stages.cell_stage`)
    and :meth:`PWCETEstimator.penalty_distribution` share one
    definition — bit-identity between the two schedules is by
    construction, not by parallel maintenance.

    Dispatches through the distribution engine selected by
    ``REPRO_DISTRIBUTION_ENGINE`` (:mod:`repro.pwcet.batch`): the
    default batched kernel as a one-row batch, or the scalar oracle
    :func:`~repro.pwcet.batch.penalty_distribution_scalar` — the two
    are property-tested bit-identical, so the engine choice can never
    change a result.
    """
    return penalty_distributions(fmm, mechanism, (fault_model,), sets)[0]


@dataclass(frozen=True)
class PWCETEstimate:
    """Everything known about one (program, mechanism) estimation."""

    program_name: str
    mechanism_name: str
    wcet_fault_free: int
    #: Fault-penalty distribution in *misses*.
    penalty_misses: DiscreteDistribution
    timing: TimingModel
    fmm: FaultMissMap = field(repr=False)
    #: Probability mass excluded by the analysis' assumptions (0 for
    #: the paper's mechanisms; > 0 for refined analyses like ``srb+``).
    exceedance_correction: float = 0.0

    def pwcet(self, probability: float = TARGET_EXCEEDANCE) -> int:
        """pWCET in cycles at the given exceedance probability."""
        check_probability(probability, "probability", allow_zero=False,
                          allow_one=False)
        effective = probability - self.exceedance_correction
        if effective <= 0.0:
            raise EstimationError(
                f"target probability {probability:g} is below the "
                f"analysis' excluded mass "
                f"{self.exceedance_correction:g}; the "
                f"{self.mechanism_name!r} analysis cannot certify this "
                "level — use the baseline 'srb' mechanism instead")
        quantile = self.penalty_misses.quantile_exceedance(effective)
        return self.wcet_fault_free + quantile * self.timing.memory_cycles

    def exceedance_curve(self) -> ExceedanceCurve:
        """The Figure 3 curve for this estimate."""
        curve = ExceedanceCurve.from_penalty_distribution(
            self.penalty_misses, self.wcet_fault_free,
            self.timing.memory_cycles,
            label=f"{self.program_name}/{self.mechanism_name}")
        if self.exceedance_correction == 0.0:
            return curve
        lifted = np.minimum(
            curve.probabilities + self.exceedance_correction, 1.0)
        return ExceedanceCurve(values=curve.values, probabilities=lifted,
                               label=curve.label)

    def penalty_quantile_misses(self,
                                probability: float = TARGET_EXCEEDANCE
                                ) -> int:
        return self.penalty_misses.quantile_exceedance(probability)


class PWCETEstimator:
    """Memoising pipeline driver for one program + configuration."""

    def __init__(self, program: CompiledProgram | CFG,
                 config: EstimatorConfig | None = None,
                 name: str | None = None, *,
                 scheduler: PipelineScheduler | None = None,
                 analysis: CacheAnalysis | None = None) -> None:
        if config is None:
            config = EstimatorConfig()
        cfg = program.cfg if isinstance(program, CompiledProgram) else program
        self._cfg = cfg
        self._config = config
        self._name = name if name is not None else cfg.name
        if analysis is not None:
            # An injected analysis (the pipeline's inline classify
            # stage handing its work over) must describe exactly this
            # estimation context.
            if analysis.cfg is not cfg \
                    or analysis.geometry != config.geometry:
                raise EstimationError(
                    "injected analysis belongs to a different "
                    "(CFG, geometry) than this estimator's")
            self._analysis = analysis
        else:
            #: The cache selector is shared with the solve store: one
            #: knob (``cache=`` / ``REPRO_CACHE``) controls both
            #: the classification store and the ILP store.
            self._analysis = CacheAnalysis(cfg, config.geometry,
                                           cache=config.cache)
        self._flow_model = FlowModel(cfg, self._analysis.forest)
        #: One scheduler per estimator (or an injected shared one):
        #: estimation batches run as artifact DAGs on it, and its pool
        #: doubles as the planner's solve executor — classification
        #: stages and ILP batches share one set of workers.
        self._scheduler = (scheduler if scheduler is not None
                           else PipelineScheduler(workers=config.workers))
        #: One planner per estimator: WCET and every mechanism's FMM
        #: dedup against the same canonical-objective cache.
        self._planner = self._flow_model.planner
        self._planner.workers = config.workers
        self._planner.executor = self._scheduler
        #: Cross-run persistence: already-solved objectives of this
        #: (program, geometry, timing) context are answered from the
        #: disk store instead of the ILP backend.
        self._store = SolveStore.resolve(config.cache)
        if self._store is not None:
            self._planner.attach_store(
                self._store,
                store_context(cfg.digest(), config.geometry, config.timing))
        self._fault_model = config.fault_model()
        self._wcet_fault_free: int | None = None
        self._fmm_cache: dict[str, FaultMissMap] = {}
        self._estimates: dict[str, PWCETEstimate] = {}

    @property
    def config(self) -> EstimatorConfig:
        return self._config

    @property
    def analysis(self) -> CacheAnalysis:
        return self._analysis

    @property
    def fault_model(self) -> FaultProbabilityModel:
        return self._fault_model

    @property
    def name(self) -> str:
        return self._name

    @property
    def solver_stats(self):
        """Planner counters (solved/pruned/deduped) for this estimator."""
        return self._planner.stats

    @property
    def analysis_stats(self):
        """Cache-analysis counters (fixpoints run, store traffic)."""
        return self._analysis.stats

    def stats_summary(self) -> dict[str, float]:
        """Solver and analysis counters merged into one flat dict.

        This is what suite/sweep drivers aggregate: together the two
        families prove the warm-run property end to end (zero backend
        ILPs *and* zero abstract-interpretation fixpoints).  The
        ``fault_pmf_*`` pair snapshots the process-wide fault-pmf memo
        (:func:`repro.reliability.mechanism.fault_pmf_cache_stats`) —
        cumulative cache diagnostics, not per-run work, so counter
        merges skip them (:func:`repro.pipeline.stages
        ._merged_counters`, :meth:`~repro.pipeline.scheduler
        .PipelineStats.merge_counters`).  The ``*_corrupt_skipped``
        triple snapshots each persistent store's silent-repair count
        (shard lines dropped as torn/corrupt and recomputed) — same
        handle-cumulative scope, same merge-skip treatment — so store
        repair is observable instead of silent.
        """
        from repro.pipeline.cellstore import CellStore
        from repro.reliability.mechanism import fault_pmf_cache_stats

        pmf_stats = fault_pmf_cache_stats()
        classify_store = self._analysis.store
        cell_store = CellStore.resolve(self._config.cache)
        return {**self._planner.stats.as_dict(),
                **self._analysis.stats.as_dict(),
                "fault_pmf_hits": pmf_stats.hits,
                "fault_pmf_misses": pmf_stats.misses,
                "fault_pmf_evicted": pmf_stats.evicted,
                "store_corrupt_skipped":
                    self._store.stats.corrupt_skipped
                    if self._store is not None else 0,
                "classify_store_corrupt_skipped":
                    classify_store.corrupt_skipped
                    if classify_store is not None else 0,
                "cell_store_corrupt_skipped":
                    cell_store.corrupt_skipped
                    if cell_store is not None else 0}

    @property
    def store(self):
        """The persistent solve store in use (``None`` when disabled)."""
        return self._store

    # ------------------------------------------------------------------
    def fault_free_wcet(self) -> int:
        """The deterministic WCET on a fault-free cache (§II-B)."""
        if self._wcet_fault_free is None:
            result = compute_wcet(
                self._cfg, self._analysis.classification(),
                self._config.timing, flow_model=self._flow_model,
                relaxed=self._config.relaxed, planner=self._planner)
            self._wcet_fault_free = result.cycles
        return self._wcet_fault_free

    def fault_miss_map(self,
                       mechanism: ReliabilityMechanism | str) -> FaultMissMap:
        mechanism = self._resolve(mechanism)
        if mechanism.name not in self._fmm_cache:
            self._fmm_cache[mechanism.name] = compute_fault_miss_map(
                self._analysis, mechanism, flow_model=self._flow_model,
                relaxed=self._config.relaxed, planner=self._planner)
        return self._fmm_cache[mechanism.name]

    def penalty_distribution(self, mechanism: ReliabilityMechanism | str
                             ) -> DiscreteDistribution:
        """Whole-cache fault penalty distribution, in misses."""
        mechanism = self._resolve(mechanism)
        return penalty_distribution(self.fault_miss_map(mechanism),
                                    mechanism, self._fault_model,
                                    self._config.geometry.sets)

    def estimate(self, mechanism: ReliabilityMechanism | str
                 ) -> PWCETEstimate:
        """Full pWCET estimate for one mechanism (memoised)."""
        mechanism = self._resolve(mechanism)
        if mechanism.name not in self._estimates:
            self._run_pipeline((mechanism,))
        return self._estimates[mechanism.name]

    def estimate_all(self) -> dict[str, PWCETEstimate]:
        """Estimates for the paper's three configurations."""
        pending = tuple(self._resolve(name) for name in ("none", "srb", "rw")
                        if name not in self._estimates)
        if pending:
            self._run_pipeline(pending)
        return {name: self._estimates[name] for name in ("none", "srb", "rw")}

    # -- the estimation DAG --------------------------------------------
    def _run_pipeline(self, mechanisms: tuple[ReliabilityMechanism, ...]
                      ) -> None:
        """One estimation batch as a typed-artifact DAG.

        Stages (inline closures over this estimator's memoised state;
        the planner's batched ILPs fan out over the scheduler's pool):
        classification → WCET and, per mechanism, FMM → distribution →
        estimate.  Inline execution follows submission order, which is
        exactly the historical fused call order — the DAG changes
        *where* work can run, never what is computed.
        """
        from repro.pipeline.stages import classification_artifact
        from repro.solve.store import store_context

        scheduler = self._scheduler
        context = store_context(self._cfg.digest(), self._config.geometry,
                                self._config.timing)
        scheduler.add(
            "classify",
            lambda: classification_artifact(
                self._analysis, self._name, mechanisms,
                carry_tables=False),
            stage="classify")
        scheduler.add(
            "wcet",
            lambda _classify: SolveArtifact(
                key=SolveArtifact.derive_key(context),
                wcet_cycles=self.fault_free_wcet()),
            deps=("classify",), stage="solve")
        for mechanism in mechanisms:
            name = mechanism.name
            scheduler.add(
                f"fmm:{name}",
                lambda _classify, mechanism=mechanism: FmmArtifact(
                    key=FmmArtifact.derive_key(context, mechanism.name),
                    mechanism=mechanism.name,
                    fmm=self.fault_miss_map(mechanism)),
                deps=("classify",), stage="solve")
            scheduler.add(
                f"distribution:{name}",
                lambda _fmm, mechanism=mechanism: DistributionArtifact(
                    key=DistributionArtifact.derive_key(
                        context, mechanism.name, self._config.pfail),
                    mechanism=mechanism.name,
                    pfail=self._config.pfail,
                    distribution=self.penalty_distribution(mechanism)),
                deps=(f"fmm:{name}",), stage="distribution")
            scheduler.add(
                f"estimate:{name}",
                lambda wcet, distribution, mechanism=mechanism:
                    PWCETEstimate(
                        program_name=self._name,
                        mechanism_name=mechanism.name,
                        wcet_fault_free=wcet.wcet_cycles,
                        penalty_misses=distribution.distribution,
                        timing=self._config.timing,
                        fmm=self.fault_miss_map(mechanism),
                        exceedance_correction=
                            mechanism.exceedance_correction(
                                self._fault_model,
                                self._config.geometry.sets)),
                deps=("wcet", f"distribution:{name}"), stage="estimate")
        results = scheduler.run()
        for mechanism in mechanisms:
            self._estimates[mechanism.name] = \
                results[f"estimate:{mechanism.name}"]

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(mechanism: ReliabilityMechanism | str
                 ) -> ReliabilityMechanism:
        if isinstance(mechanism, str):
            return mechanism_by_name(mechanism)
        if not isinstance(mechanism, ReliabilityMechanism):
            raise EstimationError(
                f"expected a mechanism or name, got {mechanism!r}")
        return mechanism
