"""Probabilistic WCET machinery: distributions, exceedance, estimation."""

from repro.pwcet.distribution import DiscreteDistribution
from repro.pwcet.exceedance import ExceedanceCurve
from repro.pwcet.estimator import (
    EstimatorConfig,
    PWCETEstimate,
    PWCETEstimator,
)

__all__ = [
    "DiscreteDistribution",
    "ExceedanceCurve",
    "EstimatorConfig",
    "PWCETEstimate",
    "PWCETEstimator",
]
