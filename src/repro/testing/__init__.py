"""Deterministic test harnesses for the pipeline substrate.

``faultinject``
    The chaos-injection harness: a declarative fault plan
    (``REPRO_FAULT_PLAN``) with hooks threaded through the pool entry
    point, the sharded stores and the solve backend, so worker
    crashes, torn shard writes and solver hangs are reproducible in
    unit tests and CI instead of theorized.
"""

from repro.testing.faultinject import (FaultClause, PLAN_ENV, STATE_ENV,
                                       active_plan, fire, parse_plan,
                                       solve_hook, worker_hook)

__all__ = [
    "FaultClause",
    "PLAN_ENV",
    "STATE_ENV",
    "active_plan",
    "fire",
    "parse_plan",
    "solve_hook",
    "worker_hook",
]
