"""Deterministic fault-injection: the ``REPRO_FAULT_PLAN`` harness.

The resilience layer (:mod:`repro.pipeline.resilience`) claims the
pipeline survives killed workers, torn shard writes and hung solves.
This module makes those faults *reproducible*: a declarative plan in
the ``REPRO_FAULT_PLAN`` environment variable arms injection hooks
threaded through the pool entry point
(:func:`~repro.pipeline.scheduler._run_pool_task`), the sharded
stores (:meth:`~repro.solve.store.ShardedStore._append` /
``_read_shard``) and the solve backend
(:meth:`~repro.solve.backend.SolverBackend.solve`), so CI can diff a
chaos run byte-for-byte against an undisturbed golden.

Plan grammar
------------

::

    plan   := clause (";" clause)*
    clause := site ":" action ["=" value] "@" target ["#" ordinal]

Sites and their actions:

``worker``
    Fires inside a pool worker before the stage body runs; ``target``
    is the stage function name (``cell_stage``, ``classify_stage``,
    ...) or ``*``.  Actions: ``kill`` (SIGKILL the worker — the
    parent sees ``BrokenProcessPool``), ``delay=<seconds>`` (sleep,
    for exercising stage timeouts), ``raise`` (raise a transient
    :class:`ConnectionError` — the pool survives, the task retries).

``store``
    Fires inside :class:`~repro.solve.store.ShardedStore`; ``target``
    is the schema directory name (``v1``, ``classify-v1``,
    ``cells-v2``) or ``*``.  Actions: ``truncate_tail`` (the append
    becomes a torn half-line write and the shard handle is dropped,
    as a killed writer would leave it), ``read_error`` (the shard
    read pass is skipped, as if the file were unreadable).

``solve``
    Fires inside :meth:`SolverBackend.solve`; ``target`` is the
    program snapshot name (``crc``, ``prime``, ...) or ``*``.
    Actions: ``delay=<seconds>`` (a slow solver), ``fail`` (raise
    :class:`~repro.errors.SolverError` — a *permanent* failure that
    quarantines the dependent subtree).

``net``
    Fires on the remote-store wire (:mod:`repro.remote`); ``target``
    is the store schema directory (``v1``, ``classify-v1``,
    ``cells-v2``) or ``*``.  Each action fires on exactly one side so
    a clause's ordinals count one invocation stream: ``drop`` (the
    client's request fails with a :class:`ConnectionError` before it
    leaves — a dead or unreachable server) and ``delay=<seconds>``
    (client-side latency before the request) arm the *client* hook;
    ``short_read`` (the server advertises the full Content-Length but
    sends only half the body) and ``corrupt`` (the server flips a
    payload byte, exercising the client's checksum verification) arm
    the *server* hook.

``#ordinal`` arms the clause for exactly the n-th (1-based) matching
invocation; without it the clause fires every time.  Ordinals are
counted per clause.  By default counters are per-process — pool
workers are forked with the parent's (zero) counts, so ``#2`` means
"the second matching call in *each* worker".  Point
``REPRO_FAULT_STATE`` at a directory to count globally across
processes (flock-serialised counter files): ``#2`` then means "the
second matching call anywhere in the run", which is what recovery
tests want (inject once, observe the retry succeed).

Example::

    worker:kill@cell_stage#2;store:truncate_tail@cells-v2;solve:delay=0.5@prime
"""

from __future__ import annotations

import fcntl
import os
import re
import signal
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError, SolverError

#: Environment variable holding the fault plan (empty/unset: no faults).
PLAN_ENV = "REPRO_FAULT_PLAN"
#: Optional directory for cross-process ordinal counters.
STATE_ENV = "REPRO_FAULT_STATE"

#: Legal actions per site; ``delay`` requires a ``=<seconds>`` value.
_ACTIONS = {
    "worker": ("kill", "delay", "raise"),
    "store": ("truncate_tail", "read_error"),
    "solve": ("delay", "fail"),
    "net": ("drop", "delay", "short_read", "corrupt"),
}

#: ``net`` actions consumed by the client-side hook; the remaining
#: ``net`` actions (``short_read``, ``corrupt``) are server-side.
#: The split keeps each clause's ordinal counter on one invocation
#: stream — a clause is never double-counted by both ends of the wire.
_NET_CLIENT_ACTIONS = ("drop", "delay")
_NET_SERVER_ACTIONS = ("short_read", "corrupt")

_CLAUSE_RE = re.compile(
    r"^(?P<site>[a-z]+):(?P<action>[a-z_]+)"
    r"(?:=(?P<value>[0-9.eE+-]+))?"
    r"@(?P<target>[^#;@\s]+)"
    r"(?:#(?P<ordinal>[0-9]+))?$")


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault plan."""

    #: Position in the plan — keys the clause's ordinal counter.
    index: int
    site: str
    action: str
    value: float | None
    target: str
    #: 1-based matching invocation to fire at; ``None`` fires always.
    ordinal: int | None


def parse_plan(text: str) -> tuple[FaultClause, ...]:
    """Parse a plan string; raises ``ConfigurationError`` on nonsense.

    A malformed plan must fail loudly at the first hook, not silently
    inject nothing — a chaos CI job with a typo'd plan would otherwise
    green-light an untested recovery path.
    """
    clauses = []
    for index, raw in enumerate(part.strip()
                                for part in text.split(";")
                                if part.strip()):
        match = _CLAUSE_RE.match(raw)
        if match is None:
            raise ConfigurationError(
                f"malformed fault clause {raw!r} in {PLAN_ENV} "
                f"(expected site:action[=value]@target[#ordinal])")
        site, action = match["site"], match["action"]
        if site not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault site {site!r} in clause {raw!r} "
                f"(one of {sorted(_ACTIONS)})")
        if action not in _ACTIONS[site]:
            raise ConfigurationError(
                f"unknown action {action!r} for site {site!r} in "
                f"clause {raw!r} (one of {sorted(_ACTIONS[site])})")
        value = None
        if match["value"] is not None:
            try:
                value = float(match["value"])
            except ValueError:
                raise ConfigurationError(
                    f"bad value in fault clause {raw!r}") from None
        if action == "delay" and (value is None or value < 0):
            raise ConfigurationError(
                f"action 'delay' needs =<seconds> in clause {raw!r}")
        ordinal = int(match["ordinal"]) if match["ordinal"] else None
        if ordinal is not None and ordinal < 1:
            raise ConfigurationError(
                f"ordinal must be >= 1 in clause {raw!r}")
        clauses.append(FaultClause(index=index, site=site, action=action,
                                   value=value, target=match["target"],
                                   ordinal=ordinal))
    return tuple(clauses)


#: Memoised (plan text, parsed clauses); re-parsed when the env
#: variable changes so tests can monkeypatch plans freely.
_PLAN_MEMO: tuple[str, tuple[FaultClause, ...]] | None = None
#: Per-process ordinal counters, keyed by clause index (used when
#: ``REPRO_FAULT_STATE`` is unset).
_LOCAL_COUNTS: dict[int, int] = {}


def active_plan() -> tuple[FaultClause, ...]:
    """The clauses of the current ``REPRO_FAULT_PLAN`` (memoised)."""
    global _PLAN_MEMO
    text = os.environ.get(PLAN_ENV, "")
    if _PLAN_MEMO is None or _PLAN_MEMO[0] != text:
        _PLAN_MEMO = (text, parse_plan(text) if text else ())
        _LOCAL_COUNTS.clear()
    return _PLAN_MEMO[1]


def _next_ordinal(clause: FaultClause) -> int:
    """Advance and return the clause's 1-based invocation counter."""
    state_dir = os.environ.get(STATE_ENV)
    if not state_dir:
        count = _LOCAL_COUNTS.get(clause.index, 0) + 1
        _LOCAL_COUNTS[clause.index] = count
        return count
    os.makedirs(state_dir, exist_ok=True)
    path = os.path.join(state_dir, f"clause-{clause.index}.count")
    handle = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        # One byte per invocation; the flock serialises the
        # read-size/append pair so concurrent workers draw distinct
        # ordinals.
        fcntl.flock(handle, fcntl.LOCK_EX)
        count = os.fstat(handle).st_size + 1
        os.write(handle, b".")
        return count
    finally:
        fcntl.flock(handle, fcntl.LOCK_UN)
        os.close(handle)


def fire(site: str, target: str, *,
         actions: Sequence[str] | None = None) -> FaultClause | None:
    """The armed clause matching this invocation, if any.

    Every matching clause's ordinal counter advances (so sibling
    clauses on the same site/target count the same invocation stream);
    the first armed one is returned.  ``actions`` restricts matching
    to the hook's supported actions — an append hook must not consume
    ordinals of a read-side clause.
    """
    plan = active_plan()
    if not plan:
        return None
    armed = None
    for clause in plan:
        if clause.site != site:
            continue
        if actions is not None and clause.action not in actions:
            continue
        if clause.target not in ("*", target):
            continue
        count = _next_ordinal(clause)
        if armed is None and (clause.ordinal is None
                              or clause.ordinal == count):
            armed = clause
    return armed


def worker_hook(stage: str) -> None:
    """Injection point at the top of the pool-task entry point."""
    clause = fire("worker", stage)
    if clause is None:
        return
    if clause.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif clause.action == "delay":
        time.sleep(clause.value)
    elif clause.action == "raise":
        raise ConnectionError(
            f"injected transient worker fault ({stage})")


def solve_hook(name: str) -> None:
    """Injection point inside ``SolverBackend.solve``."""
    clause = fire("solve", name)
    if clause is None:
        return
    if clause.action == "delay":
        time.sleep(clause.value)
    elif clause.action == "fail":
        raise SolverError(f"injected solver fault ({name})")


def net_client_hook(target: str) -> None:
    """Injection point before each remote-store request leaves the
    client; ``target`` is the store schema directory."""
    clause = fire("net", target, actions=_NET_CLIENT_ACTIONS)
    if clause is None:
        return
    if clause.action == "drop":
        raise ConnectionError(
            f"injected network fault: dropped request ({target})")
    if clause.action == "delay":
        time.sleep(clause.value)


def net_server_hook(target: str) -> FaultClause | None:
    """Injection point inside the shard server's response path.

    Returns the armed clause (``short_read`` / ``corrupt``) so the
    handler can mangle the response it was about to send; ``None``
    sends it untouched.
    """
    return fire("net", target, actions=_NET_SERVER_ACTIONS)
