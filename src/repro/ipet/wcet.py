"""Fault-free WCET computation (IPET over the CHMC table)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.chmc import Chmc
from repro.analysis.classify import ClassificationTable
from repro.cfg import CFG, LoopForest
from repro.errors import ConfigurationError
from repro.ipet.model import FlowModel
from repro.util import check_positive_int


@dataclass(frozen=True)
class TimingModel:
    """Latency parameters of the paper's setup (§IV-A).

    A hit costs the cache latency; a miss additionally pays the memory
    latency.  Only the instruction cache's contribution to the WCET is
    modelled, like the paper's experiments.
    """

    hit_cycles: int = 1
    memory_cycles: int = 100

    def __post_init__(self) -> None:
        check_positive_int(self.hit_cycles, "hit_cycles")
        check_positive_int(self.memory_cycles, "memory_cycles")

    @property
    def miss_cycles(self) -> int:
        """Total cost of a missing fetch."""
        return self.hit_cycles + self.memory_cycles


@dataclass(frozen=True)
class WCETResult:
    """Outcome of one IPET solve."""

    cycles: int
    #: Execution count of every block in the critical flow.
    block_counts: dict[int, int] = field(repr=False)
    #: True when the LP relaxation was used (sound, possibly looser).
    relaxed: bool = False


def compute_wcet(cfg: CFG, table: ClassificationTable, timing: TimingModel,
                 *, forest: LoopForest | None = None,
                 flow_model: FlowModel | None = None,
                 relaxed: bool = False,
                 planner=None) -> WCETResult:
    """WCET of one task activation under a classification table.

    Cost model per reference:

    * always-hit: ``hit_cycles`` each execution;
    * always-miss / not-classified: ``miss_cycles`` each execution;
    * first-miss in scope L: ``hit_cycles`` each execution plus
      ``memory_cycles`` for at most ``entries(L)`` executions.
    """
    if flow_model is None:
        flow_model = FlowModel(cfg, forest)
    elif flow_model.cfg is not cfg:
        raise ConfigurationError("flow model belongs to a different CFG")
    if planner is None:
        planner = flow_model.planner

    objective: dict[int, float] = {}

    def add_term(coefficients: dict[int, float]) -> None:
        for variable, weight in coefficients.items():
            objective[variable] = objective.get(variable, 0.0) + weight

    for block_id in cfg.block_ids():
        classifications = table.of_block(block_id)
        base_cost = 0
        fm_scope_counts: dict[int, int] = {}
        for classification in classifications:
            base_cost += timing.hit_cycles
            if classification.counts_full_misses:
                base_cost += timing.memory_cycles
            elif classification.chmc is Chmc.FIRST_MISS:
                scope = classification.scope
                fm_scope_counts[scope] = fm_scope_counts.get(scope, 0) + 1
        if base_cost:
            add_term(flow_model.block_count_coefficients(block_id,
                                                         float(base_cost)))
        for scope, count in fm_scope_counts.items():
            variable = flow_model.fm_group_var(block_id, scope)
            weight = float(timing.memory_cycles * count)
            objective[variable] = objective.get(variable, 0.0) + weight

    if not objective:
        # A program with no instructions costs nothing.
        return WCETResult(cycles=0, block_counts={}, relaxed=relaxed)

    solution = planner.solve_with_values(objective, relaxed=relaxed)
    block_counts = {
        block_id: int(round(sum(
            solution.value_of(variable)
            for variable in flow_model.in_edge_vars(block_id))))
        for block_id in cfg.block_ids()
    }
    cycles = (solution.rounded_objective() if not relaxed
              else int(-(-solution.objective // 1)))  # ceil for safety
    return WCETResult(cycles=cycles, block_counts=block_counts,
                      relaxed=relaxed)
