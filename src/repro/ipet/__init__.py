"""IPET: WCET computation by Implicit Path Enumeration (Li & Malik).

The execution-count space of a program is encoded as an integer linear
program — flow conservation per basic block, one unit of flow from
entry to exit, loop-bound inequalities — and the WCET is the maximum of
a linear time objective over that polytope.  The same polytope, with a
different objective, bounds the number of fault-induced misses for the
Fault Miss Map (:mod:`repro.fmm`).
"""

from repro.ipet.ilp import LinearProgram, Solution
from repro.ipet.model import FlowModel
from repro.ipet.paths import enumerate_paths
from repro.ipet.wcet import TimingModel, WCETResult, compute_wcet

__all__ = [
    "LinearProgram",
    "Solution",
    "FlowModel",
    "enumerate_paths",
    "TimingModel",
    "WCETResult",
    "compute_wcet",
]
