"""A small (I)LP layer over ``scipy.optimize.milp`` (HiGHS).

The paper uses CPLEX 12.5; HiGHS via scipy is the offline substitute.
Models are built once (variables + constraints) and can be solved for
several objectives — the FMM computation reuses one flow polytope for
every (set, fault count) pair.

Solving the LP relaxation instead of the ILP is supported: for a
*maximisation* the relaxation can only over-estimate, so a relaxed
WCET/FMM bound remains sound (just possibly less tight) — this is the
ABL-SOLVER ablation of DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverError

#: Map of scipy.milp status codes to human-readable causes.
_MILP_STATUS = {
    0: "optimal",
    1: "iteration or time limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical difficulties",
}


@dataclass(frozen=True)
class Solution:
    """An optimal solution of a :class:`LinearProgram`."""

    objective: float
    values: np.ndarray
    relaxed: bool

    def value_of(self, index: int) -> float:
        return float(self.values[index])

    def rounded_objective(self) -> int:
        """Objective as an integer (ILP objectives here are integral)."""
        return int(round(self.objective))


class LinearProgram:
    """Incrementally built (mixed-)integer linear program.

    All variables are non-negative; bounds are optional per variable.
    Constraints are ``<=`` or ``==`` rows over variable indices.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._names: list[str] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._rows: list[dict[int, float]] = []
        self._row_lb: list[float] = []
        self._row_ub: list[float] = []
        self._frozen_matrix: sparse.csc_matrix | None = None

    # -- model building ------------------------------------------------
    def add_variable(self, name: str, *, lower: float = 0.0,
                     upper: float | None = None) -> int:
        """Add a variable; returns its index."""
        if upper is not None and upper < lower:
            raise SolverError(
                f"variable {name!r}: upper {upper} < lower {lower}")
        self._names.append(name)
        self._lower.append(lower)
        self._upper.append(math.inf if upper is None else upper)
        self._frozen_matrix = None
        return len(self._names) - 1

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    def variable_name(self, index: int) -> str:
        return self._names[index]

    def add_le(self, coefficients: dict[int, float], rhs: float) -> None:
        """Add ``sum(c_i * x_i) <= rhs``."""
        self._add_row(coefficients, -math.inf, rhs)

    def add_eq(self, coefficients: dict[int, float], rhs: float) -> None:
        """Add ``sum(c_i * x_i) == rhs``."""
        self._add_row(coefficients, rhs, rhs)

    def _add_row(self, coefficients: dict[int, float], lb: float,
                 ub: float) -> None:
        if not coefficients:
            raise SolverError("empty constraint row")
        for index in coefficients:
            if not 0 <= index < len(self._names):
                raise SolverError(f"unknown variable index {index}")
        self._rows.append(dict(coefficients))
        self._row_lb.append(lb)
        self._row_ub.append(ub)
        self._frozen_matrix = None

    # -- solving ---------------------------------------------------------
    def maximize(self, objective: dict[int, float], *,
                 relaxed: bool = False) -> Solution:
        """Maximise a linear objective over the model."""
        return self._solve(objective, sign=-1.0, relaxed=relaxed)

    def minimize(self, objective: dict[int, float], *,
                 relaxed: bool = False) -> Solution:
        """Minimise a linear objective over the model."""
        return self._solve(objective, sign=1.0, relaxed=relaxed)

    def _matrix(self) -> sparse.csc_matrix:
        if self._frozen_matrix is None:
            data, row_idx, col_idx = [], [], []
            for row, coefficients in enumerate(self._rows):
                for col, value in coefficients.items():
                    data.append(value)
                    row_idx.append(row)
                    col_idx.append(col)
            self._frozen_matrix = sparse.csc_matrix(
                (data, (row_idx, col_idx)),
                shape=(len(self._rows), len(self._names)))
        return self._frozen_matrix

    def _solve(self, objective: dict[int, float], sign: float,
               relaxed: bool) -> Solution:
        n = len(self._names)
        c = np.zeros(n)
        for index, coefficient in objective.items():
            if not 0 <= index < n:
                raise SolverError(f"unknown variable index {index}")
            c[index] = sign * coefficient

        constraints = []
        if self._rows:
            constraints.append(optimize.LinearConstraint(
                self._matrix(), np.array(self._row_lb),
                np.array(self._row_ub)))
        bounds = optimize.Bounds(np.array(self._lower),
                                 np.array(self._upper))
        integrality = np.zeros(n) if relaxed else np.ones(n)
        result = optimize.milp(c=c, constraints=constraints, bounds=bounds,
                               integrality=integrality)
        if not result.success:
            cause = _MILP_STATUS.get(result.status,
                                     f"status {result.status}")
            raise SolverError(
                f"{self.name}: solver failed ({cause}): {result.message}")
        # milp always minimises; undo the sign flip used for maximise.
        objective_value = float(result.fun) / sign
        return Solution(objective=objective_value, values=result.x,
                        relaxed=relaxed)
