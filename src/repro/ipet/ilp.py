"""A small (I)LP layer over HiGHS (persistent model or scipy fallback).

The paper uses CPLEX 12.5; HiGHS is the offline substitute.  Models
are built once (variables + constraints) and solved for many
objectives — the FMM computation reuses one flow polytope for every
(set, fault count) pair.  Solver inputs are frozen on first solve
(:class:`~repro.solve.backend.ProgramSnapshot`): the CSC matrix,
variable bounds and row bounds are materialised once per model
version instead of per call, and the backend keeps a persistent HiGHS
instance whose cost vector is swapped in place between solves.

Solving the LP relaxation instead of the ILP is supported: for a
*maximisation* the relaxation can only over-estimate, so a relaxed
WCET/FMM bound remains sound (just possibly less tight) — this is the
ABL-SOLVER ablation of DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.solve.backend import (ProgramSnapshot, SolverBackend,
                                 make_backend)


@dataclass(frozen=True)
class Solution:
    """An optimal solution of a :class:`LinearProgram`."""

    objective: float
    values: np.ndarray
    relaxed: bool

    def value_of(self, index: int) -> float:
        return float(self.values[index])

    def rounded_objective(self) -> int:
        """Objective as an integer (ILP objectives here are integral)."""
        return int(round(self.objective))


class LinearProgram:
    """Incrementally built (mixed-)integer linear program.

    All variables are non-negative; bounds are optional per variable.
    Constraints are ``<=`` or ``==`` rows over variable indices.
    Structural edits bump :attr:`version`, which invalidates the
    frozen snapshot and any persistent backend built from it.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._names: list[str] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._rows: list[dict[int, float]] = []
        self._row_lb: list[float] = []
        self._row_ub: list[float] = []
        self._version = 0
        self._snapshot: ProgramSnapshot | None = None
        self._snapshot_version = -1
        self._backend: SolverBackend | None = None
        self._backend_version = -1

    # -- model building ------------------------------------------------
    def add_variable(self, name: str, *, lower: float = 0.0,
                     upper: float | None = None) -> int:
        """Add a variable; returns its index."""
        if upper is not None and upper < lower:
            raise SolverError(
                f"variable {name!r}: upper {upper} < lower {lower}")
        self._names.append(name)
        self._lower.append(lower)
        self._upper.append(math.inf if upper is None else upper)
        self._version += 1
        return len(self._names) - 1

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    @property
    def version(self) -> int:
        """Bumped on every structural edit (variable or row added)."""
        return self._version

    def variable_name(self, index: int) -> str:
        return self._names[index]

    def variable_upper(self, index: int) -> float:
        """Declared upper bound of a variable (``inf`` if unbounded)."""
        return self._upper[index]

    def add_le(self, coefficients: dict[int, float], rhs: float) -> None:
        """Add ``sum(c_i * x_i) <= rhs``."""
        self._add_row(coefficients, -math.inf, rhs)

    def add_eq(self, coefficients: dict[int, float], rhs: float) -> None:
        """Add ``sum(c_i * x_i) == rhs``."""
        self._add_row(coefficients, rhs, rhs)

    def _add_row(self, coefficients: dict[int, float], lb: float,
                 ub: float) -> None:
        if not coefficients:
            raise SolverError("empty constraint row")
        for index in coefficients:
            if not 0 <= index < len(self._names):
                raise SolverError(f"unknown variable index {index}")
        self._rows.append(dict(coefficients))
        self._row_lb.append(lb)
        self._row_ub.append(ub)
        self._version += 1

    # -- frozen inputs ---------------------------------------------------
    def snapshot(self) -> ProgramSnapshot:
        """The frozen constraint system for the current version."""
        if self._snapshot is None or self._snapshot_version != self._version:
            self._snapshot = ProgramSnapshot.from_rows(
                self.name, self._lower, self._upper, self._rows,
                self._row_lb, self._row_ub)
            self._snapshot_version = self._version
        return self._snapshot

    def backend(self) -> SolverBackend:
        """The persistent solve backend for the current version."""
        if self._backend is None or self._backend_version != self._version:
            self._backend = make_backend(self.snapshot())
            self._backend_version = self._version
        return self._backend

    # -- solving ---------------------------------------------------------
    def maximize(self, objective: dict[int, float], *,
                 relaxed: bool = False) -> Solution:
        """Maximise a linear objective over the model."""
        return self._solve(objective, sign=-1.0, relaxed=relaxed)

    def minimize(self, objective: dict[int, float], *,
                 relaxed: bool = False) -> Solution:
        """Minimise a linear objective over the model."""
        return self._solve(objective, sign=1.0, relaxed=relaxed)

    def _solve(self, objective: dict[int, float], sign: float,
               relaxed: bool) -> Solution:
        n = len(self._names)
        for index in objective:
            if not 0 <= index < n:
                raise SolverError(f"unknown variable index {index}")
        value, values = self.backend().solve(objective, sign, relaxed)
        return Solution(objective=value, values=values, relaxed=relaxed)

    # -- pickling --------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_backend"] = None  # backends hold process-local handles
        state["_backend_version"] = -1
        return state
