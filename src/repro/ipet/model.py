"""The IPET flow polytope, shared by WCET and FMM computations.

Variables are execution counts of CFG edges plus a virtual entry edge
and a virtual exit edge (both fixed to one: a single task activation).
A block's execution count is the sum of its incoming edge counts.

Constraints:

* flow conservation at every block (in-flow equals out-flow, with the
  virtual edges feeding the entry and draining the exit);
* for every natural loop, header executions bounded by
  ``bound * (flow on the loop's entry edges)``.

First-miss references need one auxiliary variable per (block,
persistence scope) group — bounded by the block count and by the scope
entry flow — added on demand per objective because the grouping depends
on the classification pair under study.
"""

from __future__ import annotations

from repro.analysis.chmc import GLOBAL_SCOPE
from repro.cfg import CFG, LoopForest, find_loops
from repro.errors import SolverError
from repro.ipet.ilp import LinearProgram
from repro.solve.planner import SolvePlanner


class FlowModel:
    """Flow polytope of a CFG, with helpers to attach cost objectives."""

    def __init__(self, cfg: CFG, forest: LoopForest | None = None) -> None:
        cfg.validate()
        self.cfg = cfg
        self.forest = forest if forest is not None else find_loops(cfg)
        self.program = LinearProgram(name=f"ipet:{cfg.name}")
        self._planner: SolvePlanner | None = None

        self._edge_vars: dict[tuple[int, int], int] = {}
        for edge in cfg.edges():
            self._edge_vars[edge] = self.program.add_variable(
                f"e_{edge[0]}_{edge[1]}")
        #: Reverse maps and memo for the structural variable bounds.
        self._edge_var_keys = {index: edge
                               for edge, index in self._edge_vars.items()}
        self._fm_var_keys: dict[int, tuple[int, int]] = {}
        self._structural_bounds: dict[int, float] = {}
        #: Virtual edges: one activation enters and leaves the program.
        self.entry_var = self.program.add_variable("e_entry", lower=1.0,
                                                   upper=1.0)
        self.exit_var = self.program.add_variable("e_exit", lower=1.0,
                                                  upper=1.0)
        self._add_flow_conservation()
        self._add_loop_bounds()
        #: Memoised FM variables keyed by (block_id, scope).
        self._fm_vars: dict[tuple[int, int], int] = {}

    @property
    def planner(self) -> SolvePlanner:
        """The shared solve planner of this polytope.

        Lazy and unique per flow model, so every consumer (WCET, all
        FMM mechanisms) dedups against one canonical-objective cache.
        The planner's structural pre-screen draws its per-variable
        bounds from the loop forest via :meth:`variable_bound`.
        """
        if self._planner is None:
            self._planner = SolvePlanner(self.program,
                                         variable_bound=self.variable_bound)
        return self._planner

    # -- structural execution-count bounds ------------------------------
    def block_execution_bound(self, block_id: int) -> int:
        """Loop-bound product: max executions of a block per activation.

        Outside every loop a block executes at most once (single
        activation, acyclic residual graph); each enclosing loop
        multiplies by its per-entry iteration bound.  This is the
        classic IPET structural bound — a sound over-approximation of
        any feasible flow, computed without the solver.
        """
        bound = 1
        for loop in self.forest.loops_containing(block_id):
            bound *= loop.bound
        return bound

    def _scope_entry_bound(self, scope: int) -> int:
        """Max entries into a persistence scope per activation."""
        if scope == GLOBAL_SCOPE:
            return 1
        loop = self.forest.loop(scope)
        return sum(self.block_execution_bound(pred)
                   for pred, _header in loop.entry_edges(self.cfg))

    def variable_bound(self, index: int) -> float:
        """Structural upper bound of one polytope variable.

        * virtual entry/exit edges: 1 (a single activation);
        * CFG edge ``(u, v)``: bounded by both endpoint blocks;
        * first-miss group variable ``(block, scope)``: bounded by the
          block count and by the scope entry count — mirroring its
          defining constraints, with loop-bound products in place of
          flow variables.

        Used by the planner's solver-free pre-screen; results are
        memoised because the FMM sweep probes the same variables for
        every column.
        """
        bound = self._structural_bounds.get(index)
        if bound is not None:
            return bound
        if index in (self.entry_var, self.exit_var):
            bound = 1.0
        elif index in self._edge_var_keys:
            src, dst = self._edge_var_keys[index]
            bound = float(min(self.block_execution_bound(src),
                              self.block_execution_bound(dst)))
        elif index in self._fm_var_keys:
            block_id, scope = self._fm_var_keys[index]
            bound = float(min(self.block_execution_bound(block_id),
                              self._scope_entry_bound(scope)))
        else:  # unknown variable: no structural information
            bound = float("inf")
        self._structural_bounds[index] = bound
        return bound

    # ------------------------------------------------------------------
    def edge_var(self, src: int, dst: int) -> int:
        try:
            return self._edge_vars[(src, dst)]
        except KeyError as exc:
            raise SolverError(f"no variable for edge ({src}, {dst})") from exc

    def in_edge_vars(self, block_id: int) -> list[int]:
        """Variables whose sum is the block's execution count."""
        variables = [self._edge_vars[(pred, block_id)]
                     for pred in self.cfg.predecessors(block_id)]
        if block_id == self.cfg.entry_id:
            variables.append(self.entry_var)
        return variables

    def block_count_coefficients(self, block_id: int,
                                 weight: float = 1.0) -> dict[int, float]:
        """Coefficient map representing ``weight * x_block``."""
        coefficients: dict[int, float] = {}
        for variable in self.in_edge_vars(block_id):
            coefficients[variable] = coefficients.get(variable, 0.0) + weight
        return coefficients

    def scope_entry_vars(self, scope: int) -> list[int]:
        """Variables whose sum is the number of entries into a scope.

        For :data:`GLOBAL_SCOPE` this is the virtual entry edge (one
        activation); for a loop it is the loop's entry edges.
        """
        if scope == GLOBAL_SCOPE:
            return [self.entry_var]
        loop = self.forest.loop(scope)
        return [self._edge_vars[edge] for edge in loop.entry_edges(self.cfg)]

    def fm_group_var(self, block_id: int, scope: int) -> int:
        """Miss-count variable for FM references of (block, scope).

        All first-miss references of the same block with the same
        persistence scope share one variable ``m`` with
        ``m <= x_block`` and ``m <= entries(scope)``; the objective
        multiplies it by the number of grouped references.
        """
        key = (block_id, scope)
        if key in self._fm_vars:
            return self._fm_vars[key]
        variable = self.program.add_variable(f"m_{block_id}_s{scope}")
        # m - x_block <= 0
        coefficients = self.block_count_coefficients(block_id, -1.0)
        coefficients[variable] = coefficients.get(variable, 0.0) + 1.0
        self.program.add_le(coefficients, 0.0)
        # m - entries(scope) <= 0
        coefficients = {variable: 1.0}
        for entry_variable in self.scope_entry_vars(scope):
            coefficients[entry_variable] = (
                coefficients.get(entry_variable, 0.0) - 1.0)
        self.program.add_le(coefficients, 0.0)
        self._fm_vars[key] = variable
        self._fm_var_keys[variable] = key
        return variable

    # ------------------------------------------------------------------
    def _add_flow_conservation(self) -> None:
        cfg = self.cfg
        for block_id in cfg.block_ids():
            coefficients: dict[int, float] = {}
            for variable in self.in_edge_vars(block_id):
                coefficients[variable] = coefficients.get(variable, 0.0) + 1.0
            out_vars = [self._edge_vars[(block_id, succ)]
                        for succ in cfg.successors(block_id)]
            if block_id == cfg.exit_id:
                out_vars.append(self.exit_var)
            for variable in out_vars:
                coefficients[variable] = coefficients.get(variable, 0.0) - 1.0
            self.program.add_eq(coefficients, 0.0)

    def _add_loop_bounds(self) -> None:
        for header, loop in self.forest.loops.items():
            entry_edges = loop.entry_edges(self.cfg)
            if not entry_edges:
                raise SolverError(
                    f"loop at header {header} has no entry edge")
            # x_header - bound * entries <= 0
            coefficients = self.block_count_coefficients(header, 1.0)
            for edge in entry_edges:
                variable = self._edge_vars[edge]
                coefficients[variable] = (
                    coefficients.get(variable, 0.0) - float(loop.bound))
            self.program.add_le(coefficients, 0.0)
