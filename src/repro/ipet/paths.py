"""Exhaustive enumeration of structurally feasible paths.

Only practical for small CFGs, this is the reference oracle used by the
test suite to validate the IPET formulation: the ILP maximum of any
linear block-cost objective must equal the maximum over all enumerated
paths.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cfg import CFG, LoopForest, find_loops
from repro.errors import SimulationError

#: Hard cap on the number of yielded paths (the enumeration is
#: exponential; the oracle is meant for unit-test-sized CFGs).
DEFAULT_MAX_PATHS = 200_000


def enumerate_paths(cfg: CFG, forest: LoopForest | None = None, *,
                    max_paths: int = DEFAULT_MAX_PATHS
                    ) -> Iterator[tuple[int, ...]]:
    """Yield every structurally feasible entry-to-exit block sequence.

    Feasibility means: follows CFG edges, and every loop executes its
    header at most ``bound`` times per entry into the loop.
    """
    cfg.validate()
    if forest is None:
        forest = find_loops(cfg)
    loops = forest.loops
    yielded = 0

    # Depth-first enumeration carrying per-loop remaining header budgets.
    # State: (current block, immutable budget mapping, path so far).
    def budgets_after_edge(src: int, dst: int,
                           budgets: dict[int, int]) -> dict[int, int] | None:
        new_budgets = dict(budgets)
        # Drop budgets of loops being exited.
        for header, loop in loops.items():
            if src in loop.body and dst not in loop.body:
                new_budgets.pop(header, None)
        if dst in loops:
            if src not in loops[dst].body:
                new_budgets[dst] = loops[dst].bound  # fresh entry
            elif new_budgets.get(dst, 0) <= 0:
                return None  # back edge with exhausted budget
        return new_budgets

    def consume_header(block_id: int,
                       budgets: dict[int, int]) -> dict[int, int] | None:
        if block_id not in loops:
            return budgets
        remaining = budgets.get(block_id, 0)
        if remaining <= 0:
            return None
        budgets = dict(budgets)
        budgets[block_id] = remaining - 1
        return budgets

    stack: list[tuple[int, dict[int, int], tuple[int, ...]]] = []
    initial_budgets: dict[int, int] = {}
    if cfg.entry_id in loops:
        initial_budgets[cfg.entry_id] = loops[cfg.entry_id].bound
    entry_budgets = consume_header(cfg.entry_id, initial_budgets)
    if entry_budgets is None:
        raise SimulationError("entry header has zero bound")
    stack.append((cfg.entry_id, entry_budgets, (cfg.entry_id,)))

    while stack:
        block_id, budgets, path = stack.pop()
        if block_id == cfg.exit_id:
            yielded += 1
            if yielded > max_paths:
                raise SimulationError(
                    f"more than {max_paths} feasible paths; "
                    "use a smaller CFG for the enumeration oracle")
            yield path
            continue
        for successor in cfg.successors(block_id):
            edge_budgets = budgets_after_edge(block_id, successor, budgets)
            if edge_budgets is None:
                continue
            next_budgets = consume_header(successor, edge_budgets)
            if next_budgets is None:
                continue
            stack.append((successor, next_budgets, path + (successor,)))


def max_path_cost(cfg: CFG, block_costs: dict[int, float],
                  forest: LoopForest | None = None, *,
                  max_paths: int = DEFAULT_MAX_PATHS) -> float:
    """Maximum of a per-block-cost objective over all feasible paths."""
    best = float("-inf")
    for path in enumerate_paths(cfg, forest, max_paths=max_paths):
        cost = sum(block_costs.get(block_id, 0.0) for block_id in path)
        best = max(best, cost)
    if best == float("-inf"):
        raise SimulationError("no feasible path from entry to exit")
    return best
