"""Multi-geometry sweep service: design-stage pWCET exploration.

Fans the estimation pipeline out over a (cache geometry × pfail) grid
and reports Pareto fronts of pWCET gain versus hardware cost, turning
the single-configuration reproduction into the pre-silicon
exploration tool of the ROADMAP (Lee et al.-style design-space
search).  Exploits the persistent solve store: grid cells sharing ILP
objectives (every pfail column of one geometry, and any rerun of the
sweep) are answered from disk instead of the backend.

* :mod:`repro.sweep.grid` — geometry/pfail grid construction;
* :mod:`repro.sweep.service` — cell execution and Pareto extraction;
* :mod:`repro.sweep.report` — text rendering for the CLI and the
  benchmark artefacts.
"""

from repro.sweep.grid import (DEFAULT_LINES, DEFAULT_PFAILS, DEFAULT_SIZES,
                              DEFAULT_WAYS, SweepCell, geometry_grid,
                              sweep_cells)
from repro.sweep.report import (format_pareto_fronts, format_sweep_report,
                                format_sweep_table)
from repro.sweep.service import (DesignPoint, SweepResult, pareto_front,
                                 run_sweep)

__all__ = [
    "DEFAULT_LINES",
    "DEFAULT_PFAILS",
    "DEFAULT_SIZES",
    "DEFAULT_WAYS",
    "SweepCell",
    "geometry_grid",
    "sweep_cells",
    "DesignPoint",
    "SweepResult",
    "pareto_front",
    "run_sweep",
    "format_pareto_fronts",
    "format_sweep_report",
    "format_sweep_table",
]
