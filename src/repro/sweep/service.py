"""The multi-geometry sweep service (design-stage exploration).

Runs the full estimation suite for every (geometry, pfail) grid cell,
aggregates pWCET gain and hardware cost per reliability mechanism, and
extracts the Pareto-optimal design points.  The heavy lifting reuses
:func:`repro.experiments.runner.run_suite` (benchmark-level process
fan-out) and the persistent solve store: grid cells that share ILP
objectives — notably all cells along the pfail axis of one geometry —
are answered from the cache instead of the backend.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.hwcost.model import MechanismCostModel
from repro.pwcet import EstimatorConfig
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.reliability import MECHANISMS
from repro.suite import EVALUATED_BENCHMARKS
from repro.sweep.grid import (DEFAULT_PFAILS, SweepCell, geometry_grid,
                              sweep_cells)

#: Mechanisms compared by the sweep (paper's three configurations).
SWEEP_MECHANISMS = tuple(mechanism.name for mechanism in MECHANISMS)


@dataclass(frozen=True)
class DesignPoint:
    """One (geometry, pfail, mechanism) point of the design space.

    ``mean_gain`` is the paper's gain notion — pWCET reduction versus
    the unprotected cache *of the same cell*, averaged over the
    benchmark suite.  ``mean_pwcet`` is the absolute average pWCET in
    cycles, comparable across geometries.  ``area_cells`` is the total
    silicon budget of the configuration in 6T-cell equivalents
    (baseline arrays plus the mechanism's hardening overhead).
    """

    cell: SweepCell
    mechanism: str
    mean_pwcet: float
    mean_gain: float
    area_cells: float
    area_overhead: float
    leakage_cells: float

    @property
    def geometry(self):
        return self.cell.geometry

    @property
    def pfail(self) -> float:
        return self.cell.pfail


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced."""

    points: tuple[DesignPoint, ...]
    benchmarks: tuple[str, ...]
    probability: float
    #: Planner counters summed over every estimation of the sweep.
    solver_totals: dict[str, float]

    def cells(self) -> tuple[SweepCell, ...]:
        seen: dict[SweepCell, None] = {}
        for point in self.points:
            seen.setdefault(point.cell)
        return tuple(seen)

    def of_mechanism(self, mechanism: str) -> tuple[DesignPoint, ...]:
        return tuple(point for point in self.points
                     if point.mechanism == mechanism)


def pareto_front(points: tuple[DesignPoint, ...]
                 ) -> tuple[DesignPoint, ...]:
    """Non-dominated points of (hardware cost down, pWCET gain up).

    A point dominates another when it costs no more silicon and gains
    at least as much pWCET, strictly better in one of the two.  The
    front is returned cheapest-first.
    """
    front = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            if (other.area_cells <= candidate.area_cells
                    and other.mean_gain >= candidate.mean_gain
                    and (other.area_cells < candidate.area_cells
                         or other.mean_gain > candidate.mean_gain)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda point: (point.area_cells, -point.mean_gain))
    return tuple(front)


def run_sweep(geometries=None, *,
              pfails: tuple[float, ...] = DEFAULT_PFAILS,
              benchmarks: tuple[str, ...] = EVALUATED_BENCHMARKS,
              config: EstimatorConfig | None = None,
              workers: int | None = None,
              probability: float = TARGET_EXCEEDANCE) -> SweepResult:
    """Estimate the whole suite at every grid cell.

    ``config`` carries the non-swept parameters (timing model, solver
    mode, cache selector, default worker width); its geometry and
    pfail are overridden per cell.

    The sweep runs inside :func:`~repro.experiments.runner
    .fresh_results`, so its solver totals describe exactly the work it
    performed — results memoised by earlier drivers in the same
    process carry *their* planner counters and would otherwise be
    double-counted.  Cross-run reuse is the persistent store's job,
    and that one is exact (store hits are counted by the estimator
    that makes them).
    """
    from repro.experiments.runner import (fresh_results, run_suite,
                                          solver_totals)

    if geometries is None:
        geometries = geometry_grid()
    if config is None:
        config = EstimatorConfig()
    points: list[DesignPoint] = []
    all_results = []
    with fresh_results():
        for cell in sweep_cells(tuple(geometries), tuple(pfails)):
            cost_model = MechanismCostModel(cell.geometry)
            cell_config = replace(config, geometry=cell.geometry,
                                  pfail=cell.pfail)
            results = run_suite(cell_config, benchmarks=benchmarks,
                                workers=workers,
                                target_probability=probability)
            all_results.extend(results)
            for mechanism in MECHANISMS:
                cost = cost_model.cost_of(mechanism)
                pwcets = [result.pwcet(mechanism.name)
                          for result in results]
                gains = [result.gain(mechanism.name) for result in results]
                points.append(DesignPoint(
                    cell=cell,
                    mechanism=mechanism.name,
                    mean_pwcet=statistics.mean(pwcets),
                    mean_gain=statistics.mean(gains),
                    area_cells=cost.total_cell_equivalents,
                    area_overhead=cost.area_overhead_ratio,
                    leakage_cells=cost.leakage_equivalents))
    return SweepResult(points=tuple(points), benchmarks=tuple(benchmarks),
                       probability=probability,
                       solver_totals=solver_totals(all_results))
