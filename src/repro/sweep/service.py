"""The multi-geometry sweep service (design-stage exploration).

Runs the full estimation suite for every (geometry, pfail) grid cell,
aggregates pWCET gain and hardware cost per reliability mechanism, and
extracts the Pareto-optimal design points.  The heavy lifting reuses
:func:`repro.experiments.runner.run_suite` and the two persistent
stores (solve + classification): grid cells that share work — notably
all cells along the pfail axis of one geometry, which share every ILP
objective *and* every classification table — are answered from the
caches instead of recomputed.  The distribution stage goes further:
penalty points are pfail-*independent*, so the first cell of each
geometry computes its whole selected pfail axis in one batched kernel
pass (:func:`repro.pwcet.batch.penalty_distributions`) and prefills
the persistent cell store — the remaining grid columns are then
answered whole from their content addresses, never touching solver,
analysis or convolution again.

The geometry axis of classification is batched the same way: the
grid's geometries fall into *line-size groups* (same memory-block
stream per CFG), and each benchmark's first cold classify stage of a
group runs ONE stacked Must/May fixpoint pair serving every geometry
of the group (:mod:`repro.analysis.geometry_batch`), prefilling the
sibling geometries' tables into the classification store.

Execution goes through the unified pipeline scheduler
(:class:`~repro.pipeline.scheduler.PipelineScheduler`): sequentially
the grid cells run as inline DAG tasks in grid order; with
``run_sweep(cell_workers=N)`` / ``repro sweep --workers N`` whole
line-size groups become pool tasks on the scheduler's shared worker
pool.  Cells are grouped so both reuse axes stay in-process (and all
of a group's store keys inside one task — parallel sweeps do the same
store traffic as sequential ones), the two disk stores dedup across
workers, and completed cells *stream* back through the ``on_cell``
callback as they finish —
the CLI renders incremental progress while the final report stays
byte-identical to the sequential path (results are assembled in
deterministic grid order, and each worker computes exactly what the
sequential loop would).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.pipeline.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.pipeline.scheduler import PipelineScheduler

from repro.errors import ConfigurationError
from repro.hwcost.model import MechanismCostModel
from repro.pipeline.stages import SUITE_MECHANISMS
from repro.pwcet import EstimatorConfig
from repro.pwcet.estimator import TARGET_EXCEEDANCE
from repro.reliability import MECHANISMS
from repro.suite import EVALUATED_BENCHMARKS
from repro.sweep.grid import (DEFAULT_PFAILS, SweepCell, geometry_grid,
                              sweep_cells)

#: Mechanisms compared by the sweep (paper's three configurations).
SWEEP_MECHANISMS = tuple(mechanism.name for mechanism in MECHANISMS)


@dataclass(frozen=True)
class DesignPoint:
    """One (geometry, pfail, mechanism) point of the design space.

    ``mean_gain`` is the paper's gain notion — pWCET reduction versus
    the unprotected cache *of the same cell*, averaged over the
    benchmark suite.  ``mean_pwcet`` is the absolute average pWCET in
    cycles, comparable across geometries.  ``area_cells`` is the total
    silicon budget of the configuration in 6T-cell equivalents
    (baseline arrays plus the mechanism's hardening overhead).
    """

    cell: SweepCell
    mechanism: str
    mean_pwcet: float
    mean_gain: float
    area_cells: float
    area_overhead: float
    leakage_cells: float

    @property
    def geometry(self):
        return self.cell.geometry

    @property
    def pfail(self) -> float:
        return self.cell.pfail


@dataclass(frozen=True)
class FailedCell:
    """A grid cell a ``strict=False`` sweep could not complete.

    The cell emits no design points; ``benchmarks`` names the suite
    members that failed and ``reason`` carries the first failure's
    ``TypeName: message``.
    """

    cell: SweepCell
    benchmarks: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced."""

    points: tuple[DesignPoint, ...]
    benchmarks: tuple[str, ...]
    probability: float
    #: Planner counters summed over every estimation of the sweep.
    solver_totals: dict[str, float]
    #: Cells dropped by a ``strict=False`` partial run (grid order);
    #: empty on a complete sweep.
    failed: tuple[FailedCell, ...] = ()

    def cells(self) -> tuple[SweepCell, ...]:
        seen: dict[SweepCell, None] = {}
        for point in self.points:
            seen.setdefault(point.cell)
        return tuple(seen)

    def of_mechanism(self, mechanism: str) -> tuple[DesignPoint, ...]:
        return tuple(point for point in self.points
                     if point.mechanism == mechanism)


def pareto_front(points: tuple[DesignPoint, ...]
                 ) -> tuple[DesignPoint, ...]:
    """Non-dominated points of (hardware cost down, pWCET gain up).

    A point dominates another when it costs no more silicon and gains
    at least as much pWCET, strictly better in one of the two.  The
    front is returned cheapest-first.
    """
    front = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            if (other.area_cells <= candidate.area_cells
                    and other.mean_gain >= candidate.mean_gain
                    and (other.area_cells < candidate.area_cells
                         or other.mean_gain > candidate.mean_gain)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda point: (point.area_cells, -point.mean_gain))
    return tuple(front)


def _cell_points(cell: SweepCell, results,
                 mechanisms: tuple[str, ...] = SWEEP_MECHANISMS
                 ) -> tuple[DesignPoint, ...]:
    """The per-mechanism design points of one completed grid cell.

    ``mechanisms`` restricts which configurations emit a point
    (``--only-cells``); the paper's full set by default.
    """
    cost_model = MechanismCostModel(cell.geometry)
    points = []
    for mechanism in MECHANISMS:
        if mechanism.name not in mechanisms:
            continue
        cost = cost_model.cost_of(mechanism)
        pwcets = [result.pwcet(mechanism.name) for result in results]
        gains = [result.gain(mechanism.name) for result in results]
        points.append(DesignPoint(
            cell=cell,
            mechanism=mechanism.name,
            mean_pwcet=statistics.mean(pwcets),
            mean_gain=statistics.mean(gains),
            area_cells=cost.total_cell_equivalents,
            area_overhead=cost.area_overhead_ratio,
            leakage_cells=cost.leakage_equivalents))
    return tuple(points)


def _selection(only_cells, pfails):
    """Normalise ``--only-cells`` filters into pfail → mechanism map.

    Each filter is a ``(mechanism | None, pfail | None)`` pair —
    ``None`` is a wildcard on that axis.  Returns the mechanisms (in
    presentation order) selected at every surviving pfail; pfails no
    filter matches are dropped from the grid entirely.  With no
    filters the whole grid is selected.
    """
    if not only_cells:
        return {pfail: SWEEP_MECHANISMS for pfail in pfails}
    filters = []
    for mechanism, pfail in only_cells:
        if mechanism is not None and mechanism not in SWEEP_MECHANISMS:
            raise ConfigurationError(
                f"--only-cells: unknown mechanism {mechanism!r} "
                f"(choose from {', '.join(SWEEP_MECHANISMS)})")
        filters.append((mechanism, pfail))
    selection = {}
    for pfail in pfails:
        mechanisms = tuple(
            name for name in SWEEP_MECHANISMS
            if any((want_mech is None or want_mech == name)
                   and (want_pfail is None or want_pfail == pfail)
                   for want_mech, want_pfail in filters))
        if mechanisms:
            selection[pfail] = mechanisms
    if not selection:
        raise ConfigurationError(
            "--only-cells selected no cells: no filter matches any "
            f"grid pfail ({', '.join(format(p, 'g') for p in pfails)})")
    return selection


def _estimation_mechanisms(point_mechanisms: tuple[str, ...]
                           ) -> tuple[str, ...]:
    """The mechanism set a filtered cell must actually estimate.

    The unprotected baseline is always included (gain and the
    fault-free WCET are defined against it), in the suite's canonical
    order — so a filtered cell's selected estimates are bit-identical
    to the full run's.
    """
    return tuple(name for name in SUITE_MECHANISMS
                 if name == "none" or name in point_mechanisms)


def _batch_pfails(selection):
    """Per-mechanism pfail axes for the batched distribution kernel.

    The FMM penalty points are pfail-independent, so the first cell of
    a geometry can compute its mechanism's *whole* selected pfail axis
    in one batched pass and prefill the cell store for the remaining
    grid columns.  Each mechanism's axis holds exactly the pfails at
    which the selection estimates it (``--only-cells`` filtering
    included — unselected cells are never computed, batched or not);
    single-pfail axes are dropped (nothing to amortise).
    """
    axes: dict[str, list[float]] = {}
    for pfail, point_mechanisms in selection.items():
        for mechanism in _estimation_mechanisms(point_mechanisms):
            axes.setdefault(mechanism, []).append(pfail)
    return {mechanism: tuple(pfails)
            for mechanism, pfails in axes.items() if len(pfails) > 1}


def _run_cell_suite(cell_config, benchmarks, workers, probability,
                    mechanisms, schedule, batch_pfails=None,
                    batch_geometries=None, strict=True, retry=None):
    """One cell's suite run, memo-bypassing when mechanism-filtered.

    The runner memo keys results by (benchmark, config, probability)
    only — a subset-mechanism result must never land there, or later
    full-grid drivers would read estimates with missing mechanisms.
    Filtered cells therefore go straight to the pipeline.  With
    ``strict=False`` failed benchmarks come back as
    :class:`~repro.experiments.runner.FailedBenchmark` entries.
    """
    from repro.experiments.runner import FailedBenchmark, run_suite

    if tuple(mechanisms) == SUITE_MECHANISMS:
        return run_suite(cell_config, benchmarks=benchmarks,
                         workers=workers, target_probability=probability,
                         schedule=schedule, batch_pfails=batch_pfails,
                         batch_geometries=batch_geometries,
                         strict=strict, retry=retry)
    from repro.pipeline.resilience import TaskFailure
    from repro.pipeline.stages import suite_pipeline

    if workers is None:
        workers = cell_config.workers
    computed = suite_pipeline(tuple(benchmarks), cell_config, probability,
                              workers=workers, schedule=schedule,
                              mechanisms=mechanisms,
                              batch_pfails=batch_pfails,
                              batch_geometries=batch_geometries,
                              strict=strict, retry=retry)
    return [FailedBenchmark(name=name, failure=computed[name])
            if isinstance(computed[name], TaskFailure)
            else computed[name]
            for name in benchmarks]


def _geometry_groups(geometries):
    """The grid's line-size groups, in first-appearance order.

    Geometries of one group share the memory-block stream of every
    CFG (``block_of`` depends only on the line size), which is what
    the stacked classification kernel batches over — and what makes
    the group the right pool fan-out unit: all of a group's
    classification store keys stay inside one task, so parallel
    sweeps do the same store traffic as sequential ones.
    """
    groups: dict[int, list] = {}
    for geometry in geometries:
        groups.setdefault(geometry.block_bytes, []).append(geometry)
    return tuple(tuple(group) for group in groups.values())


def _inner_width(group_count: int, cell_workers: int, workers) -> int:
    """Benchmark fan-out width inside each concurrently-running group.

    Width not consumed by the group fan-out goes to benchmark fan-out
    inside each group (bit-identical either way); an explicit
    ``workers`` request asks for at least that inner width — but the
    *product* of concurrent groups × inner workers is capped at
    ``cell_workers``, so a wide grid can never oversubscribe the
    requested budget (the pre-cap formula divided by the geometry
    count and multiplied across groups).
    """
    concurrent = min(group_count, cell_workers)
    inner = max(workers or 1, cell_workers // concurrent)
    if concurrent * inner > cell_workers:
        inner = max(1, cell_workers // concurrent)
    return inner


def _run_cell_group(item):
    """Pool entry point: every cell of one line-size group, in order.

    Grouping keeps both reuse axes inside one process: the pfail axis
    (shared ILP objectives and classification tables of one geometry)
    and the geometry axis (one stacked fixpoint pair classifies the
    whole group; the sibling geometries' cells read the prefilled
    tables back through the shared in-memory store handles).
    ``inner_workers`` is the leftover pool width the group fan-out did
    not consume; > 1 fans benchmarks of each cell out a second level,
    so no requested worker idles.
    """
    (group, selection, benchmarks, config, probability,
     inner_workers, schedule, strict, retry) = item
    from repro.experiments.runner import fresh_results

    batch_pfails = _batch_pfails(selection) if schedule == "cell" else None
    batch_geometries = group \
        if schedule == "cell" and len(group) > 1 else None
    cells = []
    with fresh_results():
        for geometry in group:
            for pfail, point_mechanisms in selection.items():
                cell_config = replace(config, geometry=geometry,
                                      pfail=pfail, workers=1)
                results = _run_cell_suite(
                    cell_config, benchmarks, inner_workers, probability,
                    _estimation_mechanisms(point_mechanisms), schedule,
                    batch_pfails, batch_geometries, strict, retry)
                cells.append((SweepCell(geometry=geometry, pfail=pfail),
                              results))
    return cells


def run_sweep(geometries=None, *,
              pfails: tuple[float, ...] = DEFAULT_PFAILS,
              benchmarks: tuple[str, ...] = EVALUATED_BENCHMARKS,
              config: EstimatorConfig | None = None,
              workers: int | None = None,
              cell_workers: int = 1,
              on_cell=None,
              only_cells=None,
              schedule: str = "cell",
              probability: float = TARGET_EXCEEDANCE,
              strict: bool = True,
              retry: RetryPolicy | None = None,
              pipeline_stats=None) -> SweepResult:
    """Estimate the whole suite at every grid cell.

    ``config`` carries the non-swept parameters (timing model, solver
    mode, cache selector, default worker width); its geometry and
    pfail are overridden per cell.  ``workers`` fans *benchmarks* of
    one cell over a pool (sequential cell order); ``cell_workers > 1``
    fans whole line-size groups of cells out instead (the stacked
    classification kernel's batching unit), with the persistent stores
    as the cross-process dedup.  ``on_cell`` is
    invoked as ``on_cell(cell, points, completed, total)`` for every
    finished cell — in grid order sequentially, in completion order
    under ``cell_workers`` — so callers can stream the report.

    ``only_cells`` (a sequence of ``(mechanism | None, pfail | None)``
    filters, ``None`` wildcarding an axis) restricts the sweep to the
    matching (mechanism, pfail) cells: unmatched pfails leave the
    grid, unmatched mechanisms of surviving cells are neither
    estimated nor reported — but every selected point and Pareto front
    section is bit-identical to the full run's.  ``schedule`` selects
    the estimation DAG shape per cell (see
    :func:`~repro.experiments.runner.run_suite`).

    The sweep runs inside :func:`~repro.experiments.runner
    .fresh_results`, so its solver totals describe exactly the work it
    performed — results memoised by earlier drivers in the same
    process carry *their* planner counters and would otherwise be
    double-counted.  Cross-run reuse is the persistent stores' job,
    and that one is exact (store hits are counted by the estimator
    that makes them).

    Resilience: transient faults (killed workers, broken pools) are
    retried under ``retry`` (default policy).  ``strict=False`` keeps
    the sweep alive past a permanently-failing cell: the cell emits no
    design points and is listed in ``SweepResult.failed`` (the report
    annotates it) while every other cell completes normally.
    ``pipeline_stats`` (a :class:`~repro.pipeline.scheduler
    .PipelineStats`) scopes the driving scheduler's run — retry /
    failure ledger and remote-store counters included — so the CLI
    can surface degradation notes for sweeps like it does for suites.
    """
    from repro.experiments.runner import (FailedBenchmark, fresh_results,
                                          solver_totals)

    if geometries is None:
        geometries = geometry_grid()
    if config is None:
        config = EstimatorConfig()
    geometries = tuple(geometries)
    selection = _selection(only_cells, tuple(pfails))
    pfails = tuple(selection)
    cells = sweep_cells(geometries, pfails)
    points_by_cell: dict[SweepCell, tuple[DesignPoint, ...]] = {}
    results_by_cell: dict[SweepCell, list] = {}
    failed_by_cell: dict[SweepCell, FailedCell] = {}
    completed = 0

    def finish(cell, results):
        nonlocal completed
        completed += 1
        complete = [result for result in results
                    if not isinstance(result, FailedBenchmark)]
        broken = [result for result in results
                  if isinstance(result, FailedBenchmark)]
        if broken:
            # The cell's points would silently average over a partial
            # benchmark set — drop the cell and annotate instead.
            failed_by_cell[cell] = FailedCell(
                cell=cell,
                benchmarks=tuple(result.name for result in broken),
                reason=broken[0].failure.error)
            points_by_cell[cell] = ()
        else:
            points_by_cell[cell] = _cell_points(cell, complete,
                                                selection[cell.pfail])
        results_by_cell[cell] = complete
        if on_cell is not None:
            on_cell(cell, points_by_cell[cell], completed, len(cells))

    groups = _geometry_groups(geometries)
    group_of = {geometry: group for group in groups for geometry in group}
    if cell_workers > 1 and len(groups) > 1:
        inner_workers = _inner_width(len(groups), cell_workers, workers)
        scheduler = PipelineScheduler(
            workers=cell_workers,
            retry=retry if retry is not None else DEFAULT_RETRY_POLICY,
            strict=strict)
        for position, group in enumerate(groups):
            scheduler.add(
                f"cells:{position}", _run_cell_group,
                args=((group, selection, benchmarks, config,
                       probability, inner_workers, schedule, strict,
                       retry),),
                stage="sweep-cells", pool=True)

        def group_done(_key, group_cells, _completed, _total):
            for cell, results in group_cells:
                finish(cell, results)

        scheduler.run(stats=pipeline_stats, on_task=group_done)
    else:
        if workers is None and cell_workers > 1:
            # A single-group grid leaves nothing to fan out at group
            # level; spend the requested width on benchmarks instead
            # of silently dropping it.
            workers = cell_workers
        scheduler = PipelineScheduler(
            workers=1,
            retry=retry if retry is not None else DEFAULT_RETRY_POLICY,
            strict=strict)
        batch_pfails = (_batch_pfails(selection) if schedule == "cell"
                        else None)
        for position, cell in enumerate(cells):
            cell_config = replace(config, geometry=cell.geometry,
                                  pfail=cell.pfail)
            cell_group = group_of[cell.geometry]
            batch_geometries = cell_group \
                if schedule == "cell" and len(cell_group) > 1 else None

            def run_cell(cell=cell, cell_config=cell_config,
                         batch_geometries=batch_geometries):
                mechanisms = _estimation_mechanisms(selection[cell.pfail])
                return (cell, _run_cell_suite(cell_config, benchmarks,
                                              workers, probability,
                                              mechanisms, schedule,
                                              batch_pfails,
                                              batch_geometries, strict,
                                              retry))

            scheduler.add(f"cell:{position}", run_cell, stage="sweep-cell")

        def cell_done(_key, value, _completed, _total):
            finish(*value)

        with fresh_results():
            scheduler.run(stats=pipeline_stats, on_task=cell_done)

    # Deterministic assembly: grid order, regardless of completion order.
    points: list[DesignPoint] = []
    all_results = []
    for cell in cells:
        points.extend(points_by_cell[cell])
        all_results.extend(results_by_cell[cell])
    return SweepResult(points=tuple(points), benchmarks=tuple(benchmarks),
                       probability=probability,
                       solver_totals=solver_totals(all_results),
                       failed=tuple(failed_by_cell[cell] for cell in cells
                                    if cell in failed_by_cell))
