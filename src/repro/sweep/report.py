"""Rendering sweep results: the grid table and the Pareto fronts."""

from __future__ import annotations

from repro.sweep.service import DesignPoint, SweepResult, pareto_front

#: Mechanisms that cost extra silicon; ``none`` is the per-cell
#: reference (gain 0 by construction) and stays out of the fronts.
FRONT_MECHANISMS = ("srb", "rw")


def _point_row(point: DesignPoint) -> str:
    geometry = point.geometry
    return (f"{geometry.total_bytes:6d}B {geometry.sets:4d}x"
            f"{geometry.ways}x{geometry.block_bytes:<3d} "
            f"{point.pfail:8.0e} {point.mechanism:>5s} "
            f"{point.mean_pwcet:12.0f} {point.mean_gain:7.1%} "
            f"{point.area_cells:10.0f} {point.area_overhead:7.2%}")


_HEADER = (f"{'size':>7s} {'SxWxB':>10s} {'pfail':>8s} {'mech':>5s} "
           f"{'mean pWCET':>12s} {'gain':>7s} {'cells':>10s} "
           f"{'area+':>7s}")


def format_sweep_table(result: SweepResult) -> str:
    """The full grid, one row per (cell, mechanism)."""
    lines = [
        f"Sweep over {len(result.cells())} cells x "
        f"{len(result.benchmarks)} benchmarks "
        f"(pWCET at {result.probability:.0e})",
        _HEADER,
        "-" * len(_HEADER),
    ]
    lines.extend(_point_row(point) for point in result.points)
    return "\n".join(lines)


def format_pareto_fronts(result: SweepResult) -> str:
    """Pareto fronts of pWCET gain vs hardware cost.

    One front per (mechanism, pfail): the geometry is the design
    choice being traded off, while the cell failure rate is an
    environment assumption — mixing pfails in one front would let a
    pessimistic-environment point "dominate" an optimistic one.
    """
    pfails = sorted({point.pfail for point in result.points})
    sections = []
    for mechanism in FRONT_MECHANISMS:
        for pfail in pfails:
            candidates = tuple(point
                               for point in result.of_mechanism(mechanism)
                               if point.pfail == pfail)
            if not candidates:
                # A filtered sweep (--only-cells) may have estimated
                # this pfail for other mechanisms only; an empty front
                # section would say nothing.
                continue
            front = pareto_front(candidates)
            lines = [f"Pareto front — {mechanism} at pfail={pfail:g} "
                     f"(gain vs cell budget, {len(front)} of "
                     f"{len(candidates)} points)",
                     _HEADER,
                     "-" * len(_HEADER)]
            lines.extend(_point_row(point) for point in front)
            sections.append("\n".join(lines))
    return "\n\n".join(sections)


def format_sweep_report(result: SweepResult) -> str:
    """Grid table + Pareto fronts + solver/analysis-reuse summary."""
    totals = result.solver_totals
    solver = (
        f"solver: {totals.get('ilp_solved', 0):.0f} ILPs solved, "
        f"{totals.get('store_hits', 0):.0f} served by the persistent "
        f"cache (hit rate {totals.get('store_hit_rate', 0.0):.1%}), "
        f"{totals.get('dedup_hits', 0):.0f} in-process dedup hits, "
        f"{totals.get('pruned_empty', 0):.0f}+"
        f"{totals.get('pruned_structural', 0):.0f} cells pruned "
        f"(empty/structural)")
    # The analysis line reports engine-invariant work (tables built,
    # store hits) rather than physical fixpoints: the batching
    # orchestration is identical under every REPRO_ANALYSIS_ENGINE, so
    # the report stays byte-identical across engines while the stacked
    # kernel's fixpoint savings show up in the per-run solver_totals
    # (and the geometry-batch benchmark asserts them).
    analysis = (
        f"analysis: {totals.get('tables_built', 0):.0f} classification "
        f"tables built, {totals.get('classify_store_hits', 0):.0f} "
        f"served by the persistent cache")
    summary = solver + "\n" + analysis
    if totals.get("cells_from_store", 0) > 0:
        # Only present when the incremental plan pass actually served
        # finished cells, so cold-run reports stay byte-identical to
        # the pre-cell-store format.
        summary += (f"\ncells: {totals['cells_from_store']:.0f} "
                    f"(mechanism, pfail) cells served by the persistent "
                    f"cell store")
    if totals.get("dist_batched_rows", 0) > 0:
        # Same presence rule: the line only appears when the batched
        # distribution kernel actually prefilled sibling pfail rows.
        summary += (f"\ndistribution: {totals['dist_batched_rows']:.0f} "
                    f"pfail rows prefilled by the batched kernel")
    if totals.get("classify_batched_rows", 0) > 0:
        # Presence-gated like the distribution line: only when the
        # stacked classification kernel actually prefilled sibling
        # geometries' tables.
        summary += (f"\nclassification: "
                    f"{totals['classify_batched_rows']:.0f} sibling "
                    f"geometries prefilled by the stacked kernel in "
                    f"{totals.get('geometry_groups', 0):.0f} batched "
                    f"line-size group runs")
    sections = [format_sweep_table(result),
                format_pareto_fronts(result)]
    if result.failed:
        # Presence-gated like the summary extras: a complete sweep's
        # report is byte-identical to the pre-resilience format.
        lines = [f"FAILED cells ({len(result.failed)} of "
                 f"{len(result.failed) + len(result.cells())} — "
                 f"partial sweep):"]
        lines.extend(
            f"  {failure.cell.label}: "
            f"{', '.join(failure.benchmarks)} failed — {failure.reason}"
            for failure in result.failed)
        sections.append("\n".join(lines))
    sections.append(summary)
    return "\n\n".join(sections)
