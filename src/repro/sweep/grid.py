"""Geometry grids for design-stage exploration sweeps.

The paper evaluates one fixed instruction cache (1 KB, 4-way, 16 B
lines).  The sweep service fans the whole estimation pipeline out over
a (geometry × pfail) grid so a hardware designer can compare fault
tolerance mechanisms *across* cache organisations — the pre-silicon
exploration workload of Lee et al. (arXiv:2302.10288).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import CacheGeometry
from repro.errors import ConfigurationError

#: Default axes: 4 capacities x 2 associativities x 2 line sizes
#: = 16 geometries around the paper's 1 KB / 4-way / 16 B point.
DEFAULT_SIZES = (512, 1024, 2048, 4096)
DEFAULT_WAYS = (2, 4)
DEFAULT_LINES = (16, 32)
DEFAULT_PFAILS = (1e-4,)


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a cache organisation plus a cell failure rate."""

    geometry: CacheGeometry
    pfail: float

    @property
    def label(self) -> str:
        return (f"{self.geometry.total_bytes}B/"
                f"{self.geometry.ways}w/{self.geometry.block_bytes}B"
                f"@pfail={self.pfail:g}")


def geometry_grid(sizes: tuple[int, ...] = DEFAULT_SIZES,
                  ways: tuple[int, ...] = DEFAULT_WAYS,
                  lines: tuple[int, ...] = DEFAULT_LINES
                  ) -> tuple[CacheGeometry, ...]:
    """The cross product of the axes, dropping infeasible combinations.

    A combination is infeasible when the capacity does not divide into
    the requested ways and line size (e.g. 512 B in 8 ways of 128 B
    lines); those are skipped silently so callers can pass coarse
    axis lists.
    """
    geometries = []
    for size in sizes:
        for way_count in ways:
            for line in lines:
                try:
                    geometries.append(
                        CacheGeometry.from_size(size, way_count, line))
                except ConfigurationError:
                    continue
    if not geometries:
        raise ConfigurationError(
            f"no feasible geometry in sizes={sizes} ways={ways} "
            f"lines={lines}")
    return tuple(geometries)


def sweep_cells(geometries: tuple[CacheGeometry, ...],
                pfails: tuple[float, ...] = DEFAULT_PFAILS
                ) -> tuple[SweepCell, ...]:
    """All (geometry, pfail) cells, geometry-major.

    Geometry-major order maximises persistent-cache reuse: consecutive
    cells that differ only in ``pfail`` share every ILP objective (the
    failure rate touches only the probability weighting, never the
    flow polytope), so all but the first pfail column are answered
    from the solve store.
    """
    return tuple(SweepCell(geometry=geometry, pfail=pfail)
                 for geometry in geometries for pfail in pfails)
