"""Must analysis: which fetches are guaranteed cache hits.

This is the dict-based *reference oracle*: one fixpoint per requested
associativity over per-set ``{block: age}`` states.  The production
path is the vectorised engine (:mod:`repro.analysis.vectorized`),
which answers every associativity from a single fixpoint; the two are
asserted equivalent by ``tests/test_analysis_vectorized.py``.
"""

from __future__ import annotations

from repro.analysis import acs
from repro.analysis.fixpoint import solve
from repro.analysis.references import Reference, all_references
from repro.cache import CacheGeometry
from repro.cfg import CFG
from repro.errors import AnalysisError


class MustAnalysis:
    """Fixpoint Must analysis at a given (possibly degraded) associativity.

    ``assoc`` defaults to the geometry's way count; passing a smaller
    value analyses every set as if it had that many working ways —
    which, by LRU set independence, gives for each set exactly the
    classification it would have if only *it* were degraded.
    An ``assoc`` of 0 models an entirely faulty set: nothing ever hits.
    """

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 assoc: int | None = None) -> None:
        if assoc is None:
            assoc = geometry.ways
        if assoc < 0 or assoc > geometry.ways:
            raise AnalysisError(
                f"associativity {assoc} out of range [0, {geometry.ways}]")
        self._cfg = cfg
        self._geometry = geometry
        self._assoc = assoc
        self._references = all_references(cfg, geometry)
        if assoc == 0:
            self._in_states: dict[int, acs.CacheState] = {
                block_id: {} for block_id in cfg.block_ids()}
        else:
            self._in_states = solve(
                cfg,
                initial={},  # cold cache: nothing is guaranteed cached
                join=self._join,
                transfer=self._transfer,
                equal=acs.cache_state_equal)

    @property
    def assoc(self) -> int:
        return self._assoc

    def references(self, block_id: int) -> tuple[Reference, ...]:
        return self._references[block_id]

    def in_state(self, block_id: int) -> acs.CacheState:
        """Converged ACS at block entry (read-only)."""
        return self._in_states[block_id]

    def guaranteed_hits(self, block_id: int) -> tuple[bool, ...]:
        """Per-instruction always-hit verdicts for one block.

        Replays the block's fetches from the converged IN state; a
        fetch whose memory block is already in the Must ACS of its set
        is guaranteed to hit on every execution.
        """
        state = acs.copy_cache_state(self._in_states[block_id])
        verdicts = []
        for reference in self._references[block_id]:
            set_state = state.get(reference.set_index, {})
            verdicts.append(reference.memory_block in set_state)
            state[reference.set_index] = acs.must_update(
                set_state, reference.memory_block, self._assoc)
        return tuple(verdicts)

    # -- dataflow plumbing --------------------------------------------
    def _transfer(self, block_id: int,
                  state: acs.CacheState) -> acs.CacheState:
        state = dict(state)  # per-set dicts are replaced, never mutated
        for reference in self._references[block_id]:
            state[reference.set_index] = acs.must_update(
                state.get(reference.set_index, {}),
                reference.memory_block, self._assoc)
        return state

    @staticmethod
    def _join(left: acs.CacheState, right: acs.CacheState) -> acs.CacheState:
        # Intersection join: a set missing on either side joins to empty.
        return {
            set_index: joined
            for set_index in (set(left) & set(right))
            if (joined := acs.must_join(left[set_index], right[set_index]))
        }
