"""Abstract cache states (ACS) for the Must and May analyses.

A per-set abstract state maps memory-block numbers to abstract LRU
ages in ``[0, associativity)``:

* Must: the age is an **upper bound** of the concrete age on every
  path — a block present in the state is guaranteed cached;
* May: the age is a **lower bound** — a block absent from the state is
  guaranteed *not* cached.

The update and join functions below are the classic definitions of
Ferdinand & Wilhelm, specialised to LRU.  Whole-cache states are plain
dicts ``set_index -> {block: age}`` so the (completely independent)
sets can be copied lazily.
"""

from __future__ import annotations

#: Per-set abstract state: memory block -> abstract age.
SetState = dict[int, int]
#: Whole-cache abstract state: set index -> per-set state.  Sets with
#: no tracked block are omitted.
CacheState = dict[int, SetState]


# ----------------------------------------------------------------------
# Must analysis (ages are upper bounds; join = intersection with max)
# ----------------------------------------------------------------------
def must_update(state: SetState, block: int, assoc: int) -> SetState:
    """Access ``block`` in a Must per-set state of ``assoc`` ways.

    The accessed block moves to age 0.  Blocks whose upper-bound age
    was younger than the accessed block's old bound may be pushed down
    one position; blocks at or below it are unaffected (LRU).  Blocks
    reaching age >= assoc are no longer guaranteed cached and drop out.
    """
    if assoc <= 0:
        return {}
    old_age = state.get(block, assoc)  # absent = may come from memory
    new_state: SetState = {block: 0}
    for other, age in state.items():
        if other == block:
            continue
        new_age = age + 1 if age < old_age else age
        if new_age < assoc:
            new_state[other] = new_age
    return new_state


def must_join(left: SetState, right: SetState) -> SetState:
    """Join of two Must states: blocks guaranteed in both, oldest age."""
    if not left or not right:
        return {}
    if len(right) < len(left):
        left, right = right, left
    return {block: max(age, right[block])
            for block, age in left.items() if block in right}


# ----------------------------------------------------------------------
# May analysis (ages are lower bounds; join = union with min)
# ----------------------------------------------------------------------
def may_update(state: SetState, block: int, assoc: int) -> SetState:
    """Access ``block`` in a May per-set state of ``assoc`` ways.

    The accessed block gets age 0.  Another block can keep its
    lower-bound age only if the accessed block may have been at least
    as young (then nothing below it ages); otherwise its lower bound
    increases.  Blocks whose lower bound reaches assoc are evicted on
    every path and drop out.
    """
    if assoc <= 0:
        return {}
    old_age = state.get(block)
    new_state: SetState = {block: 0}
    for other, age in state.items():
        if other == block:
            continue
        if old_age is not None and old_age <= age:
            new_age = age
        else:
            new_age = age + 1
        if new_age < assoc:
            new_state[other] = new_age
    return new_state


def may_join(left: SetState, right: SetState) -> SetState:
    """Join of two May states: union of blocks, youngest age."""
    if not left:
        return dict(right)
    if not right:
        return dict(left)
    joined = dict(left)
    for block, age in right.items():
        existing = joined.get(block)
        if existing is None or age < existing:
            joined[block] = age
    return joined


# ----------------------------------------------------------------------
# Whole-cache helpers
# ----------------------------------------------------------------------
#: Shared read-only empty per-set state (never mutated; compared only).
_EMPTY: SetState = {}


def cache_state_equal(left: CacheState, right: CacheState) -> bool:
    """Equality that ignores empty per-set entries.

    Iterates the two dicts directly instead of materialising their key
    union — this runs once per worklist pop, so the throwaway set was
    a measurable share of the fixpoint's allocation traffic.
    """
    for set_index, left_state in left.items():
        if right.get(set_index, _EMPTY) != left_state:
            return False
    for set_index, right_state in right.items():
        if right_state and set_index not in left:
            return False
    return True


def copy_cache_state(state: CacheState) -> CacheState:
    """Shallow-ish copy: per-set dicts are copied, ages are immutable."""
    return {set_index: dict(set_state)
            for set_index, set_state in state.items()}
