"""Static instruction-cache analysis (abstract interpretation).

This package re-implements the cache analysis the paper builds on
(Theiling/Ferdinand-style abstract interpretation, used by Heptane):

* **Must** analysis — upper bounds on LRU ages; a reference whose block
  is guaranteed cached is *always-hit*;
* **May** analysis — lower bounds on LRU ages; a reference whose block
  cannot be cached is *always-miss*;
* **Persistence** — per-loop conflict counting; a reference whose
  conflict set fits in the set's (possibly degraded) associativity is
  *first-miss* in the outermost loop where it fits.

All analyses are parameterised by the per-set associativity, which is
how faulty ways enter the picture: a set with ``f`` faulty blocks is a
set analysed at associativity ``W - f``.
"""

from repro.analysis.chmc import Chmc, Classification, GLOBAL_SCOPE
from repro.analysis.references import Reference, block_references
from repro.analysis.must import MustAnalysis
from repro.analysis.may import MayAnalysis
from repro.analysis.persistence import PersistenceAnalysis
from repro.analysis.classify import (AnalysisStats, CacheAnalysis,
                                     ClassificationTable)
from repro.analysis.store import ClassificationStore
from repro.analysis.vectorized import AgeVectorEngine

__all__ = [
    "Chmc",
    "Classification",
    "GLOBAL_SCOPE",
    "Reference",
    "block_references",
    "MustAnalysis",
    "MayAnalysis",
    "PersistenceAnalysis",
    "AnalysisStats",
    "CacheAnalysis",
    "ClassificationTable",
    "ClassificationStore",
    "AgeVectorEngine",
]
