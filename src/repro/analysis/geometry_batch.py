"""Geometry-batched classification: one stacked fixpoint per line size.

The sweep's geometry axis re-analyses the *same* CFG over and over:
``block_of(address)`` depends on the geometry only through the line
size, so every geometry of one line-size group observes the identical
memory-block reference stream — only the set mapping (``sets``) and
the absent sentinel (``ways``) differ.  LRU abstract interpretation is
set-independent, and the flat age-vector encoding of
:class:`~repro.analysis.vectorized.AgeVectorEngine` makes that
independence literal: transfers and joins are elementwise and never
mix set segments.

:class:`StackedAgeVectorEngine` therefore lays *all* geometries of a
group out as disjoint segment ranges of ONE concatenated age vector —
a block-diagonal product state::

    [ g0.set0 | g0.set1 | ... | g1.set0 | ... | gN.setS ]

— and runs a single Must/May fixpoint pair over it.  Each geometry's
segments carry that geometry's own sentinel, every reference applies
one gather/scatter update covering all stacked geometries at once, and
the worklist propagates whole state vectors (the wide fused transfer
amortises what per-set bookkeeping would save — see
:meth:`StackedAgeVectorEngine._solve`).  Because no operation ever
crosses a segment boundary,
the stacked least fixpoint restricted to geometry ``g`` *is* ``g``'s
own least fixpoint — per-geometry ages fall out by slicing
(:meth:`StackedAgeVectorEngine.geometry_slice`), byte-identical to a
per-geometry engine run, and PR 4's associativity thresholding still
answers every degraded associativity of every stacked geometry from
the one pair.

:func:`grouped_analysis` is the classify stage's entry point: it
builds one :class:`~repro.analysis.classify.CacheAnalysis` per
geometry of the group — all sharing one
:class:`~repro.analysis.classify.AnalysisStats`, one loop forest, one
stacked engine (under the default ``batch`` engine) and one group-wide
SRB hit set — computes every geometry's required tables, and writes
them through the persistent
:class:`~repro.analysis.store.ClassificationStore` under each
geometry's own content address.  Sibling geometries' classify stages
then decode their tables as warm store hits instead of running
fixpoints.  Under ``REPRO_ANALYSIS_ENGINE=vector`` (or ``dict``) the
*same* orchestration runs with per-geometry engines — the knob selects
only the kernel, so store traffic, tables and reports stay
byte-identical across engines (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.classify import AnalysisStats, CacheAnalysis
from repro.analysis.fixpoint import solve
from repro.analysis.references import Reference, all_references
from repro.analysis.vectorized import AgeVectorEngine
from repro.cache import CacheGeometry
from repro.cfg import CFG, find_loops
from repro.errors import AnalysisError


class BatchedAnalysisStats(AnalysisStats):
    """The shared counters of one batched line-size group.

    Adds the batching counters to the flat dict the drivers
    aggregate.  Only batched groups ever instantiate this class, so
    the keys are presence-gated exactly like ``dist_batched_rows``:
    an unbatched benchmark's counter dict stays key-identical to the
    reference schedule's.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Sibling geometries served alongside the lead (tables + SRB
        #: hit sets prefilled into the classification store).
        self.classify_batched_rows = 0
        #: Line-size groups this stage batched (always 1 per stage;
        #: sums to the sweep-wide group count).
        self.geometry_groups = 0

    def as_dict(self) -> dict[str, float]:
        return {
            **super().as_dict(),
            "classify_batched_rows": self.classify_batched_rows,
            "geometry_groups": self.geometry_groups,
        }


class StackedAgeVectorEngine(AgeVectorEngine):
    """Must/May ages of several same-line-size geometries in one pair.

    ``geometries`` must share ``block_bytes`` (identical memory-block
    stream); ``references`` maps each geometry to its
    :func:`~repro.analysis.references.all_references` result.  The
    layout (block-diagonal across geometries), the entry state (each
    geometry's own sentinel), the transfer kernel (one gather/scatter
    covering every stacked geometry per reference) and the fixpoint
    strategy (dense whole-vector propagation — see :meth:`_solve`) are
    specialised; results and the age/threshold contract are inherited.
    """

    def __init__(self, cfg: CFG, geometries,
                 references: dict[CacheGeometry,
                                  dict[int, tuple[Reference, ...]]]) -> None:
        geometries = tuple(geometries)
        if not geometries:
            raise AnalysisError("stacked engine needs at least one geometry")
        line_sizes = {geometry.block_bytes for geometry in geometries}
        if len(line_sizes) != 1:
            raise AnalysisError(
                f"stacked geometries must share one line size, got "
                f"{sorted(line_sizes)}")
        if len(set(geometries)) != len(geometries):
            raise AnalysisError("stacked geometries must be distinct")
        self._cfg = cfg
        self._geometries = geometries
        self.fixpoints_run = 0
        self.segments_blanked = 0
        count = len(geometries)
        max_ways = max(geometry.ways for geometry in geometries)
        self._ways = max_ways
        self._dtype = np.int8 if max_ways < 127 else np.int32

        # The whole layout derives from the LEAD geometry's reference
        # stream: every stacked geometry shares the line size, so the
        # memory-block sequence is identical and a sibling's set index
        # is just ``memory_block & (sets - 1)``.  Block-diagonal
        # layout: each geometry contributes exactly the segments its
        # own AgeVectorEngine would build (sets sorted, residents
        # sorted), shifted by the running global offset — built from
        # the program's *distinct* blocks, not every fetch.
        lead_refs = references[geometries[0]]
        distinct: set[int] = set()
        for block_refs in lead_refs.values():
            for reference in block_refs:
                distinct.add(reference.memory_block)
        masks = [geometry.sets - 1 for geometry in geometries]
        flat_of: list[dict[int, int]] = []
        bounds: list[dict[int, tuple[int, int]]] = []
        fills: list[tuple[int, int, int]] = []
        offset = 0
        for geometry, mask in zip(geometries, masks):
            blocks_per_set: dict[int, list[int]] = {}
            for memory_block in distinct:
                blocks_per_set.setdefault(memory_block & mask,
                                          []).append(memory_block)
            flat: dict[int, int] = {}
            bound: dict[int, tuple[int, int]] = {}
            geometry_start = offset
            for set_index in sorted(blocks_per_set):
                resident = sorted(blocks_per_set[set_index])
                bound[set_index] = (offset, offset + len(resident))
                for memory_block in resident:
                    flat[memory_block] = offset
                    offset += 1
            flat_of.append(flat)
            bounds.append(bound)
            fills.append((geometry_start, offset, geometry.ways))
        self._size = offset
        initial = np.empty(self._size, dtype=self._dtype)
        for start, stop, ways in fills:
            initial[start:stop] = ways
        self._initial = initial

        # Ages are reference-major: reference i of a CFG block owns
        # slots i*count .. i*count+count-1, so a geometry's recorded
        # ages are the strided slice [position::count].  Repeat flags
        # are per-geometry — a fetch can be a same-set repeat under one
        # set mapping and a fresh access under another — EXCEPT that a
        # fetch of the same memory block as the immediately preceding
        # fetch is a repeat under *every* set mapping (same block, same
        # set, nothing in between), so runs of sequential same-line
        # fetches collapse before the per-geometry work even starts.
        # The combined op of a reference fuses the non-repeat
        # geometries' updates into one gather/scatter over precomputed
        # index arrays (span/rep memo keyed by the participating
        # (geometry, set) signature — the arrays only depend on which
        # segments take part, not on the memory block).
        self._combined: dict[int, tuple] = {}
        self._slot_counts: dict[int, int] = {}
        span_memo: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        for block_id, block_refs in lead_refs.items():
            combined = []
            previous: list[dict[int, int]] = [{} for _ in geometries]
            previous_block = None
            for index_in_block, reference in enumerate(block_refs):
                memory_block = reference.memory_block
                if memory_block == previous_block:
                    continue  # a repeat in every stacked geometry
                previous_block = memory_block
                heads: list[int] = []
                slots: list[int] = []
                signature: list[tuple[int, int]] = []
                for position in range(count):
                    set_index = memory_block & masks[position]
                    if previous[position].get(set_index) == memory_block:
                        continue  # repeat under this set mapping only
                    previous[position][set_index] = memory_block
                    heads.append(flat_of[position][memory_block])
                    slots.append(index_in_block * count + position)
                    signature.append((position, set_index))
                if not heads:
                    continue
                key = tuple(signature)
                memo = span_memo.get(key)
                if memo is None:
                    span = np.concatenate([
                        np.arange(*bounds[position][set_index],
                                  dtype=np.intp)
                        for position, set_index in key])
                    rep = np.concatenate([
                        np.full(bounds[position][set_index][1]
                                - bounds[position][set_index][0],
                                slot, dtype=np.intp)
                        for slot, (position, set_index)
                        in enumerate(key)])
                    memo = span_memo[key] = (span, rep)
                combined.append((np.asarray(heads, dtype=np.intp),
                                 memo[0], memo[1],
                                 np.asarray(slots, dtype=np.intp)))
            self._slot_counts[block_id] = len(block_refs) * count
            self._combined[block_id] = tuple(combined)
        self._must_ages = None
        self._may_ages = None

    @property
    def geometries(self) -> tuple[CacheGeometry, ...]:
        return self._geometries

    def _initial_state(self) -> np.ndarray:
        return self._initial.copy()

    def _solve(self, join) -> dict[int, np.ndarray]:
        """Dense worklist: whole-vector joins plus the fused transfer.

        The base engine's per-set segment tracking pays off when a
        solo fixpoint is dragged along by a few slow sets; on the
        block-diagonal stacked state the bookkeeping would cross
        count× more segments per visit, while the fused transfer is
        already one gather/scatter per reference — so plain
        whole-vector propagation through the generic solver is the
        cheaper fixpoint here.  Same least fixpoint either way
        (property-tested against the per-geometry engines).
        """
        self.fixpoints_run += 1
        return solve(self._cfg, initial=self._initial_state(), join=join,
                     transfer=self._transfer, equal=np.array_equal)

    def _transfer_full(self, state: np.ndarray, block_id: int) -> None:
        """One gather/scatter per reference covers every geometry.

        Semantically identical to applying the per-geometry updates in
        sequence: the geometries' segment ranges are disjoint, so the
        fused elementwise ``seg += (seg < old)`` never mixes them, and
        a geometry where the access is at age 0 contributes only
        no-ops (``x < 0`` is everywhere false for ages).
        """
        for heads, span, rep, _slots in self._combined[block_id]:
            old = state[heads]
            values = state[span]
            np.add(values, values < old[rep], out=values, casting="unsafe")
            state[span] = values
            state[heads] = 0

    def _replay(self, in_states: dict[int, np.ndarray]
                ) -> dict[int, np.ndarray]:
        """Vectorised replay: record all stacked ages per reference.

        ``slots`` maps each participating geometry back to its
        reference-major position; repeats keep the pre-filled age 0,
        exactly like the base engine's per-op replay.
        """
        ages: dict[int, np.ndarray] = {}
        for block_id, combined in self._combined.items():
            state = in_states[block_id].copy()
            block_ages = np.zeros(self._slot_counts[block_id],
                                  dtype=self._dtype)
            for heads, span, rep, slots in combined:
                block_ages[slots] = state[heads]
                values = state[span]
                np.add(values, values < block_ages[slots][rep],
                       out=values, casting="unsafe")
                state[span] = values
                state[heads] = 0
            ages[block_id] = block_ages
        return ages

    def geometry_slice(self, position: int) -> "GeometrySlice":
        """The engine facade of one stacked geometry."""
        return GeometrySlice(self, position)


class GeometrySlice:
    """One geometry's view of a stacked engine.

    Drop-in for :class:`~repro.analysis.vectorized.AgeVectorEngine`
    where :class:`~repro.analysis.classify.CacheAnalysis` consumes it:
    ages are the strided slice of the stacked reference-major layout,
    and ``fixpoints_run`` reports the *shared* pair — the first
    analysis of a group to demand tables pays (and counts) the two
    stacked fixpoints, every sibling sees them already run.
    """

    def __init__(self, stack: StackedAgeVectorEngine,
                 position: int) -> None:
        self._stack = stack
        self._position = position
        self._count = len(stack.geometries)
        self._must: dict[int, np.ndarray] | None = None
        self._may: dict[int, np.ndarray] | None = None

    @property
    def fixpoints_run(self) -> int:
        return self._stack.fixpoints_run

    def must_ages(self) -> dict[int, np.ndarray]:
        if self._must is None:
            self._must = {
                block_id: ages[self._position::self._count]
                for block_id, ages in self._stack.must_ages().items()}
        return self._must

    def may_ages(self) -> dict[int, np.ndarray]:
        if self._may is None:
            self._may = {
                block_id: ages[self._position::self._count]
                for block_id, ages in self._stack.may_ages().items()}
        return self._may

    def guaranteed_hits(self, block_id: int, assoc: int) -> np.ndarray:
        return self.must_ages()[block_id] < assoc

    def possibly_cached(self, block_id: int, assoc: int) -> np.ndarray:
        return self.may_ages()[block_id] < assoc


class GroupSrbHits:
    """Lazily computed SRB hit set shared by a line-size group.

    The Shared Reliable Buffer is a 1-set/1-way cache: its Must
    analysis depends on the geometry only through the line size, so
    one fixpoint serves every stacked geometry.  Each geometry's
    :meth:`~repro.analysis.classify.CacheAnalysis.srb_always_hits`
    still performs its own store probe and write-through (the hit set
    is keyed per full geometry — see the note there), so store traffic
    is identical to the per-geometry path; only the fixpoint is
    shared.  The one fixpoint is counted into the group's shared stats
    on first demand.
    """

    def __init__(self, cfg: CFG, block_bytes: int,
                 stats: AnalysisStats) -> None:
        self._cfg = cfg
        self._block_bytes = block_bytes
        self._stats = stats
        self._hits: tuple[tuple[int, int], ...] | None = None

    def __call__(self) -> tuple[tuple[int, int], ...]:
        if self._hits is None:
            geometry = CacheGeometry(sets=1, ways=1,
                                     block_bytes=self._block_bytes)
            references = all_references(self._cfg, geometry)
            engine = AgeVectorEngine(self._cfg, geometry, references)
            self._hits = tuple(
                reference.key
                for block_id, refs in references.items()
                for reference, hit in zip(
                    refs, engine.guaranteed_hits(block_id, 1))
                if hit)
            self._stats.fixpoints_run += engine.fixpoints_run
        return self._hits


def grouped_analysis(cfg: CFG, geometries, mechanisms, *,
                     cache: str | None = None,
                     engine: str | None = None) -> CacheAnalysis:
    """Classify a whole line-size group; return the lead analysis.

    ``geometries`` is the group in batch order, lead (the requesting
    stage's own geometry) first.  Every geometry's required tables
    (each mechanism's degraded associativities at that geometry's own
    way count) plus the SRB hit set are computed and written through
    the persistent store under the geometry's own content addresses —
    so sibling stages decode them as warm hits.  All analyses share
    one :class:`~repro.analysis.classify.AnalysisStats` (the work is
    attributed to the producing stage) and one loop forest.

    The engine knob selects only the fixpoint kernel: ``batch`` (the
    default) runs one stacked pair plus one SRB fixpoint for the whole
    group, ``vector``/``dict`` run the per-geometry oracle engines —
    the orchestration (which tables are computed, in which order, with
    which store traffic) is identical, which is what keeps reports
    byte-identical across engines.
    """
    from repro.pipeline.stages import required_classifications

    geometries = tuple(geometries)
    cfg.validate()
    forest = find_loops(cfg)
    stats = BatchedAnalysisStats()
    stats.classify_batched_rows = len(geometries) - 1
    stats.geometry_groups = 1
    references = {geometry: all_references(cfg, geometry)
                  for geometry in geometries}
    if engine is None:
        engine = CacheAnalysis.selected_engine()
    analyses: dict[CacheGeometry, CacheAnalysis] = {}
    if engine == "batch":
        stacked = StackedAgeVectorEngine(cfg, geometries, references)
        srb_supplier = GroupSrbHits(cfg, geometries[0].block_bytes, stats)
        for position, geometry in enumerate(geometries):
            analyses[geometry] = CacheAnalysis(
                cfg, geometry, forest, cache=cache, engine=engine,
                references=references[geometry], stats=stats,
                vector_engine=stacked.geometry_slice(position),
                srb_supplier=srb_supplier)
    else:
        for geometry in geometries:
            analyses[geometry] = CacheAnalysis(
                cfg, geometry, forest, cache=cache, engine=engine,
                references=references[geometry], stats=stats)
    for geometry in geometries:
        analysis = analyses[geometry]
        assocs, needs_srb = required_classifications(mechanisms,
                                                     geometry.ways)
        for assoc in assocs:
            analysis.classification(assoc)
        if needs_srb:
            analysis.srb_always_hits()
    return analyses[geometries[0]]
