"""Persistent, content-addressed classification store.

The disk-backed sibling of :class:`repro.solve.store.SolveStore`: where
that store persists solved ILP objectives, this one persists the cache
analysis' *classification tables* so a warm run performs zero
abstract-interpretation fixpoints, completing the all-cached pipeline
(warm = zero fixpoints + zero backend ILPs).

Entries are keyed by a SHA-256 digest over everything that determines
a classification:

* the classification schema version (bumped on format change);
* the CFG digest (:meth:`repro.cfg.graph.CFG.digest`);
* the cache geometry ``(sets, ways, block bytes)``;
* the associativity the table was computed at;
* the entry kind (``"chmc"`` tables vs ``"srb"`` hit sets).

Storage shares the solve store's shard conventions — append-only JSONL
shards, one per writer process, each line CRC-32 checksummed, corrupt
or truncated lines skipped and recomputed — and lives under the *same*
root directory (subdirectory ``classify-v<N>`` next to the solve
store's ``v<N>``), so ``REPRO_CACHE`` / ``--cache`` control both
stores with one knob and ``repro cache gc`` compacts both at once.
"""

from __future__ import annotations

import json
import os

from repro.analysis.chmc import (ALWAYS_HIT, ALWAYS_MISS, NOT_CLASSIFIED,
                                 Chmc, Classification)
from repro.solve.store import ShardedStore, SolveStore, attach_remote

#: Bump on ANY change to the table encoding or the key derivation.
CLASSIFY_SCHEMA_VERSION = 1

#: Integer codes of the scope-less classifications (FIRST_MISS is
#: encoded as the pair ``[1, scope]`` instead).
_CODES = {Chmc.ALWAYS_HIT: 0, Chmc.ALWAYS_MISS: 2, Chmc.NOT_CLASSIFIED: 3}
_SINGLETONS = {0: ALWAYS_HIT, 2: ALWAYS_MISS, 3: NOT_CLASSIFIED}


def classification_key(cfg_digest: str, geometry, assoc: int,
                       kind: str = "chmc") -> str:
    """Content address of one classification table (or SRB hit set)."""
    import hashlib

    payload = json.dumps(
        [CLASSIFY_SCHEMA_VERSION, kind, cfg_digest,
         [geometry.sets, geometry.ways, geometry.block_bytes], assoc],
        separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def encode_table(table: dict[int, tuple[Classification, ...]]) -> dict:
    """JSON-serialisable form of a per-block classification map."""
    blocks = []
    for block_id in sorted(table):
        row = []
        for classification in table[block_id]:
            if classification.chmc is Chmc.FIRST_MISS:
                row.append([1, classification.scope])
            else:
                row.append(_CODES[classification.chmc])
        blocks.append([block_id, row])
    return {"blocks": blocks}


def decode_table(value: object) -> dict[int, tuple[Classification, ...]] | None:
    """Inverse of :func:`encode_table`; ``None`` on any malformation.

    A ``None`` degrades to recomputation — exactly like a corrupt
    shard line — so accidental corruption (truncation, bit rot, a
    foreign schema) can never produce a wrong classification.  Like
    the solve store, this is *integrity* checking, not tamper
    proofing: the CRC is not cryptographic, so a hostile writer with
    access to the cache directory could forge a well-formed entry.
    """
    try:
        table: dict[int, tuple[Classification, ...]] = {}
        for block_id, row in value["blocks"]:
            classifications = []
            for item in row:
                if isinstance(item, list):
                    code, scope = item
                    if code != 1:
                        return None
                    classifications.append(
                        Classification(chmc=Chmc.FIRST_MISS, scope=scope))
                else:
                    classifications.append(_SINGLETONS[item])
            table[int(block_id)] = tuple(classifications)
        return table
    except (TypeError, ValueError, KeyError):
        return None


#: Handles memoised per resolved root, like the solve store's.
_RESOLVED: dict[str, "ClassificationStore"] = {}


class ClassificationStore(ShardedStore):
    """Disk-backed map of classification keys to JSON documents.

    The shard lifecycle (checksummed append-only JSONL, one shard per
    writer, corruption-tolerant load) is the shared
    :class:`~repro.solve.store.ShardedStore`; this class only supplies
    the single-kind (``"classify"``) index, so concurrent writers —
    sweep cell workers, suite pool workers — behave exactly like the
    solve store's.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__(root, f"classify-v{CLASSIFY_SCHEMA_VERSION}")
        self._entries: dict[str, object] = {}
        self.corrupt_skipped = 0

    @classmethod
    def resolve(cls, override: str | None = None
                ) -> "ClassificationStore | None":
        """The store selected by ``override`` or ``REPRO_CACHE``.

        Same convention as :meth:`SolveStore.resolve` — and the same
        *root*: both stores live side by side under one cache
        directory.
        """
        solve_store = SolveStore.resolve(override)
        if solve_store is None:
            return None
        key = os.path.abspath(solve_store.root)
        store = _RESOLVED.get(key)
        if store is None:
            store = _RESOLVED[key] = cls(solve_store.root)
        attach_remote(store)
        return store

    # -- index hooks ---------------------------------------------------
    def _reset_index(self) -> None:
        self._entries = {}

    def _index_entry(self, parsed: tuple[str, str, object] | None) -> None:
        if parsed is None or parsed[0] != "classify":
            self.corrupt_skipped += 1
            return
        _kind, key, value = parsed
        self._entries[key] = value

    # -- reads / writes ------------------------------------------------
    def get(self, key: str) -> object | None:
        self._ensure_loaded()
        value = self._entries.get(key)
        if value is None and self.remote is not None:
            value = self._remote_fetch("classify", key)
            if value is not None:
                self._entries[key] = value
        return value

    def put(self, key: str, value: object) -> None:
        self._ensure_loaded()
        # Skip only *identical* entries: if the key is occupied by a
        # value that failed decoding (checksum-valid but shape-invalid
        # — e.g. written by a buggy run), the recomputed value must
        # still be appended so load-time last-wins repairs the store;
        # otherwise every future run would recompute forever.
        if self._entries.get(key) == value:
            return
        self._entries[key] = value
        self._append("classify", key, value)
        self._remote_push("classify", key, value)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)
