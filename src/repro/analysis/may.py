"""May analysis: which fetches are guaranteed cache misses.

Dict-based *reference oracle*, like :mod:`repro.analysis.must`; the
production path is the vectorised engine of
:mod:`repro.analysis.vectorized`.
"""

from __future__ import annotations

from repro.analysis import acs
from repro.analysis.fixpoint import solve
from repro.analysis.references import Reference, all_references
from repro.cache import CacheGeometry
from repro.cfg import CFG
from repro.errors import AnalysisError


class MayAnalysis:
    """Fixpoint May analysis at a given (possibly degraded) associativity.

    The cache is assumed empty at task start (cold boot / invalidated),
    as in the reproduced toolchain, so a fetch whose block is absent
    from the May ACS misses on every path — classification always-miss.
    """

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 assoc: int | None = None) -> None:
        if assoc is None:
            assoc = geometry.ways
        if assoc < 0 or assoc > geometry.ways:
            raise AnalysisError(
                f"associativity {assoc} out of range [0, {geometry.ways}]")
        self._cfg = cfg
        self._geometry = geometry
        self._assoc = assoc
        self._references = all_references(cfg, geometry)
        if assoc == 0:
            self._in_states: dict[int, acs.CacheState] = {
                block_id: {} for block_id in cfg.block_ids()}
        else:
            self._in_states = solve(
                cfg,
                initial={},  # cold cache: nothing can be cached yet
                join=self._join,
                transfer=self._transfer,
                equal=acs.cache_state_equal)

    @property
    def assoc(self) -> int:
        return self._assoc

    def references(self, block_id: int) -> tuple[Reference, ...]:
        return self._references[block_id]

    def in_state(self, block_id: int) -> acs.CacheState:
        return self._in_states[block_id]

    def possibly_cached(self, block_id: int) -> tuple[bool, ...]:
        """Per-instruction "may hit" verdicts for one block.

        ``False`` means the fetch misses on *every* execution
        (always-miss classification).
        """
        state = acs.copy_cache_state(self._in_states[block_id])
        verdicts = []
        for reference in self._references[block_id]:
            set_state = state.get(reference.set_index, {})
            verdicts.append(reference.memory_block in set_state)
            state[reference.set_index] = acs.may_update(
                set_state, reference.memory_block, self._assoc)
        return tuple(verdicts)

    # -- dataflow plumbing --------------------------------------------
    def _transfer(self, block_id: int,
                  state: acs.CacheState) -> acs.CacheState:
        state = dict(state)
        for reference in self._references[block_id]:
            state[reference.set_index] = acs.may_update(
                state.get(reference.set_index, {}),
                reference.memory_block, self._assoc)
        return state

    @staticmethod
    def _join(left: acs.CacheState, right: acs.CacheState) -> acs.CacheState:
        joined = {set_index: dict(set_state)
                  for set_index, set_state in left.items()}
        for set_index, set_state in right.items():
            joined[set_index] = acs.may_join(joined.get(set_index, {}),
                                             set_state)
        return joined
