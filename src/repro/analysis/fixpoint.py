"""Generic worklist fixpoint solver over a CFG.

Both the Must and May analyses instantiate this solver with their own
join/transfer; the solver itself only knows about block-level dataflow:

* ``in[entry] = initial``
* ``in[b] = join of out[p] for computed predecessors p``
* ``out[b] = transfer(b, in[b])``

The iteration is optimistic (uncomputed predecessor states are skipped
— they are the join identity); at convergence every predecessor has a
computed state, so the result is a genuine fixpoint and the usual
abstract-interpretation soundness argument applies.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Callable
from typing import TypeVar

from repro.cfg import CFG
from repro.errors import AnalysisError

State = TypeVar("State")

#: Safety valve against non-monotone transfer bugs.
_MAX_VISITS_PER_BLOCK = 10_000


def solve(cfg: CFG, *, initial: State,
          join: Callable[[State, State], State],
          transfer: Callable[[int, State], State],
          equal: Callable[[State, State], bool]) -> dict[int, State]:
    """Run the fixpoint; return the IN state of every block.

    The OUT states can be recomputed by applying ``transfer`` once more
    — callers that need per-instruction states replay the transfer
    inside the block anyway, so only IN states are kept.
    """
    order = cfg.reverse_postorder()
    position = {block_id: rank for rank, block_id in enumerate(order)}
    # Successor lists sorted once, up front — the worklist pops each
    # block many times and must never pay the sort again.
    successors = {block_id: sorted(cfg.successors(block_id),
                                   key=position.__getitem__)
                  for block_id in order}
    in_states: dict[int, State] = {}
    out_states: dict[int, State] = {}
    visits: Counter[int] = Counter()

    worklist: deque[int] = deque(order)
    queued = set(order)
    while worklist:
        block_id = worklist.popleft()
        queued.discard(block_id)
        visits[block_id] += 1
        if visits[block_id] > _MAX_VISITS_PER_BLOCK:
            raise AnalysisError(
                f"fixpoint did not converge at block {block_id} "
                f"(>{_MAX_VISITS_PER_BLOCK} visits)")

        state = _in_state(cfg, block_id, initial, join, out_states)
        in_states[block_id] = state
        new_out = transfer(block_id, state)
        old_out = out_states.get(block_id)
        if old_out is not None and equal(old_out, new_out):
            continue
        out_states[block_id] = new_out
        for successor in successors[block_id]:
            if successor not in queued:
                worklist.append(successor)
                queued.add(successor)

    # One final pass so IN states reflect the converged OUT states of
    # *all* predecessors (including back edges processed afterwards).
    for block_id in order:
        in_states[block_id] = _in_state(cfg, block_id, initial, join,
                                        out_states)
    return in_states


def _in_state(cfg: CFG, block_id: int, initial: State,
              join: Callable[[State, State], State],
              out_states: dict[int, State]) -> State:
    if block_id == cfg.entry_id:
        return initial
    state: State | None = None
    for predecessor in cfg.predecessors(block_id):
        predecessor_out = out_states.get(predecessor)
        if predecessor_out is None:
            continue
        state = (predecessor_out if state is None
                 else join(state, predecessor_out))
    if state is None:
        raise AnalysisError(
            f"block {block_id} has no computed predecessor (unreachable?)")
    return state
