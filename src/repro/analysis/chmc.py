"""Cache Hit/Miss Classifications (CHMC)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Chmc(enum.Enum):
    """Worst-case cache behaviour of one reference (paper §II-B1)."""

    #: Guaranteed hit on every execution (Must analysis).
    ALWAYS_HIT = "always-hit"
    #: At most one miss per entry of its persistence scope.
    FIRST_MISS = "first-miss"
    #: Guaranteed miss on every execution (May analysis).
    ALWAYS_MISS = "always-miss"
    #: None of the above; treated as always-miss in WCET computation,
    #: exactly as in the paper's experimental setup (§IV-A).
    NOT_CLASSIFIED = "not-classified"


#: Sentinel scope meaning "persistent over the whole program": the
#: reference misses at most once per task activation.
GLOBAL_SCOPE = -1


@dataclass(frozen=True)
class Classification:
    """CHMC plus, for first-miss, the persistence scope.

    ``scope`` is the loop header block id of the outermost loop in
    which the reference is persistent, or :data:`GLOBAL_SCOPE` when it
    is persistent across the whole program.  ``None`` for non-FM
    classifications.
    """

    chmc: Chmc
    scope: int | None = None

    def __post_init__(self) -> None:
        if (self.chmc is Chmc.FIRST_MISS) != (self.scope is not None):
            raise ValueError(
                "scope must be given exactly for FIRST_MISS "
                f"(got {self.chmc} with scope {self.scope})")

    @property
    def counts_full_misses(self) -> bool:
        """True when every execution is counted as a miss in IPET."""
        return self.chmc in (Chmc.ALWAYS_MISS, Chmc.NOT_CLASSIFIED)

    def __str__(self) -> str:
        if self.chmc is Chmc.FIRST_MISS:
            where = "global" if self.scope == GLOBAL_SCOPE else f"L{self.scope}"
            return f"first-miss({where})"
        return self.chmc.value


#: Shared singletons for the scope-less classifications.
ALWAYS_HIT = Classification(Chmc.ALWAYS_HIT)
ALWAYS_MISS = Classification(Chmc.ALWAYS_MISS)
NOT_CLASSIFIED = Classification(Chmc.NOT_CLASSIFIED)
