"""Persistence analysis: first-miss classification by conflict counting.

A memory block is *persistent* in a scope (a loop, or the whole
program) if it can never be evicted once loaded during that scope.
With LRU this is guaranteed when the number of distinct memory blocks
mapping to its set that are accessed anywhere inside the scope does not
exceed the set's associativity — the block's age can then never reach
the eviction bound.  This conflict-counting criterion is coarser than
age-tracking persistence but unconditionally sound (it avoids the known
unsoundness of the original ACS-based persistence update), and it is
naturally parameterised by the degraded associativity.

A reference persistent in scope ``L`` is classified first-miss with at
most one miss per entry into ``L``; we always report the *outermost*
scope in which the reference is persistent (fewest entries, tightest
bound).
"""

from __future__ import annotations

import weakref

from repro.analysis.chmc import GLOBAL_SCOPE
from repro.analysis.references import Reference, all_references
from repro.cache import CacheGeometry
from repro.cfg import CFG, LoopForest, find_loops

#: CFG → (line size, set count) → (global conflicts, loop conflicts).
#: The conflict maps are pure functions of those three inputs (the
#: loop forest is itself a pure function of the CFG), so geometries
#: sharing a set mapping — and repeated analyses of one geometry —
#: share one precomputation.  Keyed by CFG identity, entries die with
#: their CFG (same discipline as the reference-map memo).
_CONFLICTS: "weakref.WeakKeyDictionary[CFG, dict]" = \
    weakref.WeakKeyDictionary()


def _conflict_maps(cfg: CFG, geometry: CacheGeometry,
                   forest: LoopForest) -> tuple[dict, dict]:
    per_cfg = _CONFLICTS.get(cfg)
    if per_cfg is None:
        per_cfg = _CONFLICTS[cfg] = {}
    key = (geometry.block_bytes, geometry.sets)
    maps = per_cfg.get(key)
    if maps is not None:
        return maps
    # Distinct (set, memory block) pairs per CFG block first: scope
    # aggregation then touches each distinct pair once per scope
    # instead of walking every instruction fetch again.
    references = all_references(cfg, geometry)
    per_block = {
        block_id: {(reference.set_index, reference.memory_block)
                   for reference in refs}
        for block_id, refs in references.items()}

    def distinct_blocks(block_ids) -> dict[int, set[int]]:
        per_set: dict[int, set[int]] = {}
        for block_id in block_ids:
            for set_index, memory_block in per_block[block_id]:
                per_set.setdefault(set_index, set()).add(memory_block)
        return per_set

    global_conflicts = {
        set_index: len(blocks)
        for set_index, blocks in distinct_blocks(cfg.block_ids()).items()
    }
    loop_conflicts = {
        header: {set_index: len(blocks)
                 for set_index, blocks
                 in distinct_blocks(loop.body).items()}
        for header, loop in forest.loops.items()
    }
    maps = per_cfg[key] = (global_conflicts, loop_conflicts)
    return maps


class PersistenceAnalysis:
    """Pre-computes per-scope conflict counts; answers scope queries."""

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 forest: LoopForest | None = None) -> None:
        self._cfg = cfg
        self._geometry = geometry
        self._forest = forest if forest is not None else find_loops(cfg)
        #: set index -> #distinct memory blocks over the whole program,
        #: and loop header -> set index -> #distinct blocks in body.
        self._global_conflicts, self._loop_conflicts = _conflict_maps(
            cfg, geometry, self._forest)

    @property
    def forest(self) -> LoopForest:
        return self._forest

    def global_conflicts(self, set_index: int) -> int:
        """Distinct blocks competing for ``set_index`` program-wide."""
        return self._global_conflicts.get(set_index, 0)

    def loop_conflicts(self, header: int, set_index: int) -> int:
        """Distinct blocks competing for ``set_index`` inside a loop."""
        return self._loop_conflicts[header].get(set_index, 0)

    def scope_of(self, reference: Reference, assoc: int) -> int | None:
        """Outermost persistence scope of ``reference`` at ``assoc``.

        Returns :data:`GLOBAL_SCOPE`, a loop header id, or ``None``
        when the reference is persistent nowhere.
        """
        if assoc <= 0:
            return None
        if self._global_conflicts.get(reference.set_index, 0) <= assoc:
            return GLOBAL_SCOPE
        chain = self._forest.loops_containing(reference.block_id)
        for loop in reversed(chain):  # outermost first
            conflicts = self._loop_conflicts[loop.header].get(
                reference.set_index, 0)
            if conflicts <= assoc:
                return loop.header
        return None
