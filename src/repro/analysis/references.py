"""Memory references: the unit the cache analysis classifies.

Every instruction fetch is a reference to the memory block containing
the instruction.  A reference is identified by its position in the
CFG — (block id, index within block) — because virtual inlining means
the same address can appear in several contexts with different
classifications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import CacheGeometry
from repro.cfg import CFG


@dataclass(frozen=True)
class Reference:
    """One instruction fetch at a specific CFG position."""

    block_id: int
    index: int
    address: int
    memory_block: int
    set_index: int

    @property
    def key(self) -> tuple[int, int]:
        """CFG position: (block id, instruction index)."""
        return (self.block_id, self.index)


def block_references(cfg: CFG, geometry: CacheGeometry,
                     block_id: int) -> tuple[Reference, ...]:
    """The references issued by one basic block, in fetch order."""
    block = cfg.block(block_id)
    references = []
    for index, instruction in enumerate(block.instructions):
        memory_block = geometry.block_of(instruction.address)
        references.append(Reference(
            block_id=block_id, index=index, address=instruction.address,
            memory_block=memory_block,
            set_index=geometry.set_of_block(memory_block)))
    return tuple(references)


def all_references(cfg: CFG,
                   geometry: CacheGeometry) -> dict[int, tuple[Reference, ...]]:
    """References of every block, keyed by block id."""
    return {block_id: block_references(cfg, geometry, block_id)
            for block_id in cfg.block_ids()}
